# Empty compiler generated dependencies file for fig3_kfusion_dse.
# This may be replaced when dependencies are built.
