file(REMOVE_RECURSE
  "../bench/fig3_kfusion_dse"
  "../bench/fig3_kfusion_dse.pdb"
  "CMakeFiles/fig3_kfusion_dse.dir/fig3_kfusion_dse.cpp.o"
  "CMakeFiles/fig3_kfusion_dse.dir/fig3_kfusion_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kfusion_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
