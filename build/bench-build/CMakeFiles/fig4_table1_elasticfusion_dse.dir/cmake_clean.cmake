file(REMOVE_RECURSE
  "../bench/fig4_table1_elasticfusion_dse"
  "../bench/fig4_table1_elasticfusion_dse.pdb"
  "CMakeFiles/fig4_table1_elasticfusion_dse.dir/fig4_table1_elasticfusion_dse.cpp.o"
  "CMakeFiles/fig4_table1_elasticfusion_dse.dir/fig4_table1_elasticfusion_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_table1_elasticfusion_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
