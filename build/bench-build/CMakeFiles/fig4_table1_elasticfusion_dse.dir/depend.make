# Empty dependencies file for fig4_table1_elasticfusion_dse.
# This may be replaced when dependencies are built.
