file(REMOVE_RECURSE
  "../bench/table_glance"
  "../bench/table_glance.pdb"
  "CMakeFiles/table_glance.dir/table_glance.cpp.o"
  "CMakeFiles/table_glance.dir/table_glance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_glance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
