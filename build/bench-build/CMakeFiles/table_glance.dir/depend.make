# Empty dependencies file for table_glance.
# This may be replaced when dependencies are built.
