file(REMOVE_RECURSE
  "../bench/ablation_power_objective"
  "../bench/ablation_power_objective.pdb"
  "CMakeFiles/ablation_power_objective.dir/ablation_power_objective.cpp.o"
  "CMakeFiles/ablation_power_objective.dir/ablation_power_objective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
