# Empty compiler generated dependencies file for fig5_crowdsourcing.
# This may be replaced when dependencies are built.
