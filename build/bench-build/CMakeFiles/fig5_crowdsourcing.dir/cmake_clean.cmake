file(REMOVE_RECURSE
  "../bench/fig5_crowdsourcing"
  "../bench/fig5_crowdsourcing.pdb"
  "CMakeFiles/fig5_crowdsourcing.dir/fig5_crowdsourcing.cpp.o"
  "CMakeFiles/fig5_crowdsourcing.dir/fig5_crowdsourcing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_crowdsourcing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
