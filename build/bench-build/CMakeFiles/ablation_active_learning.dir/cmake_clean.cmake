file(REMOVE_RECURSE
  "../bench/ablation_active_learning"
  "../bench/ablation_active_learning.pdb"
  "CMakeFiles/ablation_active_learning.dir/ablation_active_learning.cpp.o"
  "CMakeFiles/ablation_active_learning.dir/ablation_active_learning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
