# Empty dependencies file for ablation_active_learning.
# This may be replaced when dependencies are built.
