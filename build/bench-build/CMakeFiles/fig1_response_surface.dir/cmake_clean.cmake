file(REMOVE_RECURSE
  "../bench/fig1_response_surface"
  "../bench/fig1_response_surface.pdb"
  "CMakeFiles/fig1_response_surface.dir/fig1_response_surface.cpp.o"
  "CMakeFiles/fig1_response_surface.dir/fig1_response_surface.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
