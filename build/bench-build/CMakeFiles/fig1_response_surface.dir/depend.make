# Empty dependencies file for fig1_response_surface.
# This may be replaced when dependencies are built.
