# Empty compiler generated dependencies file for ablation_vs_gridsearch.
# This may be replaced when dependencies are built.
