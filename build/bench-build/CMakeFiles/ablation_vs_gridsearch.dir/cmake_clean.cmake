file(REMOVE_RECURSE
  "../bench/ablation_vs_gridsearch"
  "../bench/ablation_vs_gridsearch.pdb"
  "CMakeFiles/ablation_vs_gridsearch.dir/ablation_vs_gridsearch.cpp.o"
  "CMakeFiles/ablation_vs_gridsearch.dir/ablation_vs_gridsearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vs_gridsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
