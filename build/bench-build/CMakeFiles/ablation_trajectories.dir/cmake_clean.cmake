file(REMOVE_RECURSE
  "../bench/ablation_trajectories"
  "../bench/ablation_trajectories.pdb"
  "CMakeFiles/ablation_trajectories.dir/ablation_trajectories.cpp.o"
  "CMakeFiles/ablation_trajectories.dir/ablation_trajectories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
