# Empty compiler generated dependencies file for ablation_trajectories.
# This may be replaced when dependencies are built.
