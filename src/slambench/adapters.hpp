// Glue between the SLAM substrates and the HyperMapper optimizer: the two
// algorithmic design spaces exactly as explored in the paper (Sections
// III-B and III-C), configuration <-> parameter-struct conversion, and
// caching evaluators. The cache is keyed by configuration and stores the
// device-independent measurement (ATE + kernel counts); runtime for a
// specific device is derived on lookup, which lets multi-device experiments
// (Fig. 3a/3b, Fig. 5) reuse evaluations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "dataset/sequence.hpp"
#include "elasticfusion/params.hpp"
#include "hypermapper/evaluator.hpp"
#include "hypermapper/resilient_evaluator.hpp"
#include "hypermapper/space.hpp"
#include "kfusion/params.hpp"
#include "slambench/device.hpp"
#include "slambench/harness.hpp"

namespace hm::slambench {

/// The KFusion algorithmic space (cardinality 1,728,000 — "roughly
/// 1,800,000" in the paper).
[[nodiscard]] hm::hypermapper::DesignSpace build_kfusion_space();

/// The ElasticFusion algorithmic space (cardinality 460,800 — "roughly
/// 450,000" in the paper).
[[nodiscard]] hm::hypermapper::DesignSpace build_elasticfusion_space();

/// Conversions between optimizer configurations and parameter structs.
/// Configurations must come from the matching space (values are snapped).
[[nodiscard]] hm::kfusion::KFusionParams kfusion_params_from_config(
    const hm::hypermapper::DesignSpace& space,
    const hm::hypermapper::Configuration& config);
[[nodiscard]] hm::hypermapper::Configuration kfusion_config_from_params(
    const hm::hypermapper::DesignSpace& space,
    const hm::kfusion::KFusionParams& params);

[[nodiscard]] hm::elasticfusion::EFParams ef_params_from_config(
    const hm::hypermapper::DesignSpace& space,
    const hm::hypermapper::Configuration& config);
[[nodiscard]] hm::hypermapper::Configuration ef_config_from_params(
    const hm::hypermapper::DesignSpace& space,
    const hm::elasticfusion::EFParams& params);

/// Which ATE statistic drives the accuracy objective (the KFusion figures
/// plot max ATE; the ElasticFusion table reports the mean).
enum class AteKind { kMean, kMax };

/// Declares which SLAM run outcomes count as evaluation failures for the
/// supervision layer, and which of those are transient. Disabled by
/// default: a failed run then simply reports its (large) ATE, as before.
struct SlamFailureModel {
  bool enabled = false;
  /// Tracking lost on more than this fraction of frames => a *transient*
  /// "tracking loss" failure: a retry with a perturbed seed (different
  /// noise schedule / frame subset) may re-lock, so it is worth retrying.
  double max_tracking_failure_fraction = 0.5;
  /// Non-finite ATE is always a *permanent* failure when enabled: it means
  /// the configuration itself is infeasible (e.g. a volume the trajectory
  /// leaves immediately), and no retry can fix the parameters.
};

/// Maps run metrics to a classified evaluation failure under `model`, or
/// nullopt if the run is acceptable. Used by the evaluators below; exposed
/// for tests and custom adapters.
[[nodiscard]] std::optional<hm::hypermapper::EvaluationError> classify_run(
    const RunMetrics& metrics, const SlamFailureModel& model);

/// Device-independent evaluation cache, shareable across evaluators.
class EvaluationCache {
 public:
  [[nodiscard]] bool lookup(std::uint64_t key, RunMetrics& out) const;

  /// Inserts `metrics` under `key` unless the key is already present —
  /// first-wins. This matters on resume: entries restored from a journal
  /// are the canonical measurements, and a live re-measurement of the same
  /// configuration (e.g. the in-flight iteration racing a replay) must not
  /// displace them, or the resumed report drifts from the original run.
  /// Returns true when the entry was inserted, false when an existing
  /// entry won.
  bool store(std::uint64_t key, const RunMetrics& metrics);

  /// Bulk first-wins load, for restoring a journaled cache before a
  /// resumed run starts. Returns the number of entries actually inserted
  /// (keys already present keep their existing metrics).
  std::size_t restore(
      const std::vector<std::pair<std::uint64_t, RunMetrics>>& entries);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

  /// Snapshot of the cache contents in ascending key order. The backing
  /// map is unordered, so this sorted view is the only sanctioned way to
  /// iterate entries for CSV/report export — exports must be byte-stable
  /// across reruns (enforced by hm-lint's no-unordered-output-iteration).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, RunMetrics>>
  snapshot_sorted() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, RunMetrics> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Serializes a cache snapshot as CSV, rows in ascending key order:
/// config_key, frames, ate_mean/max/rmse, tracking_failures,
/// relocalizations, loop_closures, total_ops. Deterministic for a given
/// set of evaluations regardless of insertion or thread order.
[[nodiscard]] hm::common::CsvTable cache_to_csv(const EvaluationCache& cache);

/// Objectives returned by both evaluators: [0] = runtime per frame (s) on
/// the evaluator's device, [1] = ATE (m). Both minimized.
class KFusionEvaluator final : public hm::hypermapper::Evaluator {
 public:
  KFusionEvaluator(std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
                   DeviceModel device, AteKind ate_kind = AteKind::kMax,
                   std::shared_ptr<EvaluationCache> cache = nullptr);

  [[nodiscard]] std::size_t objective_count() const override { return 2; }
  [[nodiscard]] std::vector<double> evaluate(
      const hm::hypermapper::Configuration& config) override;
  [[nodiscard]] bool thread_safe() const override { return true; }

  /// Full metrics for one configuration (cached like evaluate()).
  [[nodiscard]] RunMetrics measure(const hm::hypermapper::Configuration& config);

  [[nodiscard]] const hm::hypermapper::DesignSpace& space() const {
    return space_;
  }
  [[nodiscard]] const DeviceModel& device() const { return device_; }
  [[nodiscard]] std::size_t evaluation_count() const { return evaluations_; }
  [[nodiscard]] const std::shared_ptr<EvaluationCache>& cache() const {
    return cache_;
  }

  /// Enables failure classification: evaluate() throws EvaluationError for
  /// runs the model rejects (set before the optimizer starts).
  void set_failure_model(const SlamFailureModel& model) { failures_ = model; }
  [[nodiscard]] const SlamFailureModel& failure_model() const {
    return failures_;
  }

 private:
  hm::hypermapper::DesignSpace space_;
  std::shared_ptr<const hm::dataset::RGBDSequence> sequence_;
  DeviceModel device_;
  AteKind ate_kind_;
  std::shared_ptr<EvaluationCache> cache_;
  SlamFailureModel failures_;
  std::atomic<std::size_t> evaluations_{0};
};

/// Three-objective KFusion evaluator: [0] runtime per frame (s),
/// [1] max ATE (m), [2] average power (W). Reproduces the
/// runtime/accuracy/power exploration of the paper's predecessor [40],
/// whose Pareto points (11.92 FPS at 0.65 W; 29.09 FPS under 1 W) the
/// paper quotes in its introduction. Shares the device-independent cache
/// with the two-objective evaluator.
class KFusionEnergyEvaluator final : public hm::hypermapper::Evaluator {
 public:
  KFusionEnergyEvaluator(
      std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
      DeviceModel device, AteKind ate_kind = AteKind::kMax,
      std::shared_ptr<EvaluationCache> cache = nullptr);

  [[nodiscard]] std::size_t objective_count() const override { return 3; }
  [[nodiscard]] std::vector<double> evaluate(
      const hm::hypermapper::Configuration& config) override;
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] RunMetrics measure(const hm::hypermapper::Configuration& config);

  [[nodiscard]] const hm::hypermapper::DesignSpace& space() const {
    return space_;
  }
  [[nodiscard]] const DeviceModel& device() const { return device_; }

 private:
  hm::hypermapper::DesignSpace space_;
  std::shared_ptr<const hm::dataset::RGBDSequence> sequence_;
  DeviceModel device_;
  AteKind ate_kind_;
  std::shared_ptr<EvaluationCache> cache_;
};

class ElasticFusionEvaluator final : public hm::hypermapper::Evaluator {
 public:
  ElasticFusionEvaluator(
      std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
      DeviceModel device, AteKind ate_kind = AteKind::kMean,
      std::shared_ptr<EvaluationCache> cache = nullptr);

  [[nodiscard]] std::size_t objective_count() const override { return 2; }
  [[nodiscard]] std::vector<double> evaluate(
      const hm::hypermapper::Configuration& config) override;
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] RunMetrics measure(const hm::hypermapper::Configuration& config);

  [[nodiscard]] const hm::hypermapper::DesignSpace& space() const {
    return space_;
  }
  [[nodiscard]] const DeviceModel& device() const { return device_; }
  [[nodiscard]] std::size_t evaluation_count() const { return evaluations_; }

  /// Enables failure classification: evaluate() throws EvaluationError for
  /// runs the model rejects (set before the optimizer starts).
  void set_failure_model(const SlamFailureModel& model) { failures_ = model; }
  [[nodiscard]] const SlamFailureModel& failure_model() const {
    return failures_;
  }

 private:
  hm::hypermapper::DesignSpace space_;
  std::shared_ptr<const hm::dataset::RGBDSequence> sequence_;
  DeviceModel device_;
  AteKind ate_kind_;
  std::shared_ptr<EvaluationCache> cache_;
  SlamFailureModel failures_;
  std::atomic<std::size_t> evaluations_{0};
};

}  // namespace hm::slambench
