#include "slambench/transfer.hpp"

#include <cassert>
#include <limits>

#include "common/stats.hpp"

namespace hm::slambench {

std::vector<double> runtimes_on_device(std::span<const RunMetrics> metrics,
                                       const DeviceModel& device) {
  std::vector<double> runtimes;
  runtimes.reserve(metrics.size());
  for (const RunMetrics& m : metrics) {
    runtimes.push_back(device.seconds_per_frame(m.stats, m.frames));
  }
  return runtimes;
}

TransferAnalysis analyze_transfer(std::span<const RunMetrics> metrics,
                                  std::span<const double> ate,
                                  const RunMetrics& default_metrics,
                                  const DeviceModel& source,
                                  const DeviceModel& target,
                                  double validity_limit) {
  assert(metrics.size() == ate.size());
  TransferAnalysis analysis;
  if (metrics.empty()) return analysis;

  const std::vector<double> source_runtimes = runtimes_on_device(metrics, source);
  const std::vector<double> target_runtimes = runtimes_on_device(metrics, target);
  analysis.pearson = hm::common::pearson(source_runtimes, target_runtimes);
  analysis.spearman = hm::common::spearman(source_runtimes, target_runtimes);

  // Fastest valid configuration according to each machine.
  std::size_t source_best = metrics.size();
  std::size_t target_best = metrics.size();
  double source_best_runtime = std::numeric_limits<double>::infinity();
  double target_best_runtime = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (ate[i] >= validity_limit) continue;
    if (source_runtimes[i] < source_best_runtime) {
      source_best_runtime = source_runtimes[i];
      source_best = i;
    }
    if (target_runtimes[i] < target_best_runtime) {
      target_best_runtime = target_runtimes[i];
      target_best = i;
    }
  }
  if (source_best == metrics.size() || target_best == metrics.size()) {
    return analysis;  // No valid configuration: regret stays 0.
  }

  analysis.transfer_regret =
      target_runtimes[source_best] / target_runtimes[target_best];
  const double target_default =
      target.seconds_per_frame(default_metrics.stats, default_metrics.frames);
  analysis.transferred_speedup =
      target_default / target_runtimes[source_best];
  return analysis;
}

}  // namespace hm::slambench
