#include "slambench/device.hpp"

namespace hm::slambench {

double DeviceModel::seconds(const KernelStats& stats, std::size_t frames) const {
  double nanos = 0.0;
  for (std::size_t k = 0; k < ns_per_op.size(); ++k) {
    nanos += ns_per_op[k] *
             static_cast<double>(stats.count(static_cast<Kernel>(k)));
  }
  return nanos * 1e-9 + frame_overhead * static_cast<double>(frames);
}

double DeviceModel::joules(const KernelStats& stats, std::size_t frames) const {
  double nanojoules = 0.0;
  for (std::size_t k = 0; k < nj_per_op.size(); ++k) {
    nanojoules += nj_per_op[k] *
                  static_cast<double>(stats.count(static_cast<Kernel>(k)));
  }
  return nanojoules * 1e-9 + idle_watts * seconds(stats, frames);
}

double DeviceModel::average_watts(const KernelStats& stats,
                                  std::size_t frames) const {
  const double runtime = seconds(stats, frames);
  if (runtime <= 0.0) return 0.0;
  return joules(stats, frames) / runtime;
}

DeviceModel odroid_xu3() {
  // Mali-T628-MP6 (4-core OpenCL device), calibrated so the default KFusion
  // configuration lands at ~6 FPS (paper, Section IV-B). Memory-bound
  // kernels (integrate) dominate; the fixed overhead (~20 ms) models
  // OpenCL launch + transfer costs and caps the achievable frame rate near
  // 40 FPS, the ceiling the paper's best configuration approaches.
  DeviceModel d;
  d.name = "ODROID-XU3";
  d.frame_overhead = 0.0235;
  d.coeff(Kernel::kDownsample) = 10.0;
  d.coeff(Kernel::kBilateral) = 28.0;
  d.coeff(Kernel::kPyramid) = 12.0;
  d.coeff(Kernel::kVertexNormal) = 16.0;
  d.coeff(Kernel::kIcp) = 55.0;
  d.coeff(Kernel::kSolve) = 30000.0;
  d.coeff(Kernel::kIntegrate) = 15.5;
  d.coeff(Kernel::kRaycast) = 42.0;
  d.coeff(Kernel::kSurfelFusion) = 60.0;
  d.coeff(Kernel::kRgbTrack) = 50.0;
  d.coeff(Kernel::kSo3Prealign) = 45.0;
  d.coeff(Kernel::kLoopClosure) = 40.0;
  // Energy: calibrated so the default KFusion configuration sits near the
  // 2 W embedded budget and light configurations approach the board's idle
  // draw (the 0.65 W / < 1 W points quoted from [40]).
  d.idle_watts = 0.45;
  d.energy_coeff(Kernel::kDownsample) = 8.0;
  d.energy_coeff(Kernel::kBilateral) = 25.0;
  d.energy_coeff(Kernel::kPyramid) = 10.0;
  d.energy_coeff(Kernel::kVertexNormal) = 12.0;
  d.energy_coeff(Kernel::kIcp) = 30.0;
  d.energy_coeff(Kernel::kSolve) = 20000.0;
  d.energy_coeff(Kernel::kIntegrate) = 25.0;
  d.energy_coeff(Kernel::kRaycast) = 40.0;
  d.energy_coeff(Kernel::kSurfelFusion) = 30.0;
  d.energy_coeff(Kernel::kRgbTrack) = 30.0;
  d.energy_coeff(Kernel::kSo3Prealign) = 25.0;
  d.energy_coeff(Kernel::kLoopClosure) = 20.0;
  return d;
}

DeviceModel asus_t200ta() {
  // Atom Z3795 with Intel HD Graphics via Beignet: weaker GPU compute but a
  // shared-memory SoC (cheaper transfers -> lower overhead); ray-marching
  // style divergent kernels are comparatively worse than on Mali.
  DeviceModel d;
  d.name = "ASUS T200TA";
  d.frame_overhead = 0.014;
  d.coeff(Kernel::kDownsample) = 12.0;
  d.coeff(Kernel::kBilateral) = 34.0;
  d.coeff(Kernel::kPyramid) = 14.0;
  d.coeff(Kernel::kVertexNormal) = 18.0;
  d.coeff(Kernel::kIcp) = 70.0;
  d.coeff(Kernel::kSolve) = 22000.0;
  d.coeff(Kernel::kIntegrate) = 13.0;
  d.coeff(Kernel::kRaycast) = 60.0;
  d.coeff(Kernel::kSurfelFusion) = 70.0;
  d.coeff(Kernel::kRgbTrack) = 62.0;
  d.coeff(Kernel::kSo3Prealign) = 55.0;
  d.coeff(Kernel::kLoopClosure) = 48.0;
  // Tablet-class SoC: higher idle draw than the ODROID board, similar
  // dynamic energy per operation.
  d.idle_watts = 1.1;
  d.energy_coeff(Kernel::kDownsample) = 9.0;
  d.energy_coeff(Kernel::kBilateral) = 28.0;
  d.energy_coeff(Kernel::kPyramid) = 11.0;
  d.energy_coeff(Kernel::kVertexNormal) = 13.0;
  d.energy_coeff(Kernel::kIcp) = 34.0;
  d.energy_coeff(Kernel::kSolve) = 18000.0;
  d.energy_coeff(Kernel::kIntegrate) = 22.0;
  d.energy_coeff(Kernel::kRaycast) = 45.0;
  d.energy_coeff(Kernel::kSurfelFusion) = 32.0;
  d.energy_coeff(Kernel::kRgbTrack) = 33.0;
  d.energy_coeff(Kernel::kSo3Prealign) = 28.0;
  d.energy_coeff(Kernel::kLoopClosure) = 22.0;
  return d;
}

DeviceModel nvidia_gtx780ti() {
  // Desktop discrete GPU: an order of magnitude faster on the dense
  // kernels. Coefficients are calibrated for the ElasticFusion workload
  // (the default configuration lands near the paper's 45 FPS); the
  // tracking and surfel kernels carry most of the per-frame cost, as in
  // the CUDA implementation.
  DeviceModel d;
  d.name = "NVIDIA GTX 780 Ti";
  d.frame_overhead = 0.005;
  d.coeff(Kernel::kDownsample) = 2.0;
  d.coeff(Kernel::kBilateral) = 70.0;
  d.coeff(Kernel::kPyramid) = 35.0;
  d.coeff(Kernel::kVertexNormal) = 45.0;
  d.coeff(Kernel::kIcp) = 300.0;
  d.coeff(Kernel::kSolve) = 20000.0;
  d.coeff(Kernel::kIntegrate) = 0.9;
  d.coeff(Kernel::kRaycast) = 3.5;
  d.coeff(Kernel::kSurfelFusion) = 160.0;
  d.coeff(Kernel::kRgbTrack) = 270.0;
  d.coeff(Kernel::kSo3Prealign) = 2200.0;
  d.coeff(Kernel::kLoopClosure) = 90.0;
  // Desktop GPU: the idle draw of the card + host dwarfs the dynamic energy
  // of this workload; power is not a binding constraint on this platform,
  // matching the paper's framing (power only matters embedded).
  d.idle_watts = 68.0;
  d.energy_coeff(Kernel::kDownsample) = 20.0;
  d.energy_coeff(Kernel::kBilateral) = 300.0;
  d.energy_coeff(Kernel::kPyramid) = 150.0;
  d.energy_coeff(Kernel::kVertexNormal) = 180.0;
  d.energy_coeff(Kernel::kIcp) = 900.0;
  d.energy_coeff(Kernel::kSolve) = 50000.0;
  d.energy_coeff(Kernel::kIntegrate) = 4.0;
  d.energy_coeff(Kernel::kRaycast) = 15.0;
  d.energy_coeff(Kernel::kSurfelFusion) = 500.0;
  d.energy_coeff(Kernel::kRgbTrack) = 800.0;
  d.energy_coeff(Kernel::kSo3Prealign) = 5000.0;
  d.energy_coeff(Kernel::kLoopClosure) = 300.0;
  return d;
}

DeviceModel device_by_name(const std::string& name) {
  if (name == "asus" || name == "ASUS" || name == "t200ta") return asus_t200ta();
  if (name == "nvidia" || name == "gtx780ti" || name == "desktop") {
    return nvidia_gtx780ti();
  }
  return odroid_xu3();
}

}  // namespace hm::slambench
