#include "slambench/harness.hpp"

#include "common/timer.hpp"
#include "elasticfusion/pipeline.hpp"
#include "kfusion/pipeline.hpp"

namespace hm::slambench {

RunMetrics run_kfusion(const hm::dataset::RGBDSequence& sequence,
                       const hm::kfusion::KFusionParams& params,
                       hm::common::ThreadPool* pool) {
  RunMetrics metrics;
  metrics.frames = sequence.frame_count();
  if (metrics.frames == 0) return metrics;

  hm::common::Timer timer;
  hm::kfusion::KFusionPipeline pipeline(params, sequence.intrinsics(),
                                        sequence.frame(0).ground_truth_pose,
                                        pool);
  for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
    const auto frame_result = pipeline.process_frame(sequence.frame(i).depth);
    if (frame_result.tracking_attempted && !frame_result.tracked) {
      ++metrics.tracking_failures;
    }
  }
  metrics.wall_seconds = timer.seconds();
  metrics.stats = pipeline.stats();
  metrics.ate = compute_ate(pipeline.trajectory(), sequence.ground_truth());
  return metrics;
}

RunMetrics run_elasticfusion(const hm::dataset::RGBDSequence& sequence,
                             const hm::elasticfusion::EFParams& params) {
  RunMetrics metrics;
  metrics.frames = sequence.frame_count();
  if (metrics.frames == 0) return metrics;

  hm::common::Timer timer;
  hm::elasticfusion::ElasticFusionPipeline pipeline(
      params, sequence.intrinsics(), sequence.frame(0).ground_truth_pose);
  for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
    const auto& frame = sequence.frame(i);
    const auto frame_result =
        pipeline.process_frame(frame.depth, frame.intensity);
    if (!frame_result.tracked) ++metrics.tracking_failures;
  }
  metrics.wall_seconds = timer.seconds();
  metrics.stats = pipeline.stats();
  metrics.relocalizations = pipeline.relocalization_count();
  metrics.loop_closures = pipeline.loop_closure_count();
  metrics.ate = compute_ate(pipeline.trajectory(), sequence.ground_truth());
  return metrics;
}

}  // namespace hm::slambench
