#include "slambench/harness.hpp"

#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "elasticfusion/pipeline.hpp"
#include "kfusion/pipeline.hpp"

namespace hm::slambench {
namespace {

/// Bridges a finished run's per-kernel op counts into the global registry
/// as the `hm_kernel_ops_total{kernel=...}` counter family. Counter handles
/// are resolved once per process.
void publish_kernel_stats(const KernelStats& stats) {
  static const auto counters = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    std::array<hm::common::Counter*,
               static_cast<std::size_t>(hm::kfusion::Kernel::kCount)>
        resolved{};
    for (std::size_t k = 0; k < resolved.size(); ++k) {
      resolved[k] = &registry.counter("hm_kernel_ops_total", "kernel",
                                      hm::kfusion::kKernelNames[k]);
    }
    return resolved;
  }();
  for (std::size_t k = 0; k < counters.size(); ++k) {
    const std::uint64_t ops = stats.count(static_cast<hm::kfusion::Kernel>(k));
    if (ops != 0) counters[k]->increment(ops);
  }
}

hm::common::Histogram& frame_histogram(const char* name) {
  return hm::common::MetricsRegistry::global().histogram(name);
}

}  // namespace

RunMetrics run_kfusion(const hm::dataset::RGBDSequence& sequence,
                       const hm::kfusion::KFusionParams& params,
                       hm::common::ThreadPool* pool) {
  RunMetrics metrics;
  metrics.frames = sequence.frame_count();
  if (metrics.frames == 0) return metrics;

  static hm::common::Histogram& frame_seconds =
      frame_histogram("hm_kfusion_frame_seconds");
  hm::common::Timer timer;
  hm::kfusion::KFusionPipeline pipeline(params, sequence.intrinsics(),
                                        sequence.frame(0).ground_truth_pose,
                                        pool);
  for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
    HM_TRACE_SPAN(frame_span, "kfusion_frame", "slam", &frame_seconds);
    const auto frame_result = pipeline.process_frame(sequence.frame(i).depth);
    if (frame_result.tracking_attempted && !frame_result.tracked) {
      ++metrics.tracking_failures;
    }
  }
  metrics.wall_seconds = timer.seconds();
  metrics.stats = pipeline.stats();
  publish_kernel_stats(metrics.stats);
  metrics.ate = compute_ate(pipeline.trajectory(), sequence.ground_truth());
  return metrics;
}

RunMetrics run_elasticfusion(const hm::dataset::RGBDSequence& sequence,
                             const hm::elasticfusion::EFParams& params) {
  RunMetrics metrics;
  metrics.frames = sequence.frame_count();
  if (metrics.frames == 0) return metrics;

  static hm::common::Histogram& frame_seconds =
      frame_histogram("hm_elasticfusion_frame_seconds");
  hm::common::Timer timer;
  hm::elasticfusion::ElasticFusionPipeline pipeline(
      params, sequence.intrinsics(), sequence.frame(0).ground_truth_pose);
  for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
    const auto& frame = sequence.frame(i);
    HM_TRACE_SPAN(frame_span, "elasticfusion_frame", "slam",
                  &frame_seconds);
    const auto frame_result =
        pipeline.process_frame(frame.depth, frame.intensity);
    if (!frame_result.tracked) ++metrics.tracking_failures;
  }
  metrics.wall_seconds = timer.seconds();
  metrics.stats = pipeline.stats();
  publish_kernel_stats(metrics.stats);
  metrics.relocalizations = pipeline.relocalization_count();
  metrics.loop_closures = pipeline.loop_closure_count();
  metrics.ate = compute_ate(pipeline.trajectory(), sequence.ground_truth());
  return metrics;
}

}  // namespace hm::slambench
