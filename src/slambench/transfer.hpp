// Cross-machine configuration-transfer analysis (paper, Section IV-D):
// the crowd-sourcing result rests on a strong Pearson/Spearman correlation
// between per-configuration runtimes on *similar* machines [43], and the
// paper notes that zero-shot transfer breaks down between fundamentally
// different machines. These tools quantify both effects from a single set
// of device-independent measurements.
#pragma once

#include <span>
#include <vector>

#include "slambench/device.hpp"
#include "slambench/harness.hpp"

namespace hm::slambench {

struct TransferAnalysis {
  double pearson = 0.0;    ///< Correlation of per-config runtimes.
  double spearman = 0.0;   ///< Rank correlation (config ordering agreement).
  /// Zero-shot quality: runtime of the source machine's fastest *valid*
  /// configuration when executed on the target, divided by the runtime of
  /// the target's own fastest valid configuration (>= 1; 1 = perfect
  /// transfer). 0 when no valid configuration exists.
  double transfer_regret = 0.0;
  /// Speedup over the target's default-config runtime achieved by the
  /// source-selected configuration on the target.
  double transferred_speedup = 0.0;
};

/// Analyzes transfer from `source` to `target` over a measured sample set.
/// `metrics[i]` is the device-independent measurement of configuration i;
/// `ate[i]` its accuracy value; configurations with ate < `validity_limit`
/// are eligible for selection. `default_metrics` is the default config's
/// measurement (for the speedup).
[[nodiscard]] TransferAnalysis analyze_transfer(
    std::span<const RunMetrics> metrics, std::span<const double> ate,
    const RunMetrics& default_metrics, const DeviceModel& source,
    const DeviceModel& target, double validity_limit = 0.05);

/// Per-configuration runtimes on a device (helper for correlation plots).
[[nodiscard]] std::vector<double> runtimes_on_device(
    std::span<const RunMetrics> metrics, const DeviceModel& device);

}  // namespace hm::slambench
