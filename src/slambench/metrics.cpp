#include "slambench/metrics.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <vector>

namespace hm::slambench {

using hm::geometry::Mat3d;
using hm::geometry::Vec3d;

TrajectoryError compute_ate(std::span<const SE3> estimated,
                            std::span<const SE3> ground_truth) {
  assert(estimated.size() == ground_truth.size());
  TrajectoryError error;
  error.frames = estimated.size();
  if (estimated.empty()) return error;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    const double e =
        (estimated[i].translation - ground_truth[i].translation).norm();
    sum += e;
    sum_sq += e * e;
    error.max = std::max(error.max, e);
  }
  const auto n = static_cast<double>(estimated.size());
  error.mean = sum / n;
  error.rmse = std::sqrt(sum_sq / n);
  error.final_drift =
      (estimated.back().translation - ground_truth.back().translation).norm();
  return error;
}

namespace {

/// Jacobi eigenvalue iteration for a symmetric 4x4 matrix; returns the
/// eigenvector of the largest eigenvalue.
std::array<double, 4> dominant_eigenvector_sym4(std::array<double, 16> a) {
  std::array<double, 16> v{};
  for (int i = 0; i < 4; ++i) v[static_cast<std::size_t>(i * 4 + i)] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    // Largest off-diagonal element.
    int p = 0, q = 1;
    double off_max = 0.0;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        const double value = std::abs(a[static_cast<std::size_t>(i * 4 + j)]);
        if (value > off_max) {
          off_max = value;
          p = i;
          q = j;
        }
      }
    }
    if (off_max < 1e-14) break;

    const double app = a[static_cast<std::size_t>(p * 4 + p)];
    const double aqq = a[static_cast<std::size_t>(q * 4 + q)];
    const double apq = a[static_cast<std::size_t>(p * 4 + q)];
    const double theta = (aqq - app) / (2.0 * apq);
    const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                     (std::abs(theta) + std::sqrt(theta * theta + 1.0));
    const double c = 1.0 / std::sqrt(t * t + 1.0);
    const double s = t * c;

    for (int k = 0; k < 4; ++k) {
      const double akp = a[static_cast<std::size_t>(k * 4 + p)];
      const double akq = a[static_cast<std::size_t>(k * 4 + q)];
      a[static_cast<std::size_t>(k * 4 + p)] = c * akp - s * akq;
      a[static_cast<std::size_t>(k * 4 + q)] = s * akp + c * akq;
    }
    for (int k = 0; k < 4; ++k) {
      const double apk = a[static_cast<std::size_t>(p * 4 + k)];
      const double aqk = a[static_cast<std::size_t>(q * 4 + k)];
      a[static_cast<std::size_t>(p * 4 + k)] = c * apk - s * aqk;
      a[static_cast<std::size_t>(q * 4 + k)] = s * apk + c * aqk;
    }
    for (int k = 0; k < 4; ++k) {
      const double vkp = v[static_cast<std::size_t>(k * 4 + p)];
      const double vkq = v[static_cast<std::size_t>(k * 4 + q)];
      v[static_cast<std::size_t>(k * 4 + p)] = c * vkp - s * vkq;
      v[static_cast<std::size_t>(k * 4 + q)] = s * vkp + c * vkq;
    }
  }

  int best = 0;
  for (int i = 1; i < 4; ++i) {
    if (a[static_cast<std::size_t>(i * 4 + i)] >
        a[static_cast<std::size_t>(best * 4 + best)]) {
      best = i;
    }
  }
  return {v[static_cast<std::size_t>(0 * 4 + best)],
          v[static_cast<std::size_t>(1 * 4 + best)],
          v[static_cast<std::size_t>(2 * 4 + best)],
          v[static_cast<std::size_t>(3 * 4 + best)]};
}

Mat3d quaternion_to_matrix(double w, double x, double y, double z) {
  Mat3d m;
  m(0, 0) = 1 - 2 * (y * y + z * z);
  m(0, 1) = 2 * (x * y - w * z);
  m(0, 2) = 2 * (x * z + w * y);
  m(1, 0) = 2 * (x * y + w * z);
  m(1, 1) = 1 - 2 * (x * x + z * z);
  m(1, 2) = 2 * (y * z - w * x);
  m(2, 0) = 2 * (x * z - w * y);
  m(2, 1) = 2 * (y * z + w * x);
  m(2, 2) = 1 - 2 * (x * x + y * y);
  return m;
}

}  // namespace

SE3 align_trajectories(std::span<const SE3> estimated,
                       std::span<const SE3> ground_truth) {
  assert(estimated.size() == ground_truth.size());
  SE3 identity;
  if (estimated.size() < 3) return identity;

  const auto n = static_cast<double>(estimated.size());
  Vec3d centroid_est{}, centroid_gt{};
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    centroid_est += estimated[i].translation;
    centroid_gt += ground_truth[i].translation;
  }
  centroid_est = centroid_est / n;
  centroid_gt = centroid_gt / n;

  // Cross-covariance of centered positions.
  Mat3d cov{};
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    const Vec3d a = estimated[i].translation - centroid_est;
    const Vec3d b = ground_truth[i].translation - centroid_gt;
    cov(0, 0) += a.x * b.x; cov(0, 1) += a.x * b.y; cov(0, 2) += a.x * b.z;
    cov(1, 0) += a.y * b.x; cov(1, 1) += a.y * b.y; cov(1, 2) += a.y * b.z;
    cov(2, 0) += a.z * b.x; cov(2, 1) += a.z * b.y; cov(2, 2) += a.z * b.z;
  }

  // Horn's closed form: the optimal rotation is the dominant eigenvector of
  // the 4x4 matrix built from the cross-covariance.
  const double sxx = cov(0, 0), sxy = cov(0, 1), sxz = cov(0, 2);
  const double syx = cov(1, 0), syy = cov(1, 1), syz = cov(1, 2);
  const double szx = cov(2, 0), szy = cov(2, 1), szz = cov(2, 2);
  const std::array<double, 16> horn = {
      sxx + syy + szz, syz - szy,        szx - sxz,        sxy - syx,
      syz - szy,       sxx - syy - szz,  sxy + syx,        szx + sxz,
      szx - sxz,       sxy + syx,        -sxx + syy - szz, syz + szy,
      sxy - syx,       szx + sxz,        syz + szy,        -sxx - syy + szz};
  const auto quat = dominant_eigenvector_sym4(horn);
  const double norm = std::sqrt(quat[0] * quat[0] + quat[1] * quat[1] +
                                quat[2] * quat[2] + quat[3] * quat[3]);
  if (norm < 1e-12) return identity;

  SE3 alignment;
  alignment.rotation = quaternion_to_matrix(quat[0] / norm, quat[1] / norm,
                                            quat[2] / norm, quat[3] / norm);
  alignment.translation = centroid_gt - alignment.rotation * centroid_est;
  return alignment;
}

RelativePoseError compute_rpe(std::span<const SE3> estimated,
                              std::span<const SE3> ground_truth,
                              std::size_t delta) {
  assert(estimated.size() == ground_truth.size());
  RelativePoseError error;
  if (delta == 0 || estimated.size() <= delta) return error;

  double translation_sum = 0.0, translation_sum_sq = 0.0;
  double rotation_sum = 0.0, rotation_sum_sq = 0.0;
  for (std::size_t i = 0; i + delta < estimated.size(); ++i) {
    // Relative motions over the window in each trajectory, then their
    // discrepancy E = (Q_i^-1 Q_{i+d})^-1 (P_i^-1 P_{i+d}).
    const SE3 gt_motion = ground_truth[i].inverse() * ground_truth[i + delta];
    const SE3 est_motion = estimated[i].inverse() * estimated[i + delta];
    const SE3 discrepancy = gt_motion.inverse() * est_motion;
    const double t = discrepancy.translation.norm();
    const double r = hm::geometry::so3_log(discrepancy.rotation).norm();
    translation_sum += t;
    translation_sum_sq += t * t;
    rotation_sum += r;
    rotation_sum_sq += r * r;
    error.translation_max = std::max(error.translation_max, t);
    ++error.windows;
  }
  const auto n = static_cast<double>(error.windows);
  error.translation_mean = translation_sum / n;
  error.translation_rmse = std::sqrt(translation_sum_sq / n);
  error.rotation_mean = rotation_sum / n;
  error.rotation_rmse = std::sqrt(rotation_sum_sq / n);
  return error;
}

TrajectoryError compute_aligned_ate(std::span<const SE3> estimated,
                                    std::span<const SE3> ground_truth) {
  const SE3 alignment = align_trajectories(estimated, ground_truth);
  std::vector<SE3> aligned(estimated.begin(), estimated.end());
  for (SE3& pose : aligned) {
    pose.translation = alignment * pose.translation;
    pose.rotation = alignment.rotation * pose.rotation;
  }
  return compute_ate(aligned, ground_truth);
}

}  // namespace hm::slambench
