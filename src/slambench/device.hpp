// Device cost models: convert counted kernel work into seconds for a given
// platform. This substitutes for running on the paper's physical devices
// (ODROID-XU3, ASUS T200TA, NVIDIA GTX 780 Ti); see DESIGN.md. Coefficients
// are calibrated so the *default* configuration of each application
// reproduces the paper's reported default frame rate on that device; kernel
// mixes differ per device class so configuration-induced speedups are
// device-dependent, as observed in the crowd-sourcing experiment.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "kfusion/kernel_stats.hpp"

namespace hm::slambench {

using hm::kfusion::Kernel;
using hm::kfusion::KernelStats;

struct DeviceModel {
  std::string name;
  /// Fixed per-frame cost (s): acquisition, transfers, kernel launches,
  /// display. Bounds the achievable frame rate on embedded devices.
  double frame_overhead = 0.0;
  /// Cost per counted operation (ns), per kernel class.
  std::array<double, static_cast<std::size_t>(Kernel::kCount)> ns_per_op{};
  /// Dynamic energy per counted operation (nJ), per kernel class. Together
  /// with `idle_watts` this models the power metric of the paper's earlier
  /// exploration ([40]: 0.65 W low-power point, best speed under 1 W,
  /// everything under the 2 W embedded budget).
  std::array<double, static_cast<std::size_t>(Kernel::kCount)> nj_per_op{};
  /// Baseline board power while the pipeline runs (W).
  double idle_watts = 0.0;

  [[nodiscard]] double& coeff(Kernel kernel) {
    return ns_per_op[static_cast<std::size_t>(kernel)];
  }
  [[nodiscard]] double coeff(Kernel kernel) const {
    return ns_per_op[static_cast<std::size_t>(kernel)];
  }
  [[nodiscard]] double& energy_coeff(Kernel kernel) {
    return nj_per_op[static_cast<std::size_t>(kernel)];
  }
  [[nodiscard]] double energy_coeff(Kernel kernel) const {
    return nj_per_op[static_cast<std::size_t>(kernel)];
  }

  /// Total modeled runtime (s) for `frames` frames of counted work.
  [[nodiscard]] double seconds(const KernelStats& stats, std::size_t frames) const;

  /// Per-frame runtime (s).
  [[nodiscard]] double seconds_per_frame(const KernelStats& stats,
                                         std::size_t frames) const {
    return frames == 0 ? 0.0 : seconds(stats, frames) / static_cast<double>(frames);
  }

  /// Total modeled energy (J): dynamic energy of the counted work plus the
  /// idle draw integrated over the modeled runtime.
  [[nodiscard]] double joules(const KernelStats& stats, std::size_t frames) const;

  /// Average power (W) while processing: energy / runtime. 0 if no work.
  [[nodiscard]] double average_watts(const KernelStats& stats,
                                     std::size_t frames) const;
};

/// The three experiment platforms of the paper (Section IV-A).
[[nodiscard]] DeviceModel odroid_xu3();       ///< Exynos 5422 + Mali-T628-MP6.
[[nodiscard]] DeviceModel asus_t200ta();      ///< Atom Z3795 + HD Graphics.
[[nodiscard]] DeviceModel nvidia_gtx780ti();  ///< Desktop discrete GPU.

/// Lookup by short name ("odroid", "asus", "nvidia"); falls back to ODROID.
[[nodiscard]] DeviceModel device_by_name(const std::string& name);

}  // namespace hm::slambench
