// The benchmark harness: runs a SLAM pipeline over an RGB-D sequence and
// collects the two performance metrics the paper's exploration is driven by
// (runtime via the device cost model, and ATE against ground truth).
#pragma once

#include <cstddef>

#include "common/thread_pool.hpp"
#include "dataset/sequence.hpp"
#include "elasticfusion/params.hpp"
#include "kfusion/kernel_stats.hpp"
#include "kfusion/params.hpp"
#include "slambench/device.hpp"
#include "slambench/metrics.hpp"

namespace hm::slambench {

/// Everything measured from one end-to-end run. Runtime on a specific
/// device is derived from `stats` with DeviceModel::seconds().
struct RunMetrics {
  TrajectoryError ate;
  KernelStats stats;
  std::size_t frames = 0;
  double wall_seconds = 0.0;       ///< Host wall-clock, for validation only.
  std::size_t tracking_failures = 0;
  std::size_t relocalizations = 0;   ///< ElasticFusion only.
  std::size_t loop_closures = 0;     ///< ElasticFusion only.
};

/// Runs KFusion with the given parameters over the whole sequence.
[[nodiscard]] RunMetrics run_kfusion(const hm::dataset::RGBDSequence& sequence,
                                     const hm::kfusion::KFusionParams& params,
                                     hm::common::ThreadPool* pool = nullptr);

/// Runs ElasticFusion with the given parameters over the whole sequence.
[[nodiscard]] RunMetrics run_elasticfusion(
    const hm::dataset::RGBDSequence& sequence,
    const hm::elasticfusion::EFParams& params);

}  // namespace hm::slambench
