#include "slambench/adapters.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace hm::slambench {

using hm::hypermapper::Configuration;
using hm::hypermapper::DesignSpace;
using hm::hypermapper::EvaluationError;
using hm::hypermapper::Parameter;

std::optional<EvaluationError> classify_run(const RunMetrics& metrics,
                                            const SlamFailureModel& model) {
  if (!model.enabled) return std::nullopt;
  if (!std::isfinite(metrics.ate.mean) || !std::isfinite(metrics.ate.max)) {
    // Parameter-infeasible run: the error metric itself degenerated. No
    // retry can fix the configuration.
    return EvaluationError("non-finite ATE (parameter-infeasible run)",
                           /*transient=*/false);
  }
  if (metrics.frames > 0) {
    const double failed_fraction =
        static_cast<double>(metrics.tracking_failures) /
        static_cast<double>(metrics.frames);
    if (failed_fraction > model.max_tracking_failure_fraction) {
      // Tracking loss: a different seed/schedule may re-lock, so transient.
      return EvaluationError(
          "tracking lost on " + std::to_string(metrics.tracking_failures) +
              "/" + std::to_string(metrics.frames) + " frames",
          /*transient=*/true);
    }
  }
  return std::nullopt;
}

DesignSpace build_kfusion_space() {
  DesignSpace space;
  space.add(Parameter::ordinal("volume_resolution", {64, 128, 256}));
  space.add(Parameter::ordinal("mu", {0.025, 0.05, 0.1, 0.2, 0.3, 0.4}));
  space.add(Parameter::ordinal("icp_iterations_l0", {4, 6, 8, 10, 12, 16}));
  space.add(Parameter::ordinal("icp_iterations_l1", {2, 3, 4, 5, 6}));
  space.add(Parameter::ordinal("icp_iterations_l2", {1, 2, 3, 4}));
  space.add(Parameter::ordinal("compute_size_ratio", {1, 2, 4, 8}));
  space.add(Parameter::integer_range("tracking_rate", 1, 5));
  space.add(Parameter::integer_range("integration_rate", 1, 5));
  space.add(Parameter::ordinal(
      "icp_threshold",
      {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}, /*log_feature=*/true));
  assert(space.cardinality() == 1'728'000ULL);
  return space;
}

DesignSpace build_elasticfusion_space() {
  DesignSpace space;
  space.add(Parameter::integer_range("icp_rgb_weight", 1, 25));
  space.add(Parameter::integer_range("depth_cutoff", 1, 18));
  space.add(Parameter::integer_range("confidence_threshold", 1, 32));
  space.add(Parameter::boolean("so3_prealign"));
  space.add(Parameter::boolean("open_loop"));
  space.add(Parameter::boolean("relocalisation"));
  space.add(Parameter::boolean("fast_odometry"));
  space.add(Parameter::boolean("frame_to_frame_rgb"));
  assert(space.cardinality() == 460'800ULL);
  return space;
}

namespace {

double value_of(const DesignSpace& space, const Configuration& config,
                std::string_view name) {
  const auto index = space.index_of(name);
  assert(index.has_value());
  return config[*index];
}

void set_value(const DesignSpace& space, Configuration& config,
               std::string_view name, double value) {
  const auto index = space.index_of(name);
  assert(index.has_value());
  config[*index] = value;
}

}  // namespace

hm::kfusion::KFusionParams kfusion_params_from_config(const DesignSpace& space,
                                                      const Configuration& raw) {
  const Configuration config = space.snap(raw);
  hm::kfusion::KFusionParams params;
  params.volume_resolution =
      static_cast<int>(value_of(space, config, "volume_resolution"));
  params.mu = value_of(space, config, "mu");
  params.icp_iterations = {
      static_cast<int>(value_of(space, config, "icp_iterations_l0")),
      static_cast<int>(value_of(space, config, "icp_iterations_l1")),
      static_cast<int>(value_of(space, config, "icp_iterations_l2"))};
  params.compute_size_ratio =
      static_cast<int>(value_of(space, config, "compute_size_ratio"));
  params.tracking_rate = static_cast<int>(value_of(space, config, "tracking_rate"));
  params.integration_rate =
      static_cast<int>(value_of(space, config, "integration_rate"));
  params.icp_threshold = value_of(space, config, "icp_threshold");
  return params;
}

Configuration kfusion_config_from_params(const DesignSpace& space,
                                         const hm::kfusion::KFusionParams& params) {
  Configuration config(space.parameter_count(), 0.0);
  set_value(space, config, "volume_resolution", params.volume_resolution);
  set_value(space, config, "mu", params.mu);
  set_value(space, config, "icp_iterations_l0", params.icp_iterations[0]);
  set_value(space, config, "icp_iterations_l1", params.icp_iterations[1]);
  set_value(space, config, "icp_iterations_l2", params.icp_iterations[2]);
  set_value(space, config, "compute_size_ratio", params.compute_size_ratio);
  set_value(space, config, "tracking_rate", params.tracking_rate);
  set_value(space, config, "integration_rate", params.integration_rate);
  set_value(space, config, "icp_threshold", params.icp_threshold);
  return space.snap(config);
}

hm::elasticfusion::EFParams ef_params_from_config(const DesignSpace& space,
                                                  const Configuration& raw) {
  const Configuration config = space.snap(raw);
  hm::elasticfusion::EFParams params;
  params.icp_rgb_weight = value_of(space, config, "icp_rgb_weight");
  params.depth_cutoff = value_of(space, config, "depth_cutoff");
  params.confidence_threshold = value_of(space, config, "confidence_threshold");
  // hm-lint: allow(no-float-equality) snapped boolean values are exact 0.0/1.0
  params.so3_prealign = value_of(space, config, "so3_prealign") != 0.0;
  // hm-lint: allow(no-float-equality) snapped boolean values are exact 0.0/1.0
  params.open_loop = value_of(space, config, "open_loop") != 0.0;
  // hm-lint: allow(no-float-equality) snapped boolean values are exact 0.0/1.0
  params.relocalisation = value_of(space, config, "relocalisation") != 0.0;
  // hm-lint: allow(no-float-equality) snapped boolean values are exact 0.0/1.0
  params.fast_odometry = value_of(space, config, "fast_odometry") != 0.0;
  params.frame_to_frame_rgb =
      // hm-lint: allow(no-float-equality) snapped boolean values are exact 0.0/1.0
      value_of(space, config, "frame_to_frame_rgb") != 0.0;
  return params;
}

Configuration ef_config_from_params(const DesignSpace& space,
                                    const hm::elasticfusion::EFParams& params) {
  Configuration config(space.parameter_count(), 0.0);
  set_value(space, config, "icp_rgb_weight", params.icp_rgb_weight);
  set_value(space, config, "depth_cutoff", params.depth_cutoff);
  set_value(space, config, "confidence_threshold", params.confidence_threshold);
  set_value(space, config, "so3_prealign", params.so3_prealign ? 1.0 : 0.0);
  set_value(space, config, "open_loop", params.open_loop ? 1.0 : 0.0);
  set_value(space, config, "relocalisation", params.relocalisation ? 1.0 : 0.0);
  set_value(space, config, "fast_odometry", params.fast_odometry ? 1.0 : 0.0);
  set_value(space, config, "frame_to_frame_rgb",
            params.frame_to_frame_rgb ? 1.0 : 0.0);
  return space.snap(config);
}

bool EvaluationCache::lookup(std::uint64_t key, RunMetrics& out) const {
  const std::lock_guard lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  out = it->second;
  return true;
}

std::vector<std::pair<std::uint64_t, RunMetrics>>
EvaluationCache::snapshot_sorted() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::pair<std::uint64_t, RunMetrics>> entries;
  entries.reserve(entries_.size());
  // hm-lint: allow(no-unordered-output-iteration) collected then sorted; no export sees map order
  for (const auto& [key, metrics] : entries_) {
    entries.emplace_back(key, metrics);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

hm::common::CsvTable cache_to_csv(const EvaluationCache& cache) {
  hm::common::CsvTable table({"config_key", "frames", "ate_mean", "ate_max",
                              "ate_rmse", "tracking_failures",
                              "relocalizations", "loop_closures", "total_ops"});
  for (const auto& [key, metrics] : cache.snapshot_sorted()) {
    table.add_row({std::to_string(key), std::to_string(metrics.frames),
                   hm::common::format_double(metrics.ate.mean),
                   hm::common::format_double(metrics.ate.max),
                   hm::common::format_double(metrics.ate.rmse),
                   std::to_string(metrics.tracking_failures),
                   std::to_string(metrics.relocalizations),
                   std::to_string(metrics.loop_closures),
                   std::to_string(metrics.stats.total())});
  }
  return table;
}

bool EvaluationCache::store(std::uint64_t key, const RunMetrics& metrics) {
  const std::lock_guard lock(mutex_);
  return entries_.try_emplace(key, metrics).second;
}

std::size_t EvaluationCache::restore(
    const std::vector<std::pair<std::uint64_t, RunMetrics>>& entries) {
  const std::lock_guard lock(mutex_);
  std::size_t inserted = 0;
  for (const auto& [key, metrics] : entries) {
    inserted += entries_.try_emplace(key, metrics).second ? 1 : 0;
  }
  return inserted;
}

std::size_t EvaluationCache::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

KFusionEvaluator::KFusionEvaluator(
    std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
    DeviceModel device, AteKind ate_kind, std::shared_ptr<EvaluationCache> cache)
    : space_(build_kfusion_space()),
      sequence_(std::move(sequence)),
      device_(std::move(device)),
      ate_kind_(ate_kind),
      cache_(cache ? std::move(cache) : std::make_shared<EvaluationCache>()) {}

RunMetrics KFusionEvaluator::measure(const Configuration& config) {
  const std::uint64_t key = space_.key(config);
  RunMetrics metrics;
  if (cache_->lookup(key, metrics)) return metrics;
  const hm::kfusion::KFusionParams params =
      kfusion_params_from_config(space_, config);
  metrics = run_kfusion(*sequence_, params);
  cache_->store(key, metrics);
  return metrics;
}

std::vector<double> KFusionEvaluator::evaluate(const Configuration& config) {
  ++evaluations_;
  const RunMetrics metrics = measure(config);
  if (auto failure = classify_run(metrics, failures_)) throw *failure;
  const double ate =
      ate_kind_ == AteKind::kMax ? metrics.ate.max : metrics.ate.mean;
  return {device_.seconds_per_frame(metrics.stats, metrics.frames), ate};
}

KFusionEnergyEvaluator::KFusionEnergyEvaluator(
    std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
    DeviceModel device, AteKind ate_kind, std::shared_ptr<EvaluationCache> cache)
    : space_(build_kfusion_space()),
      sequence_(std::move(sequence)),
      device_(std::move(device)),
      ate_kind_(ate_kind),
      cache_(cache ? std::move(cache) : std::make_shared<EvaluationCache>()) {}

RunMetrics KFusionEnergyEvaluator::measure(const Configuration& config) {
  const std::uint64_t key = space_.key(config);
  RunMetrics metrics;
  if (cache_->lookup(key, metrics)) return metrics;
  metrics = run_kfusion(*sequence_, kfusion_params_from_config(space_, config));
  cache_->store(key, metrics);
  return metrics;
}

std::vector<double> KFusionEnergyEvaluator::evaluate(const Configuration& config) {
  const RunMetrics metrics = measure(config);
  const double ate =
      ate_kind_ == AteKind::kMax ? metrics.ate.max : metrics.ate.mean;
  return {device_.seconds_per_frame(metrics.stats, metrics.frames), ate,
          device_.average_watts(metrics.stats, metrics.frames)};
}

ElasticFusionEvaluator::ElasticFusionEvaluator(
    std::shared_ptr<const hm::dataset::RGBDSequence> sequence,
    DeviceModel device, AteKind ate_kind, std::shared_ptr<EvaluationCache> cache)
    : space_(build_elasticfusion_space()),
      sequence_(std::move(sequence)),
      device_(std::move(device)),
      ate_kind_(ate_kind),
      cache_(cache ? std::move(cache) : std::make_shared<EvaluationCache>()) {}

RunMetrics ElasticFusionEvaluator::measure(const Configuration& config) {
  const std::uint64_t key = space_.key(config);
  RunMetrics metrics;
  if (cache_->lookup(key, metrics)) return metrics;
  const hm::elasticfusion::EFParams params = ef_params_from_config(space_, config);
  metrics = run_elasticfusion(*sequence_, params);
  cache_->store(key, metrics);
  return metrics;
}

std::vector<double> ElasticFusionEvaluator::evaluate(const Configuration& config) {
  ++evaluations_;
  const RunMetrics metrics = measure(config);
  if (auto failure = classify_run(metrics, failures_)) throw *failure;
  const double ate =
      ate_kind_ == AteKind::kMax ? metrics.ate.max : metrics.ate.mean;
  return {device_.seconds_per_frame(metrics.stats, metrics.frames), ate};
}

}  // namespace hm::slambench
