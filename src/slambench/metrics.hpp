// Trajectory accuracy metrics, after SLAMBench: the absolute trajectory
// error (ATE) between an estimated and a ground-truth trajectory, plus an
// optional Umeyama rigid alignment for trajectories with free gauge.
#pragma once

#include <cstddef>
#include <span>

#include "geometry/se3.hpp"

namespace hm::slambench {

using hm::geometry::SE3;

struct TrajectoryError {
  double mean = 0.0;   ///< Mean translational error (m) — SLAMBench's ATE.
  double max = 0.0;    ///< Max translational error (m) — Fig. 3's axis.
  double rmse = 0.0;
  double final_drift = 0.0;  ///< Error at the last frame.
  std::size_t frames = 0;
};

/// Per-frame translational ATE. Trajectories must have equal length; the
/// estimate is compared in the ground-truth frame directly (SLAMBench seeds
/// the first pose from ground truth, so no alignment is applied).
[[nodiscard]] TrajectoryError compute_ate(std::span<const SE3> estimated,
                                          std::span<const SE3> ground_truth);

/// Rigid (rotation + translation, no scale) least-squares alignment of the
/// estimated trajectory's positions onto the ground truth's (Umeyama /
/// Horn). Returns the transform to apply to estimated positions. Useful for
/// systems that do not share the ground-truth gauge.
[[nodiscard]] SE3 align_trajectories(std::span<const SE3> estimated,
                                     std::span<const SE3> ground_truth);

/// ATE after applying align_trajectories to the estimate.
[[nodiscard]] TrajectoryError compute_aligned_ate(std::span<const SE3> estimated,
                                                  std::span<const SE3> ground_truth);

/// Relative pose error over a fixed frame interval (Sturm et al.): the
/// local drift metric SLAMBench's successors report alongside the ATE.
/// For each i, compares the estimated motion over [i, i+delta] with the
/// ground-truth motion over the same window.
struct RelativePoseError {
  double translation_rmse = 0.0;  ///< Meters per window.
  double translation_mean = 0.0;
  double translation_max = 0.0;
  double rotation_rmse = 0.0;     ///< Radians per window.
  double rotation_mean = 0.0;
  std::size_t windows = 0;
};

[[nodiscard]] RelativePoseError compute_rpe(std::span<const SE3> estimated,
                                            std::span<const SE3> ground_truth,
                                            std::size_t delta = 1);

}  // namespace hm::slambench
