#include "common/csv.hpp"

#include <cassert>
#include <cmath>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"

namespace hm::common {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_field(std::string& out, std::string_view field) {
  if (!needs_quoting(field)) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_field(out, row[i]);
  }
  out.push_back('\n');
}

}  // namespace

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

void CsvTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
  // Header on line 1, one line per row unless parse_csv overwrites this.
  source_lines_.push_back(rows_.size() + 1);
}

std::optional<double> CsvTable::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& text = rows_[row][col];
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::vector<double>> CsvTable::column_as_numbers(
    std::size_t col, CsvError* error) const {
  std::vector<double> values;
  values.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const std::optional<double> value = cell_as_double(i, col);
    if (!value) {
      if (error != nullptr) {
        error->line = source_line(i);
        error->message = "line " + std::to_string(source_line(i)) +
                         ": non-numeric cell \"" + rows_[i][col] +
                         "\" in column " + std::to_string(col) + " (" +
                         (col < header_.size() ? header_[col] : "?") + ")";
      }
      return std::nullopt;
    }
    values.push_back(*value);
  }
  return values;
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  append_row(out, table.header());
  for (std::size_t i = 0; i < table.row_count(); ++i) append_row(out, table.row(i));
  return out;
}

std::optional<CsvTable> parse_csv(std::string_view text, CsvError* error) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::size_t> record_lines;  ///< Line each record started on.
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  std::size_t line = 1;
  std::size_t record_line = 1;
  std::size_t quote_line = 1;

  auto fail = [&](std::size_t at, std::string message) {
    if (error != nullptr) {
      error->line = at;
      error->message = "line " + std::to_string(at) + ": " + std::move(message);
    }
    return std::nullopt;
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    record_lines.push_back(record_line);
    current.clear();
    row_has_content = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      quote_line = line;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      if (row_has_content || !field.empty() || !current.empty()) end_record();
      ++line;
      record_line = line;
    } else {
      field.push_back(c);
      row_has_content = true;
    }
    ++i;
  }
  if (in_quotes) return fail(quote_line, "unterminated quoted field");
  if (row_has_content || !field.empty() || !current.empty()) end_record();

  if (records.empty()) return fail(1, "empty input (no header row)");
  CsvTable table(std::move(records.front()));
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.column_count()) {
      return fail(record_lines[r],
                  "row has " + std::to_string(records[r].size()) +
                      " columns, expected " +
                      std::to_string(table.column_count()));
    }
    table.add_row(std::move(records[r]));
    table.source_lines_.back() = record_lines[r];
  }
  return table;
}

bool write_csv_file(const std::string& path, const CsvTable& table) {
  // Atomic replacement: a crash mid-export leaves the previous report
  // intact rather than a torn CSV.
  return write_file_atomic(path, to_csv(table));
}

std::optional<CsvTable> read_csv_file(const std::string& path, CsvError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) error->message = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), error);
}

std::string format_double(double value) {
  char buffer[32];
  // Integers print as integers (%g at low precision would render 10 as
  // "1e+01").
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    const int len = std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return std::string(buffer, static_cast<std::size_t>(len));
  }
  const int written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string text(buffer, static_cast<std::size_t>(written));
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    const int len =
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(shorter, shorter + len, parsed);
    if (ec == std::errc{} && ptr == shorter + len && parsed == value) {
      return std::string(shorter, static_cast<std::size_t>(len));
    }
  }
  return text;
}

}  // namespace hm::common
