#include "common/csv.hpp"

#include <cassert>
#include <cmath>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace hm::common {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_field(std::string& out, std::string_view field) {
  if (!needs_quoting(field)) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

void append_row(std::string& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_field(out, row[i]);
  }
  out.push_back('\n');
}

}  // namespace

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

void CsvTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::optional<double> CsvTable::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& text = rows_[row][col];
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::vector<double> CsvTable::column_as_doubles(std::size_t col) const {
  std::vector<double> values;
  values.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    values.push_back(cell_as_double(i, col).value_or(0.0));
  }
  return values;
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  append_row(out, table.header());
  for (std::size_t i = 0; i < table.row_count(); ++i) append_row(out, table.row(i));
  return out;
}

std::optional<CsvTable> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      row_has_content = true;
    } else if (c == ',') {
      end_field();
      row_has_content = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      if (row_has_content || !field.empty() || !current.empty()) end_record();
    } else {
      field.push_back(c);
      row_has_content = true;
    }
    ++i;
  }
  if (in_quotes) return std::nullopt;  // Unterminated quote.
  if (row_has_content || !field.empty() || !current.empty()) end_record();

  if (records.empty()) return std::nullopt;
  CsvTable table(std::move(records.front()));
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != table.column_count()) return std::nullopt;  // Ragged.
    table.add_row(std::move(records[r]));
  }
  return table;
}

bool write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string text = to_csv(table);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

std::optional<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

std::string format_double(double value) {
  char buffer[32];
  // Integers print as integers (%g at low precision would render 10 as
  // "1e+01").
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    const int len = std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return std::string(buffer, static_cast<std::size_t>(len));
  }
  const int written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string text(buffer, static_cast<std::size_t>(written));
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    const int len =
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    const auto [ptr, ec] = std::from_chars(shorter, shorter + len, parsed);
    if (ec == std::errc{} && ptr == shorter + len && parsed == value) {
      return std::string(shorter, static_cast<std::size_t>(len));
    }
  }
  return text;
}

}  // namespace hm::common
