// Cooperative shutdown on SIGINT/SIGTERM.
//
// The example binaries must not die mid-write: the handler only sets an
// async-signal-safe flag, and the optimizer polls it between evaluations,
// flushes the journal, writes a final snapshot, and exits cleanly. A second
// signal kills the process immediately (SA_RESETHAND restores the default
// disposition after the first delivery), so a wedged run can still be
// interrupted the old-fashioned way.
#pragma once

namespace hm::common {

/// Installs SIGINT and SIGTERM handlers that request cooperative shutdown.
/// Idempotent. Returns false if sigaction() fails.
[[nodiscard]] bool install_shutdown_handler();

/// True once a shutdown signal has been received.
[[nodiscard]] bool shutdown_requested() noexcept;

/// Clears the flag (tests only; real runs exit after shutdown).
void reset_shutdown_for_test() noexcept;

}  // namespace hm::common
