#include "common/signal.hpp"

#include <atomic>
#include <csignal>

namespace hm::common {

namespace {

// The only write the handler performs. A lock-free atomic is both
// async-signal-safe (like volatile sig_atomic_t) and safe to read from a
// thread other than the one the signal landed on — hm_serve polls this
// flag from its event-loop thread.
std::atomic<int> g_shutdown_requested{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void handle_shutdown_signal(int) {
  g_shutdown_requested.store(1, std::memory_order_relaxed);
}

}  // namespace

bool install_shutdown_handler() {
  struct sigaction action = {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the first signal requests cooperative shutdown, a second
  // one gets the default disposition (terminate) — no way to wedge.
  action.sa_flags = SA_RESETHAND;
  if (sigaction(SIGINT, &action, nullptr) != 0) return false;
  if (sigaction(SIGTERM, &action, nullptr) != 0) return false;
  return true;
}

bool shutdown_requested() noexcept {
  return g_shutdown_requested.load(std::memory_order_relaxed) != 0;
}

void reset_shutdown_for_test() noexcept {
  g_shutdown_requested.store(0, std::memory_order_relaxed);
}

}  // namespace hm::common
