#include "common/signal.hpp"

#include <csignal>

namespace hm::common {

namespace {

// The only write the handler performs: volatile sig_atomic_t is the
// async-signal-safe subset the standard guarantees.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void handle_shutdown_signal(int) { g_shutdown_requested = 1; }

}  // namespace

bool install_shutdown_handler() {
  struct sigaction action = {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the first signal requests cooperative shutdown, a second
  // one gets the default disposition (terminate) — no way to wedge.
  action.sa_flags = SA_RESETHAND;
  if (sigaction(SIGINT, &action, nullptr) != 0) return false;
  if (sigaction(SIGTERM, &action, nullptr) != 0) return false;
  return true;
}

bool shutdown_requested() noexcept { return g_shutdown_requested != 0; }

void reset_shutdown_for_test() noexcept { g_shutdown_requested = 0; }

}  // namespace hm::common
