// Append-only, checksummed write-ahead log. The journal is what survives a
// SIGKILL mid-run: every record is one text line framed as
//
//   <crc32:8 hex> <type> <payload>\n
//
// with the CRC computed over "<type> <payload>" (payload newline/backslash
// escaped, so a record is always exactly one line). The file starts with a
// magic+version header line ("hmwal 1"). The reader is tolerant by
// construction: a truncated tail (the record being written when the process
// died) is detected and reported with its byte offset, and a corrupt record
// in the middle (flipped bits, interleaved garbage) is skipped with a
// line-accurate diagnostic while every intact record around it is still
// returned — recovery never silently drops the readable prefix or suffix.
//
// Writers append durably: a record is fwrite + fflush + fsync'd before
// append() returns, so an evaluation that was reported complete is on disk.
// Appends group-commit: records are formatted and sequenced under the
// writer mutex, but the IO itself runs with the mutex released — one
// "leader" thread drains the pending batch while contemporaries piggyback
// on its fsync, so concurrent appenders pay one disk flush, not N, and no
// thread ever blocks on the disk while holding the lock.
// Compaction (folding a prefix of records into a snapshot record) rewrites
// the whole file through the atomic writer, so a crash mid-compaction
// leaves either the old journal or the new one, never a hybrid.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hm::common {

/// The journal frame-format version this build reads and writes.
inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// Escapes a payload so it occupies exactly one line: '\\' -> "\\\\",
/// '\n' -> "\\n", '\r' -> "\\r".
[[nodiscard]] std::string journal_escape(std::string_view payload);

/// One intact record, located by its 1-based source line.
struct JournalRecord {
  std::size_t line = 0;
  std::string type;
  std::string payload;
};

/// What went wrong with one damaged region of the file.
enum class JournalDamage : std::uint8_t {
  kTruncatedTail,   ///< Final record has no newline (crash mid-append).
  kBadChecksum,     ///< Frame parsed but the CRC does not match.
  kMalformedFrame,  ///< Line is not "<8 hex> <type> ...".
  kBadEscape,       ///< Payload contains an invalid escape sequence.
};

[[nodiscard]] const char* to_string(JournalDamage damage);

/// One damaged region: 1-based line, byte offset of the line start, and a
/// human-readable description. CsvError-style: precise enough to point a
/// hex editor at.
struct JournalDefect {
  std::size_t line = 0;
  std::size_t offset = 0;
  JournalDamage damage = JournalDamage::kMalformedFrame;
  std::string message;
};

/// Overall classification of a read attempt.
enum class JournalStatus : std::uint8_t {
  kOk = 0,           ///< Every byte accounted for.
  kRecovered,        ///< Intact records returned; some regions damaged.
  kEmpty,            ///< Zero-byte file (created but never written).
  kMissing,          ///< File does not exist / cannot be opened.
  kBadMagic,         ///< First line is not a journal header.
  kVersionMismatch,  ///< Header version unsupported by this build.
};

[[nodiscard]] const char* to_string(JournalStatus status);

struct JournalReadResult {
  JournalStatus status = JournalStatus::kMissing;
  std::uint32_t version = 0;             ///< From the header, when present.
  std::vector<JournalRecord> records;    ///< Intact records, in file order.
  std::vector<JournalDefect> defects;    ///< Damaged regions, in file order.
  /// Byte offset of the first damaged byte; equals the file size when the
  /// whole file is intact.
  std::size_t first_damaged_offset = 0;

  /// True when the intact prefix (possibly everything) is usable for
  /// replay: kOk or kRecovered.
  [[nodiscard]] bool usable() const noexcept {
    return status == JournalStatus::kOk || status == JournalStatus::kRecovered;
  }
};

/// Parses journal text (header line + records). Never throws; damage is
/// reported through the result.
[[nodiscard]] JournalReadResult parse_journal(std::string_view text);

/// Reads and parses the journal file at `path`.
[[nodiscard]] JournalReadResult read_journal(const std::string& path);

/// The append side. Thread-safe: append() may be called concurrently (the
/// optimizer journals evaluations as they complete on pool workers).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending, writing the header line first if the file
  /// is new or empty. An existing journal is continued, not truncated.
  [[nodiscard]] bool open(const std::string& path, std::string* error = nullptr);

  /// Appends one record durably (fsync before returning). `type` must be a
  /// non-empty identifier (no spaces); `payload` may be anything — it is
  /// escaped into the frame. Returns false on I/O failure, after which the
  /// writer is closed (a half-written tail is exactly what the tolerant
  /// reader recovers from). Concurrent appends group-commit: the record is
  /// durable when this returns, but may have been flushed by another
  /// appender's fsync.
  [[nodiscard]] bool append(std::string_view type, std::string_view payload);

  /// Compaction: atomically rewrites the journal to the header plus exactly
  /// `records` (type, payload pairs), then reopens for appending. A crash
  /// anywhere inside leaves either the old or the new journal on disk.
  [[nodiscard]] bool rewrite(
      std::span<const std::pair<std::string, std::string>> records,
      std::string* error = nullptr);

  void close();

  [[nodiscard]] bool is_open() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return file_ != nullptr;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Records appended through this writer (excludes pre-existing ones).
  [[nodiscard]] std::size_t records_written() const noexcept;

  /// Disables the per-append fsync (tests that hammer the journal).
  /// Durability guarantees obviously do not hold while disabled.
  void set_fsync(bool enabled) noexcept { fsync_ = enabled; }

  /// Test hook, invoked after every durable append with the number of
  /// records written so far. The crash-injection harness SIGKILLs the
  /// process from here to simulate death at a seeded record boundary.
  void set_append_hook(std::function<void(std::size_t)> hook) {
    hook_ = std::move(hook);
  }

 private:
  [[nodiscard]] bool open_locked(std::string* error);
  /// Blocks until no group-commit leader holds the file (see append()).
  /// Must be called before touching `file_` from open/rewrite/close.
  void wait_for_flush(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mutex_;
  /// Signalled when a group-commit batch lands (or fails) and when a
  /// leader finishes, so open/rewrite/close can proceed.
  std::condition_variable commit_cv_;
  std::FILE* file_ = nullptr;  // hm-guarded-by(mutex_)
  std::string path_;
  /// Formatted records accepted but not yet flushed (the next batch).
  std::string pending_;  // hm-guarded-by(mutex_)
  /// Sequence number of the last record accepted into `pending_`.
  std::size_t enqueued_ = 0;  // hm-guarded-by(mutex_)
  /// Records durable on disk; append(seq) may return once written_ >= seq.
  std::size_t written_ = 0;  // hm-guarded-by(mutex_)
  /// True while a leader performs IO with `mutex_` released; `file_` is
  /// owned by that leader until it clears the flag.
  bool flushing_ = false;  // hm-guarded-by(mutex_)
  bool fsync_ = true;
  std::function<void(std::size_t)> hook_;
};

}  // namespace hm::common
