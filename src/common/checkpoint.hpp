// Field codecs for journal payloads and snapshot records.
//
// A journal payload is a flat sequence of fields joined with '|', each field
// escaped so it cannot contain a bare '|' or '\'. Doubles are serialized as
// their raw IEEE-754 bits in hex ("x" prefix), which makes the round trip
// byte-exact — a requirement for deterministic resume, where a re-read
// objective value must hash and compare identically to the value that was
// journaled. Plain non-negative integers use decimal.
//
// These are deliberately dumb building blocks: the journal schema itself
// (which fields mean what for an "eval" vs a "snap" record) lives with the
// subsystem that owns the run, e.g. src/hypermapper/run_journal.*.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace hm::common {

/// How often the optimizer folds the journal tail into a compacted
/// snapshot. Snapshots only ever happen at phase boundaries (between
/// iterations), never mid-iteration — a mid-iteration snapshot would
/// capture a partial evaluation set and change the proposals a resumed
/// run generates, breaking byte-identical resume.
struct CheckpointPolicy {
  /// Snapshot after every `every_phases` completed phases; 0 disables
  /// compaction (the journal grows for the whole run).
  std::uint32_t every_phases = 1;
};

namespace detail {

inline void append_field_escaped(std::string* out, std::string_view field) {
  for (const char c : field) {
    if (c == '\\' || c == '|') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace detail

/// Joins fields with '|', escaping '|' and '\' inside each field.
[[nodiscard]] inline std::string encode_fields(
    const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back('|');
    detail::append_field_escaped(&out, fields[i]);
  }
  return out;
}

/// Splits an encode_fields() payload back into fields. Returns nullopt on a
/// dangling escape (truncated or corrupted payload).
[[nodiscard]] inline std::optional<std::vector<std::string>> decode_fields(
    std::string_view payload) {
  std::vector<std::string> fields(1);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const char c = payload[i];
    if (c == '\\') {
      if (i + 1 >= payload.size()) return std::nullopt;
      fields.back().push_back(payload[++i]);
    } else if (c == '|') {
      fields.emplace_back();
    } else {
      fields.back().push_back(c);
    }
  }
  return fields;
}

[[nodiscard]] inline std::string encode_u64(std::uint64_t value) {
  return std::to_string(value);
}

[[nodiscard]] inline std::optional<std::uint64_t> decode_u64(
    std::string_view field) {
  if (field.empty() || field.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : field) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

/// Byte-exact double serialization: "x" + 16 lowercase hex digits of the
/// IEEE-754 bit pattern. Decimal formatting would round-trip approximately;
/// resume requires exactly.
[[nodiscard]] inline std::string encode_double(double value) {
  static const char kHex[] = "0123456789abcdef";
  std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  std::string out(17, 'x');
  for (int i = 16; i >= 1; --i) {
    out[static_cast<std::size_t>(i)] = kHex[bits & 0xFu];
    bits >>= 4;
  }
  return out;
}

[[nodiscard]] inline std::optional<double> decode_double(
    std::string_view field) {
  if (field.size() != 17 || field[0] != 'x') return std::nullopt;
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < 17; ++i) {
    const char c = field[i];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    bits = (bits << 4) | nibble;
  }
  return std::bit_cast<double>(bits);
}

/// RNG state as a single field: 4 state words, the spare-normal flag, and
/// the spare-normal bits, comma-joined.
[[nodiscard]] inline std::string encode_rng(const RngState& state) {
  std::string out;
  for (const std::uint64_t word : state.words) {
    out += encode_u64(word);
    out.push_back(',');
  }
  out += state.have_spare_normal ? "1" : "0";
  out.push_back(',');
  out += encode_u64(state.spare_normal_bits);
  return out;
}

[[nodiscard]] inline std::optional<RngState> decode_rng(
    std::string_view field) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= field.size(); ++i) {
    if (i == field.size() || field[i] == ',') {
      parts.push_back(field.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() != 6) return std::nullopt;
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto word = decode_u64(parts[i]);
    if (!word) return std::nullopt;
    state.words[i] = *word;
  }
  if (parts[4] == "1") {
    state.have_spare_normal = true;
  } else if (parts[4] == "0") {
    state.have_spare_normal = false;
  } else {
    return std::nullopt;
  }
  const auto bits = decode_u64(parts[5]);
  if (!bits) return std::nullopt;
  state.spare_normal_bits = *bits;
  return state;
}

}  // namespace hm::common
