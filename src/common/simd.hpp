// Portable SIMD abstraction for the dense image/volume kernels.
//
// One vector type, `hm::simd::vfloat`, of backend-dependent width kWidth
// (8 on AVX2, 4 on SSE4.1/NEON, 4 on the scalar fallback), plus the integer
// and mask companions the kernels need: load/store, fma, min/max, compares,
// select, masked gather/store and a deterministic lane-order reduction. The
// backend is chosen at configure time (-DHM_SIMD=ON plus the compiler's
// target flags); -DHM_SIMD=OFF compiles the scalar-array backend everywhere,
// so every *_simd kernel path builds even without vector hardware.
//
// Scalar mirrors: kernels keep a scalar reference path that must produce
// bit-identical per-lane results to the vector path (DESIGN.md §9). The
// mirrors below (`fmadd_s`, `exp_s`, `nearest_i_s`, `pow2i_s`) perform
// exactly the operation the vector backend performs per lane — fused
// multiply-add only when the backend fuses, the same polynomial for exp,
// the same round-to-nearest-even conversion — which is what makes the
// scalar-vs-SIMD equivalence suite exact instead of tolerance-ridden.
// vexp/exp_s are maintained as a lockstep pair: edit both or neither.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#if defined(HM_SIMD_ENABLED) && HM_SIMD_ENABLED
#if defined(__AVX2__)
#define HM_SIMD_BACKEND_AVX2 1
#elif defined(__SSE4_1__)
#define HM_SIMD_BACKEND_SSE 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define HM_SIMD_BACKEND_NEON 1
#else
#define HM_SIMD_BACKEND_SCALAR 1
#endif
#else
#define HM_SIMD_BACKEND_SCALAR 1
#endif

#if defined(HM_SIMD_BACKEND_AVX2) || defined(HM_SIMD_BACKEND_SSE)
#include <immintrin.h>
#elif defined(HM_SIMD_BACKEND_NEON)
#include <arm_neon.h>
#endif

namespace hm::simd {

#if defined(HM_SIMD_BACKEND_AVX2)

inline constexpr int kWidth = 8;
inline constexpr bool kEnabled = true;
inline constexpr bool kHasFma = true;
[[nodiscard]] constexpr const char* backend_name() noexcept { return "avx2"; }

struct vfloat { __m256 v; };
struct vint { __m256i v; };
struct vmask { __m256 m; };  ///< All-ones lane bits = true.

[[nodiscard]] inline vfloat vload(const float* p) noexcept { return {_mm256_loadu_ps(p)}; }
inline void vstore(float* p, vfloat a) noexcept { _mm256_storeu_ps(p, a.v); }
inline void vstore_masked(float* p, vfloat a, vmask m) noexcept {
  _mm256_maskstore_ps(p, _mm256_castps_si256(m.m), a.v);
}
[[nodiscard]] inline vfloat vbroadcast(float x) noexcept { return {_mm256_set1_ps(x)}; }
[[nodiscard]] inline vfloat vzero() noexcept { return {_mm256_setzero_ps()}; }
[[nodiscard]] inline vfloat viota() noexcept {
  return {_mm256_setr_ps(0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f)};
}
[[nodiscard]] inline vfloat operator+(vfloat a, vfloat b) noexcept { return {_mm256_add_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator-(vfloat a, vfloat b) noexcept { return {_mm256_sub_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator*(vfloat a, vfloat b) noexcept { return {_mm256_mul_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator/(vfloat a, vfloat b) noexcept { return {_mm256_div_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vfma(vfloat a, vfloat b, vfloat c) noexcept {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
[[nodiscard]] inline vfloat vmin(vfloat a, vfloat b) noexcept { return {_mm256_min_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vmax(vfloat a, vfloat b) noexcept { return {_mm256_max_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vabs(vfloat a) noexcept {
  return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
}
[[nodiscard]] inline vfloat vsqrt(vfloat a) noexcept { return {_mm256_sqrt_ps(a.v)}; }
[[nodiscard]] inline vfloat vfloor(vfloat a) noexcept { return {_mm256_floor_ps(a.v)}; }
[[nodiscard]] inline vmask cmp_lt(vfloat a, vfloat b) noexcept { return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)}; }
[[nodiscard]] inline vmask cmp_le(vfloat a, vfloat b) noexcept { return {_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)}; }
[[nodiscard]] inline vmask cmp_gt(vfloat a, vfloat b) noexcept { return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)}; }
[[nodiscard]] inline vmask cmp_ge(vfloat a, vfloat b) noexcept { return {_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)}; }
[[nodiscard]] inline vmask cmp_eq(vfloat a, vfloat b) noexcept { return {_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)}; }
[[nodiscard]] inline vmask mask_and(vmask a, vmask b) noexcept { return {_mm256_and_ps(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_or(vmask a, vmask b) noexcept { return {_mm256_or_ps(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_andnot(vmask a, vmask b) noexcept {
  return {_mm256_andnot_ps(b.m, a.m)};  // a & ~b
}
[[nodiscard]] inline int mask_bits(vmask m) noexcept { return _mm256_movemask_ps(m.m); }
[[nodiscard]] inline vfloat vselect(vmask m, vfloat a, vfloat b) noexcept {
  return {_mm256_blendv_ps(b.v, a.v, m.m)};
}
[[nodiscard]] inline vint vbroadcast_i(std::int32_t x) noexcept { return {_mm256_set1_epi32(x)}; }
[[nodiscard]] inline vint vload_i(const std::int32_t* p) noexcept {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
[[nodiscard]] inline vint vadd_i(vint a, vint b) noexcept { return {_mm256_add_epi32(a.v, b.v)}; }
[[nodiscard]] inline vint vmul_i(vint a, vint b) noexcept { return {_mm256_mullo_epi32(a.v, b.v)}; }
[[nodiscard]] inline vint vtrunc_i(vfloat a) noexcept { return {_mm256_cvttps_epi32(a.v)}; }
[[nodiscard]] inline vint vnearest_i(vfloat a) noexcept { return {_mm256_cvtps_epi32(a.v)}; }
[[nodiscard]] inline vfloat vto_float(vint a) noexcept { return {_mm256_cvtepi32_ps(a.v)}; }
[[nodiscard]] inline vfloat vpow2i(vint n) noexcept {
  return {_mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n.v, _mm256_set1_epi32(127)), 23))};
}
[[nodiscard]] inline vfloat vgather_masked(const float* base, vint idx, vmask m) noexcept {
  return {_mm256_mask_i32gather_ps(_mm256_setzero_ps(), base, idx.v, m.m, 4)};
}

#elif defined(HM_SIMD_BACKEND_SSE)

inline constexpr int kWidth = 4;
inline constexpr bool kEnabled = true;
inline constexpr bool kHasFma = false;
[[nodiscard]] constexpr const char* backend_name() noexcept { return "sse4.1"; }

struct vfloat { __m128 v; };
struct vint { __m128i v; };
struct vmask { __m128 m; };

[[nodiscard]] inline vfloat vload(const float* p) noexcept { return {_mm_loadu_ps(p)}; }
inline void vstore(float* p, vfloat a) noexcept { _mm_storeu_ps(p, a.v); }
[[nodiscard]] inline int mask_bits(vmask m) noexcept { return _mm_movemask_ps(m.m); }
inline void vstore_masked(float* p, vfloat a, vmask m) noexcept {
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, a.v);
  const int bits = mask_bits(m);
  for (int i = 0; i < 4; ++i) {
    if ((bits >> i) & 1) p[i] = lanes[i];
  }
}
[[nodiscard]] inline vfloat vbroadcast(float x) noexcept { return {_mm_set1_ps(x)}; }
[[nodiscard]] inline vfloat vzero() noexcept { return {_mm_setzero_ps()}; }
[[nodiscard]] inline vfloat viota() noexcept { return {_mm_setr_ps(0.0f, 1.0f, 2.0f, 3.0f)}; }
[[nodiscard]] inline vfloat operator+(vfloat a, vfloat b) noexcept { return {_mm_add_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator-(vfloat a, vfloat b) noexcept { return {_mm_sub_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator*(vfloat a, vfloat b) noexcept { return {_mm_mul_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator/(vfloat a, vfloat b) noexcept { return {_mm_div_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vfma(vfloat a, vfloat b, vfloat c) noexcept {
  // No fused op on this backend: the scalar mirror is a plain mul+add too.
  return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)};
}
[[nodiscard]] inline vfloat vmin(vfloat a, vfloat b) noexcept { return {_mm_min_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vmax(vfloat a, vfloat b) noexcept { return {_mm_max_ps(a.v, b.v)}; }
[[nodiscard]] inline vfloat vabs(vfloat a) noexcept {
  return {_mm_andnot_ps(_mm_set1_ps(-0.0f), a.v)};
}
[[nodiscard]] inline vfloat vsqrt(vfloat a) noexcept { return {_mm_sqrt_ps(a.v)}; }
[[nodiscard]] inline vfloat vfloor(vfloat a) noexcept { return {_mm_floor_ps(a.v)}; }
[[nodiscard]] inline vmask cmp_lt(vfloat a, vfloat b) noexcept { return {_mm_cmplt_ps(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_le(vfloat a, vfloat b) noexcept { return {_mm_cmple_ps(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_gt(vfloat a, vfloat b) noexcept { return {_mm_cmpgt_ps(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_ge(vfloat a, vfloat b) noexcept { return {_mm_cmpge_ps(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_eq(vfloat a, vfloat b) noexcept { return {_mm_cmpeq_ps(a.v, b.v)}; }
[[nodiscard]] inline vmask mask_and(vmask a, vmask b) noexcept { return {_mm_and_ps(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_or(vmask a, vmask b) noexcept { return {_mm_or_ps(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_andnot(vmask a, vmask b) noexcept { return {_mm_andnot_ps(b.m, a.m)}; }
[[nodiscard]] inline vfloat vselect(vmask m, vfloat a, vfloat b) noexcept {
  return {_mm_blendv_ps(b.v, a.v, m.m)};
}
[[nodiscard]] inline vint vbroadcast_i(std::int32_t x) noexcept { return {_mm_set1_epi32(x)}; }
[[nodiscard]] inline vint vload_i(const std::int32_t* p) noexcept {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
}
[[nodiscard]] inline vint vadd_i(vint a, vint b) noexcept { return {_mm_add_epi32(a.v, b.v)}; }
[[nodiscard]] inline vint vmul_i(vint a, vint b) noexcept { return {_mm_mullo_epi32(a.v, b.v)}; }
[[nodiscard]] inline vint vtrunc_i(vfloat a) noexcept { return {_mm_cvttps_epi32(a.v)}; }
[[nodiscard]] inline vint vnearest_i(vfloat a) noexcept { return {_mm_cvtps_epi32(a.v)}; }
[[nodiscard]] inline vfloat vto_float(vint a) noexcept { return {_mm_cvtepi32_ps(a.v)}; }
[[nodiscard]] inline vfloat vpow2i(vint n) noexcept {
  return {_mm_castsi128_ps(
      _mm_slli_epi32(_mm_add_epi32(n.v, _mm_set1_epi32(127)), 23))};
}
[[nodiscard]] inline vfloat vgather_masked(const float* base, vint idx, vmask m) noexcept {
  alignas(16) std::int32_t indices[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(indices), idx.v);
  alignas(16) float lanes[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  const int bits = mask_bits(m);
  for (int i = 0; i < 4; ++i) {
    if ((bits >> i) & 1) lanes[i] = base[indices[i]];
  }
  return {_mm_load_ps(lanes)};
}

#elif defined(HM_SIMD_BACKEND_NEON)

inline constexpr int kWidth = 4;
inline constexpr bool kEnabled = true;
inline constexpr bool kHasFma = true;
[[nodiscard]] constexpr const char* backend_name() noexcept { return "neon"; }

struct vfloat { float32x4_t v; };
struct vint { int32x4_t v; };
struct vmask { uint32x4_t m; };

[[nodiscard]] inline vfloat vload(const float* p) noexcept { return {vld1q_f32(p)}; }
inline void vstore(float* p, vfloat a) noexcept { vst1q_f32(p, a.v); }
[[nodiscard]] inline int mask_bits(vmask m) noexcept {
  std::uint32_t lanes[4];
  vst1q_u32(lanes, m.m);
  int bits = 0;
  for (int i = 0; i < 4; ++i) bits |= (lanes[i] != 0u ? 1 : 0) << i;
  return bits;
}
inline void vstore_masked(float* p, vfloat a, vmask m) noexcept {
  float lanes[4];
  vst1q_f32(lanes, a.v);
  const int bits = mask_bits(m);
  for (int i = 0; i < 4; ++i) {
    if ((bits >> i) & 1) p[i] = lanes[i];
  }
}
[[nodiscard]] inline vfloat vbroadcast(float x) noexcept { return {vdupq_n_f32(x)}; }
[[nodiscard]] inline vfloat vzero() noexcept { return {vdupq_n_f32(0.0f)}; }
[[nodiscard]] inline vfloat viota() noexcept {
  const float lanes[4] = {0.0f, 1.0f, 2.0f, 3.0f};
  return {vld1q_f32(lanes)};
}
[[nodiscard]] inline vfloat operator+(vfloat a, vfloat b) noexcept { return {vaddq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator-(vfloat a, vfloat b) noexcept { return {vsubq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator*(vfloat a, vfloat b) noexcept { return {vmulq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat operator/(vfloat a, vfloat b) noexcept { return {vdivq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat vfma(vfloat a, vfloat b, vfloat c) noexcept {
  return {vfmaq_f32(c.v, a.v, b.v)};  // Fused, like the scalar mirror's std::fma.
}
[[nodiscard]] inline vfloat vmin(vfloat a, vfloat b) noexcept { return {vminq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat vmax(vfloat a, vfloat b) noexcept { return {vmaxq_f32(a.v, b.v)}; }
[[nodiscard]] inline vfloat vabs(vfloat a) noexcept { return {vabsq_f32(a.v)}; }
[[nodiscard]] inline vfloat vsqrt(vfloat a) noexcept { return {vsqrtq_f32(a.v)}; }
[[nodiscard]] inline vfloat vfloor(vfloat a) noexcept { return {vrndmq_f32(a.v)}; }
[[nodiscard]] inline vmask cmp_lt(vfloat a, vfloat b) noexcept { return {vcltq_f32(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_le(vfloat a, vfloat b) noexcept { return {vcleq_f32(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_gt(vfloat a, vfloat b) noexcept { return {vcgtq_f32(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_ge(vfloat a, vfloat b) noexcept { return {vcgeq_f32(a.v, b.v)}; }
[[nodiscard]] inline vmask cmp_eq(vfloat a, vfloat b) noexcept { return {vceqq_f32(a.v, b.v)}; }
[[nodiscard]] inline vmask mask_and(vmask a, vmask b) noexcept { return {vandq_u32(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_or(vmask a, vmask b) noexcept { return {vorrq_u32(a.m, b.m)}; }
[[nodiscard]] inline vmask mask_andnot(vmask a, vmask b) noexcept { return {vbicq_u32(a.m, b.m)}; }
[[nodiscard]] inline vfloat vselect(vmask m, vfloat a, vfloat b) noexcept {
  return {vbslq_f32(m.m, a.v, b.v)};
}
[[nodiscard]] inline vint vbroadcast_i(std::int32_t x) noexcept { return {vdupq_n_s32(x)}; }
[[nodiscard]] inline vint vload_i(const std::int32_t* p) noexcept { return {vld1q_s32(p)}; }
[[nodiscard]] inline vint vadd_i(vint a, vint b) noexcept { return {vaddq_s32(a.v, b.v)}; }
[[nodiscard]] inline vint vmul_i(vint a, vint b) noexcept { return {vmulq_s32(a.v, b.v)}; }
[[nodiscard]] inline vint vtrunc_i(vfloat a) noexcept { return {vcvtq_s32_f32(a.v)}; }
[[nodiscard]] inline vint vnearest_i(vfloat a) noexcept { return {vcvtnq_s32_f32(a.v)}; }
[[nodiscard]] inline vfloat vto_float(vint a) noexcept { return {vcvtq_f32_s32(a.v)}; }
[[nodiscard]] inline vfloat vpow2i(vint n) noexcept {
  return {vreinterpretq_f32_s32(
      vshlq_n_s32(vaddq_s32(n.v, vdupq_n_s32(127)), 23))};
}
[[nodiscard]] inline vfloat vgather_masked(const float* base, vint idx, vmask m) noexcept {
  std::int32_t indices[4];
  vst1q_s32(indices, idx.v);
  float lanes[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  const int bits = mask_bits(m);
  for (int i = 0; i < 4; ++i) {
    if ((bits >> i) & 1) lanes[i] = base[indices[i]];
  }
  return {vld1q_f32(lanes)};
}

#else  // HM_SIMD_BACKEND_SCALAR

inline constexpr int kWidth = 4;
inline constexpr bool kEnabled = false;
inline constexpr bool kHasFma = false;
[[nodiscard]] constexpr const char* backend_name() noexcept { return "scalar"; }

struct vfloat { float lanes[4]; };
struct vint { std::int32_t lanes[4]; };
struct vmask { bool lanes[4]; };

[[nodiscard]] inline vfloat vload(const float* p) noexcept {
  return {{p[0], p[1], p[2], p[3]}};
}
inline void vstore(float* p, vfloat a) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = a.lanes[i];
}
inline void vstore_masked(float* p, vfloat a, vmask m) noexcept {
  for (int i = 0; i < 4; ++i) {
    if (m.lanes[i]) p[i] = a.lanes[i];
  }
}
[[nodiscard]] inline vfloat vbroadcast(float x) noexcept { return {{x, x, x, x}}; }
[[nodiscard]] inline vfloat vzero() noexcept { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
[[nodiscard]] inline vfloat viota() noexcept { return {{0.0f, 1.0f, 2.0f, 3.0f}}; }
namespace detail {
template <typename Op>
[[nodiscard]] inline vfloat lanewise(vfloat a, vfloat b, Op op) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = op(a.lanes[i], b.lanes[i]);
  return out;
}
template <typename Op>
[[nodiscard]] inline vmask lanecmp(vfloat a, vfloat b, Op op) noexcept {
  vmask out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = op(a.lanes[i], b.lanes[i]);
  return out;
}
}  // namespace detail
[[nodiscard]] inline vfloat operator+(vfloat a, vfloat b) noexcept {
  return detail::lanewise(a, b, [](float x, float y) { return x + y; });
}
[[nodiscard]] inline vfloat operator-(vfloat a, vfloat b) noexcept {
  return detail::lanewise(a, b, [](float x, float y) { return x - y; });
}
[[nodiscard]] inline vfloat operator*(vfloat a, vfloat b) noexcept {
  return detail::lanewise(a, b, [](float x, float y) { return x * y; });
}
[[nodiscard]] inline vfloat operator/(vfloat a, vfloat b) noexcept {
  return detail::lanewise(a, b, [](float x, float y) { return x / y; });
}
[[nodiscard]] inline vfloat vfma(vfloat a, vfloat b, vfloat c) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = a.lanes[i] * b.lanes[i] + c.lanes[i];
  return out;
}
[[nodiscard]] inline vfloat vmin(vfloat a, vfloat b) noexcept {
  // x86 minps semantics: a < b ? a : b (second operand on unordered input).
  return detail::lanewise(a, b, [](float x, float y) { return x < y ? x : y; });
}
[[nodiscard]] inline vfloat vmax(vfloat a, vfloat b) noexcept {
  return detail::lanewise(a, b, [](float x, float y) { return x > y ? x : y; });
}
[[nodiscard]] inline vfloat vabs(vfloat a) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = std::fabs(a.lanes[i]);
  return out;
}
[[nodiscard]] inline vfloat vsqrt(vfloat a) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = std::sqrt(a.lanes[i]);
  return out;
}
[[nodiscard]] inline vfloat vfloor(vfloat a) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = std::floor(a.lanes[i]);
  return out;
}
[[nodiscard]] inline vmask cmp_lt(vfloat a, vfloat b) noexcept {
  return detail::lanecmp(a, b, [](float x, float y) { return x < y; });
}
[[nodiscard]] inline vmask cmp_le(vfloat a, vfloat b) noexcept {
  return detail::lanecmp(a, b, [](float x, float y) { return x <= y; });
}
[[nodiscard]] inline vmask cmp_gt(vfloat a, vfloat b) noexcept {
  return detail::lanecmp(a, b, [](float x, float y) { return x > y; });
}
[[nodiscard]] inline vmask cmp_ge(vfloat a, vfloat b) noexcept {
  return detail::lanecmp(a, b, [](float x, float y) { return x >= y; });
}
[[nodiscard]] inline vmask cmp_eq(vfloat a, vfloat b) noexcept {
  return detail::lanecmp(a, b, [](float x, float y) { return x == y; });
}
[[nodiscard]] inline vmask mask_and(vmask a, vmask b) noexcept {
  vmask out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = a.lanes[i] && b.lanes[i];
  return out;
}
[[nodiscard]] inline vmask mask_or(vmask a, vmask b) noexcept {
  vmask out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = a.lanes[i] || b.lanes[i];
  return out;
}
[[nodiscard]] inline vmask mask_andnot(vmask a, vmask b) noexcept {
  vmask out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = a.lanes[i] && !b.lanes[i];
  return out;
}
[[nodiscard]] inline int mask_bits(vmask m) noexcept {
  int bits = 0;
  for (int i = 0; i < 4; ++i) bits |= (m.lanes[i] ? 1 : 0) << i;
  return bits;
}
[[nodiscard]] inline vfloat vselect(vmask m, vfloat a, vfloat b) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = m.lanes[i] ? a.lanes[i] : b.lanes[i];
  return out;
}
[[nodiscard]] inline vint vbroadcast_i(std::int32_t x) noexcept { return {{x, x, x, x}}; }
[[nodiscard]] inline vint vload_i(const std::int32_t* p) noexcept {
  return {{p[0], p[1], p[2], p[3]}};
}
// Integer lane ops wrap modulo 2^32 (like paddd/pmulld); float->int
// conversions return INT_MIN for NaN/out-of-range inputs (like cvttps).
// Kernels only consume such lanes behind masks, but the scalar backend must
// not invoke UB computing them.
[[nodiscard]] inline vint vadd_i(vint a, vint b) noexcept {
  vint out{};
  for (int i = 0; i < 4; ++i) {
    out.lanes[i] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(a.lanes[i]) +
        static_cast<std::uint32_t>(b.lanes[i]));
  }
  return out;
}
[[nodiscard]] inline vint vmul_i(vint a, vint b) noexcept {
  vint out{};
  for (int i = 0; i < 4; ++i) {
    out.lanes[i] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(a.lanes[i]) *
        static_cast<std::uint32_t>(b.lanes[i]));
  }
  return out;
}
[[nodiscard]] inline vint vtrunc_i(vfloat a) noexcept {
  vint out{};
  for (int i = 0; i < 4; ++i) {
    const float f = a.lanes[i];
    out.lanes[i] = (f >= -2147483648.0f && f < 2147483648.0f)
                       ? static_cast<std::int32_t>(f)
                       : std::numeric_limits<std::int32_t>::min();
  }
  return out;
}
[[nodiscard]] inline vint vnearest_i(vfloat a) noexcept {
  vint out{};
  for (int i = 0; i < 4; ++i) {
    const float f = std::nearbyintf(a.lanes[i]);
    out.lanes[i] = (f >= -2147483648.0f && f < 2147483648.0f)
                       ? static_cast<std::int32_t>(f)
                       : std::numeric_limits<std::int32_t>::min();
  }
  return out;
}
[[nodiscard]] inline vfloat vto_float(vint a) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = static_cast<float>(a.lanes[i]);
  return out;
}
[[nodiscard]] inline vfloat vpow2i(vint n) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) {
    out.lanes[i] = std::bit_cast<float>((n.lanes[i] + 127) << 23);
  }
  return out;
}
[[nodiscard]] inline vfloat vgather_masked(const float* base, vint idx, vmask m) noexcept {
  vfloat out{};
  for (int i = 0; i < 4; ++i) out.lanes[i] = m.lanes[i] ? base[idx.lanes[i]] : 0.0f;
  return out;
}

#endif  // backend selection

// --- Backend-independent helpers built on the primitive ops. -------------

/// Extracts lane `i` (0 <= i < kWidth). Not for hot loops.
[[nodiscard]] inline float lane(vfloat a, int i) noexcept {
  float lanes[kWidth];
  vstore(lanes, a);
  return lanes[i];
}

[[nodiscard]] inline bool mask_any(vmask m) noexcept { return mask_bits(m) != 0; }
[[nodiscard]] inline bool mask_all(vmask m) noexcept {
  return mask_bits(m) == (1 << kWidth) - 1;
}
[[nodiscard]] inline bool mask_none(vmask m) noexcept { return mask_bits(m) == 0; }
[[nodiscard]] inline int mask_popcount(vmask m) noexcept {
  return __builtin_popcount(static_cast<unsigned>(mask_bits(m)));
}
/// Mask with the first n lanes set (tail handling).
[[nodiscard]] inline vmask mask_first_n(int n) noexcept {
  return cmp_lt(viota(), vbroadcast(static_cast<float>(n)));
}

/// Deterministic lane-order reduction: lanes summed left-to-right, exactly
/// as a scalar loop over the same values would — the property the ICP
/// row-flush relies on for its documented tolerance bound.
[[nodiscard]] inline float vreduce_add(vfloat a) noexcept {
  float lanes[kWidth];
  vstore(lanes, a);
  float sum = 0.0f;
  for (int i = 0; i < kWidth; ++i) sum += lanes[i];
  return sum;
}

/// Lane-order reduction into double (used when the accumulation target is
/// double-precision normal equations).
[[nodiscard]] inline double vreduce_add_d(vfloat a) noexcept {
  float lanes[kWidth];
  vstore(lanes, a);
  double sum = 0.0;
  for (int i = 0; i < kWidth; ++i) sum += static_cast<double>(lanes[i]);
  return sum;
}

// --- Scalar mirrors: one lane of the vector backend, exactly. ------------

/// a*b + c with the same rounding the backend's vfma produces per lane.
[[nodiscard]] inline float fmadd_s(float a, float b, float c) noexcept {
  if constexpr (kHasFma) {
    return std::fma(a, b, c);
  } else {
    return a * b + c;
  }
}

/// min/max mirroring vmin/vmax lane semantics (x86 minps/maxps: the second
/// operand wins ties and unordered comparisons).
[[nodiscard]] inline float min_s(float a, float b) noexcept { return a < b ? a : b; }
[[nodiscard]] inline float max_s(float a, float b) noexcept { return a > b ? a : b; }

/// Round-to-nearest-even float->int, mirroring vnearest_i (NaN and
/// out-of-range inputs produce INT_MIN, like cvtps2dq).
[[nodiscard]] inline std::int32_t nearest_i_s(float x) noexcept {
  const float f = std::nearbyintf(x);
  return (f >= -2147483648.0f && f < 2147483648.0f)
             ? static_cast<std::int32_t>(f)
             : std::numeric_limits<std::int32_t>::min();
}

/// 2^n by exponent-bit construction, mirroring vpow2i.
[[nodiscard]] inline float pow2i_s(std::int32_t n) noexcept {
  return std::bit_cast<float>((n + 127) << 23);
}

namespace detail {
inline constexpr float kExpLog2e = 1.44269504088896341f;
inline constexpr float kExpLn2 = 0.693147180559945286f;
inline constexpr float kExpLo = -87.0f;
inline constexpr float kExpHi = 88.0f;
inline constexpr float kExpC0 = 1.9875691500e-4f;
inline constexpr float kExpC1 = 1.3981999507e-3f;
inline constexpr float kExpC2 = 8.3334519073e-3f;
inline constexpr float kExpC3 = 4.1665795894e-2f;
inline constexpr float kExpC4 = 1.6666665459e-1f;
inline constexpr float kExpC5 = 5.0000001201e-1f;
}  // namespace detail

/// Vector e^x (Cephes-style polynomial, ~1e-7 relative error on [-87, 88];
/// inputs are clamped to that range). Lockstep mirror: exp_s below.
[[nodiscard]] inline vfloat vexp(vfloat x) noexcept {
  using namespace detail;
  x = vmax(x, vbroadcast(kExpLo));
  x = vmin(x, vbroadcast(kExpHi));
  const vfloat z = x * vbroadcast(kExpLog2e);
  const vint n = vnearest_i(z);
  const vfloat r = z - vto_float(n);  // Exact: |z| < 2^7 and |r| <= 0.5.
  const vfloat t = r * vbroadcast(kExpLn2);
  vfloat p = vbroadcast(kExpC0);
  p = vfma(p, t, vbroadcast(kExpC1));
  p = vfma(p, t, vbroadcast(kExpC2));
  p = vfma(p, t, vbroadcast(kExpC3));
  p = vfma(p, t, vbroadcast(kExpC4));
  p = vfma(p, t, vbroadcast(kExpC5));
  const vfloat y = vfma(p, t * t, t + vbroadcast(1.0f));
  return y * vpow2i(n);
}

/// Scalar e^x identical per-lane to vexp (same polynomial, same op order,
/// same fused-or-not multiply-adds). Lockstep mirror: edit with vexp.
[[nodiscard]] inline float exp_s(float x) noexcept {
  using namespace detail;
  x = x < kExpLo ? kExpLo : x;
  x = x > kExpHi ? kExpHi : x;
  const float z = x * kExpLog2e;
  const std::int32_t n = nearest_i_s(z);
  const float r = z - static_cast<float>(n);
  const float t = r * kExpLn2;
  float p = kExpC0;
  p = fmadd_s(p, t, kExpC1);
  p = fmadd_s(p, t, kExpC2);
  p = fmadd_s(p, t, kExpC3);
  p = fmadd_s(p, t, kExpC4);
  p = fmadd_s(p, t, kExpC5);
  const float y = fmadd_s(p, t * t, t + 1.0f);
  return y * pow2i_s(n);
}

}  // namespace hm::simd
