// Process-wide metrics: monotonic counters, gauges, and log-scaled-bin
// histograms behind a thread-safe registry with deterministic (sorted)
// snapshots. Hot paths touch only relaxed atomics; callers are expected to
// look a metric up once (under the registry mutex) and keep the reference,
// which stays valid for the registry's lifetime.
//
// Metric identity is the full Prometheus-style string, e.g.
// `hm_kernel_ops_total{kernel="raycast"}` — the registry does not model
// label sets beyond building that identity, which keeps lookups a single
// map find and makes snapshot ordering trivially deterministic (std::map,
// per the no-unordered-output-iteration invariant).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hm::common {

/// Monotonically increasing event count. Relaxed atomics: totals are only
/// read at snapshot points, never used for synchronisation.
class Counter {
 public:
  void increment(std::uint64_t by = 1) noexcept {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (front size, utilisation, ...).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scaled bin layout shared by Histogram and HistogramShard.
/// Bucket 0 is the underflow bin (value < lowest, including non-finite and
/// non-positive values); buckets 1..bins cover
/// [lowest*growth^(k-1), lowest*growth^k) lower-inclusive; bucket bins+1 is
/// the overflow bin. The defaults span 100 ns .. ~3 hours in seconds.
struct HistogramLayout {
  double lowest = 1e-7;
  double growth = 2.0;
  std::size_t bins = 40;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return bins + 2; }
  /// Lower edge of bucket `k` for k in [1, bins+1]: lowest * growth^(k-1).
  [[nodiscard]] double lower_edge(std::size_t bucket) const noexcept;
  /// Index of the bucket that `value` falls into.
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;

  [[nodiscard]] bool operator==(const HistogramLayout& other) const noexcept {
    return lowest == other.lowest && growth == other.growth &&
           bins == other.bins;
  }
};

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  HistogramLayout layout;
  std::vector<std::uint64_t> buckets;  ///< Size layout.bucket_count().
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Upper-bound estimate of the q-quantile (q in [0,1]) from bin edges.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Unsynchronised single-owner histogram. Workers observe into a private
/// shard and merge it into the shared Histogram once, at join time; merging
/// is associative and commutative, so the merged result is independent of
/// worker interleaving.
class HistogramShard {
 public:
  explicit HistogramShard(HistogramLayout layout = HistogramLayout{});

  void observe(double value) noexcept;
  HistogramShard& operator+=(const HistogramShard& other) noexcept;

  [[nodiscard]] const HistogramLayout& layout() const noexcept {
    return layout_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  HistogramLayout layout_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Shared, thread-safe histogram. observe() is wait-free (relaxed atomic
/// adds); merge() folds a worker shard in bucket-by-bucket.
class Histogram {
 public:
  explicit Histogram(HistogramLayout layout = HistogramLayout{});

  void observe(double value) noexcept;
  void merge(const HistogramShard& shard) noexcept;

  [[nodiscard]] const HistogramLayout& layout() const noexcept {
    return layout_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  HistogramLayout layout_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One label pair for the multi-label metric surface. Values may contain
/// arbitrary bytes; rendering escapes them per the Prometheus exposition
/// format. Keys are expected to be plain `[a-zA-Z_][a-zA-Z0-9_]*` metric
/// label names and are rendered verbatim.
struct MetricLabel {
  std::string key;
  std::string value;
};

/// One registry snapshot: every metric, sorted by identity.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Thread-safe name -> metric registry. Metrics are created on first use
/// and never removed, so returned references remain valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view key,
                                 std::string_view value);
  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::vector<MetricLabel> labels);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view key,
                             std::string_view value);
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             std::vector<MetricLabel> labels);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     HistogramLayout layout = HistogramLayout{});
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::string_view key,
                                     std::string_view value,
                                     HistogramLayout layout = HistogramLayout{});
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<MetricLabel> labels,
                                     HistogramLayout layout = HistogramLayout{});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>>
      counters_;  // hm-guarded-by(mutex_)
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
      gauges_;  // hm-guarded-by(mutex_)
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;  // hm-guarded-by(mutex_)
};

/// Escapes a label value for the Prometheus exposition format:
/// `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
[[nodiscard]] std::string prometheus_escape(std::string_view value);

/// Builds the canonical labeled identity `name{key="value"}` with the value
/// Prometheus-escaped.
[[nodiscard]] std::string labeled_metric(std::string_view name,
                                         std::string_view key,
                                         std::string_view value);

/// Builds the canonical multi-label identity `name{k1="v1",k2="v2",...}`:
/// labels are sorted by key (so identical label sets always produce the
/// same identity regardless of caller ordering) and values are
/// Prometheus-escaped.
[[nodiscard]] std::string labeled_metric(std::string_view name,
                                         std::vector<MetricLabel> labels);

/// Escapes `\`, `"`, control characters for embedding in a JSON string.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Prometheus text exposition format (TYPE lines, cumulative `_bucket{le=}`
/// series, `_sum`/`_count`). Deterministic: follows snapshot order.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// JSON object mirroring the snapshot (counters / gauges / histograms).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Compact human-readable report for end-of-run console output.
[[nodiscard]] std::string metrics_summary(const MetricsSnapshot& snapshot);

/// Writes the snapshot atomically; `.json` extension selects to_json,
/// anything else the Prometheus text format. Returns false (and sets
/// `error` when non-null) on I/O failure.
[[nodiscard]] bool write_metrics_file(const MetricsSnapshot& snapshot,
                                      const std::string& path,
                                      std::string* error = nullptr);

}  // namespace hm::common
