#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hm::common {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (const double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double trimmed_mean(std::span<const double> values, double trim_fraction) {
  if (values.empty()) return 0.0;
  trim_fraction = std::clamp(trim_fraction, 0.0, 0.4999);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto trim = static_cast<std::size_t>(
      std::floor(static_cast<double>(sorted.size()) * trim_fraction));
  return mean(std::span<const double>(sorted).subspan(
      trim, sorted.size() - 2 * trim));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  s.min = *min_it;
  s.max = *max_it;
  s.median = quantile(values, 0.5);
  s.p25 = quantile(values, 0.25);
  s.p75 = quantile(values, 0.75);
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // hm-lint: allow(no-float-equality) exact zero guards the constant-input division
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> result(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tied block [i, j] shares the average 1-based rank.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) result[order[k]] = avg_rank;
    i = j + 1;
  }
  return result;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const std::vector<double> rx = ranks(x);
  const std::vector<double> ry = ranks(y);
  return pearson(rx, ry);
}

double r_squared(std::span<const double> truth, std::span<const double> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  // hm-lint: allow(no-float-equality) exact zero guards the degenerate R^2 case
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double accum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    accum += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
  }
  return std::sqrt(accum / static_cast<double>(truth.size()));
}

double mae(std::span<const double> truth, std::span<const double> predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double accum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    accum += std::abs(truth[i] - predicted[i]);
  }
  return accum / static_cast<double>(truth.size());
}

}  // namespace hm::common
