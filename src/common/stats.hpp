// Descriptive statistics and rank correlation used throughout the
// experiments: summary of speedup distributions (Fig. 5), Pearson/Spearman
// cross-device configuration correlation (Section IV-D), and surrogate
// model quality metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hm::common {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Full descriptive summary; returns an all-zero Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> values);

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double variance(std::span<const double> values);  ///< Sample variance.
[[nodiscard]] double stddev(std::span<const double> values);

/// Linear-interpolated quantile, q in [0, 1]. Returns 0 on empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);
[[nodiscard]] inline double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

/// Mean after discarding floor(n * trim_fraction) values from each tail —
/// the robust aggregate for noisy crowd measurements. trim_fraction in
/// [0, 0.5); returns 0 on empty input, plain mean when nothing is trimmed.
[[nodiscard]] double trimmed_mean(std::span<const double> values,
                                  double trim_fraction);

/// Pearson product-moment correlation; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation with average ranks for ties.
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Average ranks (1-based) with ties sharing the mean rank.
[[nodiscard]] std::vector<double> ranks(std::span<const double> values);

/// Coefficient of determination of predictions vs. truth (can be negative).
[[nodiscard]] double r_squared(std::span<const double> truth,
                               std::span<const double> predicted);

/// Root mean squared error; 0 for empty input. Sizes must match.
[[nodiscard]] double rmse(std::span<const double> truth,
                          std::span<const double> predicted);

/// Mean absolute error; 0 for empty input. Sizes must match.
[[nodiscard]] double mae(std::span<const double> truth,
                         std::span<const double> predicted);

}  // namespace hm::common
