// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the repository (samplers, forests, noise
// models, device populations) takes an explicit `Rng` so experiment results
// are bit-reproducible across runs and platforms. The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that small
// integer seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>

namespace hm::common {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a tiny stateless hash in tests.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Complete serialized generator state: the four xoshiro words plus the
/// Marsaglia polar method's cached spare normal (without it, restoring a
/// generator mid-pair would desynchronize every subsequent normal() draw).
/// The spare is stored as raw bits so the round trip is byte-exact.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool have_spare_normal = false;
  std::uint64_t spare_normal_bits = 0;
};

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
/// be used with <random> distributions, though the helpers below are
/// preferred because their results are identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Two generators built from
  /// the same seed produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9d1db3f027f1c543ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent's continuation. Used to hand per-task RNGs to worker threads.
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)() ^ 0xda3e39cb94b95bdbULL); }

  /// Captures the full generator state for checkpointing. A generator
  /// restored from this state continues the identical stream — including
  /// the pending spare normal, so normal() sequences are preserved too.
  [[nodiscard]] RngState save_state() const noexcept;

  /// Restores state previously captured with save_state().
  void restore_state(const RngState& state) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Fisher-Yates shuffle with an explicit generator (stable across platforms,
/// unlike std::shuffle whose result is unspecified).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const auto j = rng.uniform_index(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace hm::common
