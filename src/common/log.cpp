#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>

namespace hm::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogFormat> g_format{LogFormat::kPlain};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::int64_t unix_now_ms() {
  // Wall-clock (not steady) time on purpose: log timestamps exist to be
  // correlated with events outside the process. Never used for
  // measurement — that is Timer / TraceSpan territory.
  // hm-lint: allow(no-adhoc-instrumentation) wall-clock log timestamp, not a measurement
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_format(LogFormat format) noexcept { g_format.store(format); }
LogFormat log_format() noexcept { return g_format.load(); }

std::uint32_t log_thread_index() {
  static std::atomic<std::uint32_t> next_index{0};
  thread_local const std::uint32_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

namespace {
std::string& context_slot() {
  thread_local std::string context;
  return context;
}
}  // namespace

void set_log_context(std::string_view context) {
  context_slot().assign(context);
}

const std::string& log_context() noexcept { return context_slot(); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line;
  line.reserve(message.size() + 48);
  if (g_format.load() == LogFormat::kTimestamped) {
    line.append(detail::iso8601_utc(unix_now_ms()));
    line.append(" [t");
    line.append(std::to_string(log_thread_index()));
    line.append("] ");
    const std::string& context = log_context();
    if (!context.empty()) {
      line.append("[c:");
      line.append(context);
      line.append("] ");
    }
  }
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

namespace detail {

std::string iso8601_utc(std::int64_t unix_ms) {
  // Floor-divide so pre-epoch times still map to the correct second.
  std::int64_t seconds = unix_ms / 1000;
  std::int64_t millis = unix_ms % 1000;
  if (millis < 0) {
    millis += 1000;
    seconds -= 1;
  }
  std::tm parts{};
  const std::time_t time = static_cast<std::time_t>(seconds);
  gmtime_r(&time, &parts);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                parts.tm_hour, parts.tm_min, parts.tm_sec,
                static_cast<int>(millis));
  return buffer;
}

}  // namespace detail

}  // namespace hm::common
