#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace hm::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line;
  line.reserve(message.size() + 16);
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  line.append(message);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace hm::common
