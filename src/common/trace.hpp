// RAII trace spans recorded into per-thread buffers and exported as Chrome
// trace-event JSON (load in chrome://tracing or Perfetto). Tracing has two
// gates: a runtime toggle (`set_trace_enabled`, off by default — a disabled
// span costs one relaxed load) and a compile-time gate (`HM_TRACE_ENABLED`,
// set by the CMake option `HM_TRACE`; when 0 the span class is an empty
// no-op and every instrumentation site compiles away).
//
// Span names and categories must be string literals (or otherwise outlive
// the trace buffers): events store the pointers, not copies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef HM_TRACE_ENABLED
#define HM_TRACE_ENABLED 1
#endif

namespace hm::common {

class Histogram;

/// One completed span. Times are nanoseconds on the process-local steady
/// timeline (zero at the first trace operation). `trace_id` is the
/// request-scoped correlation id that was current on the recording thread
/// (0 = no request context).
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::uint64_t trace_id = 0;
};

/// One span in a cross-process merged timeline: owned strings (the source
/// process's literals are not addressable here), an explicit process id,
/// and times rebased onto the receiving process's trace timeline.
struct RemoteTraceEvent {
  std::string name;
  std::string category;
  std::uint32_t process_id = 0;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  std::uint64_t trace_id = 0;
};

/// Runtime toggle for span recording. Off by default.
void set_trace_enabled(bool enabled) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;

/// Runtime filter for request-scoped tracing: when set, spans recorded on
/// a thread whose current trace id is 0 are dropped instead of buffered.
/// Lets a long-lived daemon enable tracing on behalf of one traced request
/// without accumulating spans for every other unit of work it runs. Off by
/// default (all spans recorded).
void set_trace_request_only(bool enabled) noexcept;
[[nodiscard]] bool trace_request_only() noexcept;

/// Runtime toggle for the span -> duration-histogram feed. On by default
/// (phase duration metrics do not require trace capture); turning it off
/// makes HM_TRACE_SPAN sites skip the histogram-argument evaluation
/// entirely, collapsing a fully disabled span to two relaxed loads. Used
/// by the trace_overhead bench to separate histogram cost from trace
/// recording cost.
void set_span_histograms_enabled(bool enabled) noexcept;
[[nodiscard]] bool span_histograms_enabled() noexcept;

/// Small dense id of the calling thread on the trace timeline (assigned in
/// first-use order; the first tracing thread — normally main — gets 0).
[[nodiscard]] std::uint32_t trace_thread_id();

/// The trace id currently attached to the calling thread (0 = none). Spans
/// recorded on this thread carry it; propagate it across process hops so a
/// request's spans correlate end to end.
[[nodiscard]] std::uint64_t current_trace_id() noexcept;
void set_current_trace_id(std::uint64_t trace_id) noexcept;

/// Scoped trace context: installs `trace_id` as the calling thread's
/// current id for the guard's lifetime, restoring the previous id on exit.
/// Use around each unit of request-scoped work (a campaign evaluation, a
/// sandbox child's eval) so concurrent requests on a shared pool do not
/// bleed ids into each other's spans.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id) noexcept
      : saved_(current_trace_id()) {
    set_current_trace_id(trace_id);
  }
  ~TraceContext() { set_current_trace_id(saved_); }
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// Generates a process-unique nonzero trace id (pid / wall-clock / counter
/// mix through an avalanche hash).
[[nodiscard]] std::uint64_t generate_trace_id() noexcept;

/// Forces trace-epoch capture now. Call before fork(): a forked child
/// inherits the parent's (steady, wall-clock) anchor pair, so cross-process
/// time rebasing degenerates to the identity for sandbox workers.
void init_trace_epoch() noexcept;

/// Drops all recorded events (buffers of live threads and the foreign-span
/// store included).
void clear_trace();

/// Drops every recorded event carrying `trace_id` — thread buffers and the
/// foreign-span store both — leaving other requests' spans intact. Call
/// after a request's bundle has been shipped so a long-lived process does
/// not retain spans forever. No-op for id 0 (use clear_trace for that).
void drop_trace_spans(std::uint64_t trace_id);

/// Merged copy of every thread's events, sorted by (start, tid, name) so
/// identical runs serialise identically.
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Serialises this process's spans — local buffers plus any already-ingested
/// foreign spans — into a self-describing bundle for shipping over the
/// framed pipe/socket protocols. When `trace_id_filter` is nonzero only
/// spans carrying that id are included. Times stay on the sender's
/// timeline; the bundle carries the sender's wall-clock anchor so the
/// receiver can rebase.
[[nodiscard]] std::string encode_span_bundle(std::uint64_t trace_id_filter = 0);

/// Decodes a bundle produced by `encode_span_bundle` in another process and
/// appends its spans to this process's foreign-span store, rebasing start
/// times onto the local trace timeline via the wall-clock anchors. Returns
/// false (ignoring the payload) on malformed input.
bool ingest_span_bundle(std::string_view payload);

/// Local events (tagged with this process's pid) plus ingested foreign
/// events, merged and sorted by (start, pid, tid, name).
[[nodiscard]] std::vector<RemoteTraceEvent> merged_trace_snapshot();

/// Chrome trace-event JSON (`{"traceEvents": [...]}`), complete "X" events,
/// microsecond timestamps, keyed by this process's pid.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// Chrome trace-event JSON for a cross-process merged timeline: events keep
/// their originating pid, and nonzero trace ids are emitted as a
/// `"trace_id"` arg (decimal string) so Perfetto can group one request's
/// spans across processes.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<RemoteTraceEvent>& events);

/// Snapshots the merged timeline (local + ingested foreign spans) and
/// writes it atomically to `path`.
[[nodiscard]] bool write_chrome_trace(const std::string& path,
                                      std::string* error = nullptr);

namespace detail {
/// Nanoseconds since the process trace epoch (steady clock).
[[nodiscard]] std::int64_t trace_now_ns() noexcept;
/// Wall-clock time (unix nanoseconds) of the process trace epoch.
[[nodiscard]] std::int64_t trace_epoch_unix_ns() noexcept;
/// Appends a completed span (tagged with the thread's current trace id) to
/// the calling thread's buffer.
void record_span(const char* name, const char* category, std::int64_t start_ns,
                 std::int64_t duration_ns);
}  // namespace detail

#if HM_TRACE_ENABLED

/// Scoped span: records [construction, destruction) when tracing is on,
/// and/or feeds the elapsed seconds into `histogram` when one is given
/// (histogram feeding works even with the trace toggle off, so phase
/// duration metrics do not require trace capture).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "app",
                     Histogram* histogram = nullptr) noexcept
      // Check the cheap runtime toggle before the pointer: on the hot
      // disabled path this short-circuits to a single relaxed load.
      : name_(name), category_(category), histogram_(histogram),
        armed_(trace_enabled() || histogram != nullptr) {
    if (armed_) start_ns_ = detail::trace_now_ns();
  }
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool armed_;
  std::int64_t start_ns_ = 0;
};

#else  // HM_TRACE_ENABLED == 0: spans compile to nothing.

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "app",
                     Histogram* = nullptr) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // HM_TRACE_ENABLED

}  // namespace hm::common

/// Hot-path span: evaluates `histogram_expr` only when the span can
/// actually use it — after the runtime toggles — so a fully disabled site
/// costs two relaxed loads and never touches the metrics registry. Use
/// this (rather than constructing TraceSpan directly) on per-frame and
/// per-kernel paths; one-per-evaluation spans can keep the plain form.
/// `var` names the scoped span object.
#if HM_TRACE_ENABLED
#define HM_TRACE_SPAN(var, name, category, histogram_expr)       \
  const hm::common::TraceSpan var(                               \
      name, category,                                            \
      hm::common::span_histograms_enabled() ? (histogram_expr)   \
                                            : nullptr)
#else
#define HM_TRACE_SPAN(var, name, category, histogram_expr) \
  const hm::common::TraceSpan var(name, category, nullptr)
#endif
