// Leveled stderr logging with a process-global threshold. Kept intentionally
// small: experiments print structured results to stdout; the log is for
// progress and diagnostics only.
#pragma once

#include <sstream>
#include <string_view>

namespace hm::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets / reads the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line `[LEVEL] message` to stderr if `level` passes the
/// threshold. Thread-safe (single write call per line).
void log_line(LogLevel level, std::string_view message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace hm::common
