// Leveled stderr logging with a process-global threshold. Kept intentionally
// small: experiments print structured results to stdout; the log is for
// progress and diagnostics only.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace hm::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// kPlain: `[LEVEL] message`. kTimestamped: prepends an ISO-8601 UTC
/// timestamp and the emitting thread's index so interleaved worker logs
/// are attributable: `2017-05-14T09:30:00.123Z [t0] [LEVEL] message`.
enum class LogFormat { kPlain = 0, kTimestamped = 1 };

/// Sets / reads the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Sets / reads the process-wide line format (default kPlain).
void set_log_format(LogFormat format) noexcept;
[[nodiscard]] LogFormat log_format() noexcept;

/// Small dense index of the calling thread, assigned on first log call
/// (the main thread normally gets 0). Stable for the thread's lifetime.
[[nodiscard]] std::uint32_t log_thread_index();

/// Thread-local context tag (e.g. a campaign id) rendered into the
/// timestamped prefix as `[c:<tag>]` between the thread index and the
/// level: `2017-05-14T09:30:00.123Z [t0] [c:smoke] [INFO] ...`. Empty
/// (the default) renders nothing.
void set_log_context(std::string_view context);
[[nodiscard]] const std::string& log_context() noexcept;

/// Scoped log context: installs `context` for the guard's lifetime and
/// restores the previous tag on exit, so pool threads that interleave work
/// for several campaigns attribute each line correctly.
class LogContextScope {
 public:
  explicit LogContextScope(std::string_view context)
      : saved_(log_context()) {
    set_log_context(context);
  }
  ~LogContextScope() { set_log_context(saved_); }
  LogContextScope(const LogContextScope&) = delete;
  LogContextScope& operator=(const LogContextScope&) = delete;

 private:
  std::string saved_;
};

/// Emits one line to stderr if `level` passes the threshold, formatted per
/// `log_format()`. Thread-safe (single write call per line).
void log_line(LogLevel level, std::string_view message);

namespace detail {
/// Formats a Unix timestamp in milliseconds as ISO-8601 UTC with
/// millisecond precision (`1970-01-01T00:00:00.000Z`). Split out from
/// log_line so the formatting is testable on fixed inputs.
[[nodiscard]] std::string iso8601_utc(std::int64_t unix_ms);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace hm::common
