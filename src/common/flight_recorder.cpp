#include "common/flight_recorder.hpp"

#include <fcntl.h>

#include <chrono>
#include <csignal>

#include "common/atomic_file.hpp"
#include "common/metrics.hpp"

namespace hm::common {
namespace {

std::int64_t unix_now_ms() noexcept {
  // Wall-clock on purpose: flight-recorder timestamps are correlated with
  // log lines and journal mtimes during post-mortems.
  // hm-lint: allow(no-adhoc-instrumentation) wall-clock event timestamp, not a measurement
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

// Crash-dump destination. Plain static storage: the signal handler must
// not allocate, so the path is copied here at install time.
char g_crash_path[240] = {};
std::atomic<bool> g_crash_path_set{false};

/// Appends the decimal rendering of `value` to `out` at `pos` (bounded by
/// `cap`). Async-signal-safe: fixed stack buffer, no locale, no stdio.
void append_u64(char* out, std::size_t& pos, std::size_t cap,
                std::uint64_t value) noexcept {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && n < sizeof(digits));
  while (n > 0 && pos < cap) out[pos++] = digits[--n];
}

void append_str(char* out, std::size_t& pos, std::size_t cap,
                const char* text) noexcept {
  while (*text != '\0' && pos < cap) out[pos++] = *text++;
}

}  // namespace

const char* to_string(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kPark: return "park";
    case FlightEventKind::kResume: return "resume";
    case FlightEventKind::kDone: return "done";
    case FlightEventKind::kEvalDelivered: return "eval";
    case FlightEventKind::kWorkerKill: return "worker_kill";
    case FlightEventKind::kWorkerDeath: return "worker_death";
    case FlightEventKind::kCircuitTrip: return "circuit_trip";
    case FlightEventKind::kDrain: return "drain";
    case FlightEventKind::kCrashSignal: return "crash_signal";
    case FlightEventKind::kHttpScrape: return "http_scrape";
  }
  return "unknown";
}

FlightEvent FlightRecorder::Slot::load() const noexcept {
  FlightEvent event;
  event.unix_ms = unix_ms.load(std::memory_order_relaxed);
  event.seq = seq.load(std::memory_order_relaxed);
  event.kind =
      static_cast<FlightEventKind>(kind.load(std::memory_order_relaxed));
  event.a = a.load(std::memory_order_relaxed);
  event.b = b.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < sizeof(event.detail); ++i) {
    event.detail[i] = detail[i].load(std::memory_order_relaxed);
  }
  // A copy mixing two generations could in principle miss both NULs; a
  // mixed copy is discarded by the commit re-check, but keep the string
  // bounded regardless (the signal-dump path checks commit only once).
  event.detail[sizeof(event.detail) - 1] = '\0';
  return event;
}

void FlightRecorder::record(FlightEventKind kind, std::string_view detail,
                            std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  // Invalidate first so a racing reader discards the half-rewritten slot
  // rather than mixing generations. The release fence is what orders the
  // invalidation *before* the payload stores below (a release store only
  // orders its predecessors); it pairs with the reader's acquire fence
  // ahead of the commit re-check, so a reader that saw any new payload
  // byte cannot still see the stale generation stamp.
  slot.commit.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.unix_ms.store(unix_now_ms(), std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint32_t>(kind),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  const std::size_t cap = sizeof(FlightEvent{}.detail);
  const std::size_t n = detail.size() < cap - 1 ? detail.size() : cap - 1;
  for (std::size_t i = 0; i < n; ++i) {
    slot.detail[i].store(detail[i], std::memory_order_relaxed);
  }
  slot.detail[n].store('\0', std::memory_order_relaxed);
  slot.commit.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t total = next_seq_.load(std::memory_order_acquire);
  const std::uint64_t start = total > kCapacity ? total - kCapacity : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<std::size_t>(total - start));
  for (std::uint64_t seq = start; seq < total; ++seq) {
    const Slot& slot = slots_[seq % kCapacity];
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    const FlightEvent copy = slot.load();
    // Seqlock validation: a writer that re-claimed the slot mid-copy
    // changed the stamp; drop the torn copy. The acquire fence orders the
    // payload loads above before the re-check.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.commit.load(std::memory_order_relaxed) != seq + 1) continue;
    events.push_back(copy);
  }
  return events;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  std::string out = "{\"recorded\": ";
  out.append(std::to_string(recorded()));
  out.append(", \"events\": [");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& event = events[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("  {\"seq\": ");
    out.append(std::to_string(event.seq));
    out.append(", \"t_ms\": ");
    out.append(std::to_string(event.unix_ms));
    out.append(", \"kind\": \"");
    out.append(to_string(event.kind));
    out.append("\", \"a\": ");
    out.append(std::to_string(event.a));
    out.append(", \"b\": ");
    out.append(std::to_string(event.b));
    out.append(", \"detail\": \"");
    out.append(json_escape(event.detail));
    out.append("\"}");
  }
  out.append(events.empty() ? "]}\n" : "\n]}\n");
  return out;
}

bool FlightRecorder::dump(const std::string& path, std::string* error) const {
  return write_file_atomic(path, to_json(), error);
}

FlightRecorder& FlightRecorder::global() {
  // Leaked like the trace collector: the crash handler may fire during
  // static destruction and must still find a live ring.
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

/// The crash-signal dump path. Async-signal-safe by construction: reads
/// lock-free atomics, formats into a stack buffer with the manual
/// append_* helpers, and uses only open/write/fsync/close (each on the
/// POSIX async-signal-safe list; the *_retry wrappers add only EINTR
/// loops). No allocation, no stdio, no locks.
// hm-signal-safe
// hm-lint: allow(fork-child-safety) FlightRecorder::record is wait-free by construction: one fetch_add plus relaxed atomic stores into a fixed-width slot — no allocation, locks, or stdio
void flight_recorder_signal_dump(int signal_number) noexcept {
  if (!g_crash_path_set.load(std::memory_order_acquire)) {
    ::raise(signal_number);
    return;
  }
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.record(FlightEventKind::kCrashSignal, "crash",
                  static_cast<std::uint64_t>(signal_number));
  const int fd = open_retry(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    char line[256];
    std::size_t pos = 0;
    append_str(line, pos, sizeof(line), "flight-recorder crash dump signal=");
    append_u64(line, pos, sizeof(line),
               static_cast<std::uint64_t>(signal_number));
    append_str(line, pos, sizeof(line), "\n");
    (void)write_fd_all(fd, std::string_view(line, pos));
    const std::uint64_t total =
        recorder.next_seq_.load(std::memory_order_acquire);
    const std::uint64_t start =
        total > FlightRecorder::kCapacity ? total - FlightRecorder::kCapacity
                                          : 0;
    for (std::uint64_t seq = start; seq < total; ++seq) {
      const FlightRecorder::Slot& slot =
          recorder.slots_[seq % FlightRecorder::kCapacity];
      if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
      const FlightEvent event = slot.load();
      pos = 0;
      append_str(line, pos, sizeof(line), "seq=");
      append_u64(line, pos, sizeof(line), event.seq);
      append_str(line, pos, sizeof(line), " t_ms=");
      append_u64(line, pos, sizeof(line),
                 static_cast<std::uint64_t>(event.unix_ms));
      append_str(line, pos, sizeof(line), " kind=");
      append_str(line, pos, sizeof(line), to_string(event.kind));
      append_str(line, pos, sizeof(line), " a=");
      append_u64(line, pos, sizeof(line), event.a);
      append_str(line, pos, sizeof(line), " b=");
      append_u64(line, pos, sizeof(line), event.b);
      append_str(line, pos, sizeof(line), " detail=");
      append_str(line, pos, sizeof(line), event.detail);
      append_str(line, pos, sizeof(line), "\n");
      (void)write_fd_all(fd, std::string_view(line, pos));
    }
    (void)fsync_retry(fd);
    (void)close_relaxed(fd);
  }
  // Handlers were installed with SA_RESETHAND: re-raising now takes the
  // default disposition (terminate / core), preserving the crash cause.
  ::raise(signal_number);
}

bool install_crash_recorder(const std::string& path) {
  std::size_t n = path.size() < sizeof(g_crash_path) - 1
                      ? path.size()
                      : sizeof(g_crash_path) - 1;
  for (std::size_t i = 0; i < n; ++i) g_crash_path[i] = path[i];
  g_crash_path[n] = '\0';
  g_crash_path_set.store(true, std::memory_order_release);

  struct sigaction action = {};
  action.sa_handler = flight_recorder_signal_dump;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  const int fatal[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (const int sig : fatal) {
    if (sigaction(sig, &action, nullptr) != 0) return false;
  }
  return true;
}

}  // namespace hm::common
