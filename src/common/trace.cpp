#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/atomic_file.hpp"
#include "common/metrics.hpp"

namespace hm::common {
namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_span_histograms_enabled{true};

/// One thread's span buffer. The owning thread appends under the buffer's
/// own (uncontended) mutex; snapshot/clear take the same mutex from
/// outside. Buffers are shared_ptr-owned by the collector so events
/// survive thread exit.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

/// Intentionally leaked: worker thread_locals may detach after static
/// destruction starts, and trace export can run from atexit paths.
Collector& collector() {
  static Collector* instance = new Collector;
  return *instance;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    created->tid = c.next_tid++;
    c.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

}  // namespace

void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_span_histograms_enabled(bool enabled) noexcept {
  g_span_histograms_enabled.store(enabled, std::memory_order_relaxed);
}

bool span_histograms_enabled() noexcept {
  return g_span_histograms_enabled.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

std::uint32_t trace_thread_id() { return local_buffer().tid; }

void clear_trace() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<TraceEvent> trace_snapshot() {
  std::vector<TraceEvent> merged;
  Collector& c = collector();
  {
    const std::lock_guard<std::mutex> lock(c.mutex);
    for (const auto& buffer : c.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              const int names = std::strcmp(a.name, b.name);
              if (names != 0) return names < 0;
              return a.duration_ns < b.duration_ns;
            });
  return merged;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  char buffer[96];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("  {\"name\": \"");
    out.append(json_escape(event.name));
    out.append("\", \"cat\": \"");
    out.append(json_escape(event.category));
    // Complete ("X") events with microsecond timestamps, per the Chrome
    // trace-event format; pid is constant (single process).
    std::snprintf(buffer, sizeof(buffer),
                  "\", \"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f}",
                  event.tid, static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.duration_ns) / 1e3);
    out.append(buffer);
  }
  out.append(events.empty() ? "], " : "\n], ");
  out.append("\"displayTimeUnit\": \"ms\"}\n");
  return out;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  return write_file_atomic(path, chrome_trace_json(trace_snapshot()), error);
}

namespace detail {

std::int64_t trace_now_ns() noexcept {
  using SteadyClock = std::chrono::steady_clock;
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now() - epoch)
      .count();
}

void record_span(const char* name, const char* category, std::int64_t start_ns,
                 std::int64_t duration_ns) {
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      TraceEvent{name, category, buffer.tid, start_ns, duration_ns});
}

}  // namespace detail

#if HM_TRACE_ENABLED

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const std::int64_t end_ns = detail::trace_now_ns();
  const std::int64_t duration_ns = end_ns - start_ns_;
  if (histogram_ != nullptr) {
    histogram_->observe(static_cast<double>(duration_ns) * 1e-9);
  }
  if (trace_enabled()) {
    detail::record_span(name_, category_, start_ns_, duration_ns);
  }
}

#endif  // HM_TRACE_ENABLED

}  // namespace hm::common
