#include "common/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>

#include "common/atomic_file.hpp"
#include "common/checkpoint.hpp"
#include "common/metrics.hpp"

namespace hm::common {
namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_trace_request_only{false};
std::atomic<bool> g_span_histograms_enabled{true};

thread_local std::uint64_t t_trace_id = 0;

/// One thread's span buffer. The owning thread appends under the buffer's
/// own (uncontended) mutex; snapshot/clear take the same mutex from
/// outside. Buffers are shared_ptr-owned by the collector so events
/// survive thread exit.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<RemoteTraceEvent> foreign;  // hm-guarded-by(mutex)
  std::uint32_t next_tid = 0;
};

/// Intentionally leaked: worker thread_locals may detach after static
/// destruction starts, and trace export can run from atexit paths.
Collector& collector() {
  static Collector* instance = new Collector;
  return *instance;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    created->tid = c.next_tid++;
    c.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

/// The process trace epoch: a (steady, wall-clock) anchor pair captured
/// once. The steady side defines span timestamps; the wall-clock side lets
/// another process rebase our timestamps onto its own timeline (clocks on
/// one machine agree; steady epochs do not).
struct TraceEpoch {
  std::chrono::steady_clock::time_point steady;
  std::int64_t unix_ns = 0;
};

const TraceEpoch& trace_epoch() noexcept {
  static const TraceEpoch epoch = [] {
    TraceEpoch anchor;
    anchor.steady = std::chrono::steady_clock::now();
    anchor.unix_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
    return anchor;
  }();
  return epoch;
}

/// splitmix64 finaliser: full-avalanche mixing for trace-id generation.
std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void set_trace_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_span_histograms_enabled(bool enabled) noexcept {
  g_span_histograms_enabled.store(enabled, std::memory_order_relaxed);
}

bool span_histograms_enabled() noexcept {
  return g_span_histograms_enabled.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_request_only(bool enabled) noexcept {
  g_trace_request_only.store(enabled, std::memory_order_relaxed);
}

bool trace_request_only() noexcept {
  return g_trace_request_only.load(std::memory_order_relaxed);
}

std::uint32_t trace_thread_id() { return local_buffer().tid; }

std::uint64_t current_trace_id() noexcept { return t_trace_id; }

void set_current_trace_id(std::uint64_t trace_id) noexcept {
  t_trace_id = trace_id;
}

std::uint64_t generate_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(trace_epoch().unix_ns) ^
      (static_cast<std::uint64_t>(::getpid()) << 40) ^
      counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = mix_u64(seed);
  return id != 0 ? id : 1;  // 0 means "no trace context".
}

void init_trace_epoch() noexcept { (void)trace_epoch(); }

void clear_trace() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  c.foreign.clear();
}

void drop_trace_spans(std::uint64_t trace_id) {
  if (trace_id == 0) return;
  // Same collector-then-buffer lock order as clear_trace/trace_snapshot.
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buffer : c.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.erase(
        std::remove_if(buffer->events.begin(), buffer->events.end(),
                       [trace_id](const TraceEvent& event) {
                         return event.trace_id == trace_id;
                       }),
        buffer->events.end());
  }
  c.foreign.erase(std::remove_if(c.foreign.begin(), c.foreign.end(),
                                 [trace_id](const RemoteTraceEvent& event) {
                                   return event.trace_id == trace_id;
                                 }),
                  c.foreign.end());
}

std::vector<TraceEvent> trace_snapshot() {
  std::vector<TraceEvent> merged;
  Collector& c = collector();
  {
    const std::lock_guard<std::mutex> lock(c.mutex);
    for (const auto& buffer : c.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              const int names = std::strcmp(a.name, b.name);
              if (names != 0) return names < 0;
              return a.duration_ns < b.duration_ns;
            });
  return merged;
}

namespace {

/// Shared body for both JSON overloads: one complete ("X") event with
/// microsecond timestamps, keyed by (pid, tid); nonzero trace ids become a
/// decimal-string `trace_id` arg (doubles cannot hold a full u64).
void append_chrome_event(std::string& out, std::string_view name,
                         std::string_view category, std::uint32_t pid,
                         std::uint32_t tid, std::int64_t start_ns,
                         std::int64_t duration_ns, std::uint64_t trace_id) {
  char buffer[160];
  out.append("  {\"name\": \"");
  out.append(json_escape(name));
  out.append("\", \"cat\": \"");
  out.append(json_escape(category));
  std::snprintf(buffer, sizeof(buffer),
                "\", \"ph\": \"X\", \"pid\": %u, \"tid\": %u, "
                "\"ts\": %.3f, \"dur\": %.3f",
                pid, tid, static_cast<double>(start_ns) / 1e3,
                static_cast<double>(duration_ns) / 1e3);
  out.append(buffer);
  if (trace_id != 0) {
    std::snprintf(buffer, sizeof(buffer),
                  ", \"args\": {\"trace_id\": \"%llu\"}",
                  static_cast<unsigned long long>(trace_id));
    out.append(buffer);
  }
  out.push_back('}');
}

std::uint32_t local_pid() noexcept {
  return static_cast<std::uint32_t>(::getpid());
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  const std::uint32_t pid = local_pid();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out.append(i == 0 ? "\n" : ",\n");
    append_chrome_event(out, event.name, event.category, pid, event.tid,
                        event.start_ns, event.duration_ns, event.trace_id);
  }
  out.append(events.empty() ? "], " : "\n], ");
  out.append("\"displayTimeUnit\": \"ms\"}\n");
  return out;
}

std::string chrome_trace_json(const std::vector<RemoteTraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const RemoteTraceEvent& event = events[i];
    out.append(i == 0 ? "\n" : ",\n");
    append_chrome_event(out, event.name, event.category, event.process_id,
                        event.tid,
                        event.start_ns, event.duration_ns, event.trace_id);
  }
  out.append(events.empty() ? "], " : "\n], ");
  out.append("\"displayTimeUnit\": \"ms\"}\n");
  return out;
}

std::vector<RemoteTraceEvent> merged_trace_snapshot() {
  std::vector<RemoteTraceEvent> merged;
  const std::uint32_t pid = local_pid();
  for (const TraceEvent& event : trace_snapshot()) {
    merged.push_back(RemoteTraceEvent{event.name, event.category, pid,
                                      event.tid, event.start_ns,
                                      event.duration_ns, event.trace_id});
  }
  {
    Collector& c = collector();
    const std::lock_guard<std::mutex> lock(c.mutex);
    merged.insert(merged.end(), c.foreign.begin(), c.foreign.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const RemoteTraceEvent& a, const RemoteTraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.process_id != b.process_id) {
                return a.process_id < b.process_id;
              }
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.name != b.name) return a.name < b.name;
              return a.duration_ns < b.duration_ns;
            });
  return merged;
}

std::string encode_span_bundle(std::uint64_t trace_id_filter) {
  std::vector<RemoteTraceEvent> events = merged_trace_snapshot();
  std::vector<std::string> fields;
  fields.reserve(4 + events.size() * 7);
  fields.emplace_back("spans");
  fields.push_back(encode_u64(local_pid()));
  fields.push_back(
      encode_u64(static_cast<std::uint64_t>(detail::trace_epoch_unix_ns())));
  std::size_t count = 0;
  const std::size_t count_slot = fields.size();
  fields.emplace_back();  // Patched with the filtered count below.
  for (const RemoteTraceEvent& event : events) {
    if (trace_id_filter != 0 && event.trace_id != trace_id_filter) continue;
    fields.push_back(event.name);
    fields.push_back(event.category);
    fields.push_back(encode_u64(event.process_id));
    fields.push_back(encode_u64(event.tid));
    fields.push_back(encode_u64(static_cast<std::uint64_t>(event.start_ns)));
    fields.push_back(
        encode_u64(static_cast<std::uint64_t>(event.duration_ns)));
    fields.push_back(encode_u64(event.trace_id));
    ++count;
  }
  fields[count_slot] = encode_u64(count);
  return encode_fields(fields);
}

bool ingest_span_bundle(std::string_view payload) {
  const std::optional<std::vector<std::string>> fields =
      decode_fields(payload);
  if (!fields || fields->size() < 4 || (*fields)[0] != "spans") return false;
  const std::optional<std::uint64_t> pid = decode_u64((*fields)[1]);
  const std::optional<std::uint64_t> sender_epoch = decode_u64((*fields)[2]);
  const std::optional<std::uint64_t> count = decode_u64((*fields)[3]);
  if (!pid || !sender_epoch || !count) return false;
  if (fields->size() != 4 + *count * 7) return false;
  // Rebase: sender timestamps are relative to the sender's epoch; shifting
  // by the wall-clock anchor difference lands them on our timeline. For a
  // forked child that inherited our epoch the shift is exactly zero.
  const std::int64_t shift_ns =
      static_cast<std::int64_t>(*sender_epoch) - detail::trace_epoch_unix_ns();
  std::vector<RemoteTraceEvent> decoded;
  decoded.reserve(*count);
  for (std::uint64_t k = 0; k < *count; ++k) {
    const std::size_t at = 4 + k * 7;
    RemoteTraceEvent event;
    event.name = (*fields)[at];
    event.category = (*fields)[at + 1];
    const std::optional<std::uint64_t> event_pid = decode_u64((*fields)[at + 2]);
    const std::optional<std::uint64_t> tid = decode_u64((*fields)[at + 3]);
    const std::optional<std::uint64_t> start = decode_u64((*fields)[at + 4]);
    const std::optional<std::uint64_t> duration =
        decode_u64((*fields)[at + 5]);
    const std::optional<std::uint64_t> trace_id =
        decode_u64((*fields)[at + 6]);
    if (!event_pid || !tid || !start || !duration || !trace_id) return false;
    event.process_id = static_cast<std::uint32_t>(*event_pid);
    event.tid = static_cast<std::uint32_t>(*tid);
    event.start_ns = static_cast<std::int64_t>(*start) + shift_ns;
    event.duration_ns = static_cast<std::int64_t>(*duration);
    event.trace_id = *trace_id;
    decoded.push_back(std::move(event));
  }
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mutex);
  c.foreign.insert(c.foreign.end(),
                   std::make_move_iterator(decoded.begin()),
                   std::make_move_iterator(decoded.end()));
  return true;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  return write_file_atomic(path, chrome_trace_json(merged_trace_snapshot()),
                           error);
}

namespace detail {

std::int64_t trace_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch().steady)
      .count();
}

std::int64_t trace_epoch_unix_ns() noexcept { return trace_epoch().unix_ns; }

void record_span(const char* name, const char* category, std::int64_t start_ns,
                 std::int64_t duration_ns) {
  if (t_trace_id == 0 &&
      g_trace_request_only.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(TraceEvent{name, category, buffer.tid, start_ns,
                                     duration_ns, t_trace_id});
}

}  // namespace detail

#if HM_TRACE_ENABLED

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const std::int64_t end_ns = detail::trace_now_ns();
  const std::int64_t duration_ns = end_ns - start_ns_;
  if (histogram_ != nullptr) {
    histogram_->observe(static_cast<double>(duration_ns) * 1e-9);
  }
  if (trace_enabled()) {
    detail::record_span(name_, category_, start_ns_, duration_ns);
  }
}

#endif  // HM_TRACE_ENABLED

}  // namespace hm::common
