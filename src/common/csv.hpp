// Minimal CSV reader/writer used by the experiment harnesses to persist
// sampled configurations, Pareto fronts, and crowd-sourcing results.
// Handles RFC-4180 quoting (commas, quotes, embedded newlines).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hm::common {

/// An in-memory CSV table: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] std::size_t column_count() const noexcept { return header_.size(); }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Index of a column by name, if present.
  [[nodiscard]] std::optional<std::size_t> column(std::string_view name) const;

  /// Appends a row; must match the header width (asserted).
  void add_row(std::vector<std::string> row);

  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }

  /// Cell parsed as double; nullopt if unparsable.
  [[nodiscard]] std::optional<double> cell_as_double(std::size_t row,
                                                     std::size_t col) const;

  /// Whole column parsed as doubles; unparsable cells become 0.
  [[nodiscard]] std::vector<double> column_as_doubles(std::size_t col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Serializes a table to CSV text with RFC-4180 quoting.
[[nodiscard]] std::string to_csv(const CsvTable& table);

/// Parses CSV text (first row is the header). Returns nullopt on structural
/// errors (ragged rows, unterminated quotes).
[[nodiscard]] std::optional<CsvTable> parse_csv(std::string_view text);

/// Convenience file I/O. Return false / nullopt on I/O failure.
[[nodiscard]] bool write_csv_file(const std::string& path, const CsvTable& table);
[[nodiscard]] std::optional<CsvTable> read_csv_file(const std::string& path);

/// Formats a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double value);

}  // namespace hm::common
