// Minimal CSV reader/writer used by the experiment harnesses to persist
// sampled configurations, Pareto fronts, and crowd-sourcing results.
// Handles RFC-4180 quoting (commas, quotes, embedded newlines).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hm::common {

/// A structural or numeric CSV error, located by 1-based source line.
struct CsvError {
  std::size_t line = 0;
  std::string message;
};

/// An in-memory CSV table: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] std::size_t column_count() const noexcept { return header_.size(); }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Index of a column by name, if present.
  [[nodiscard]] std::optional<std::size_t> column(std::string_view name) const;

  /// Appends a row; must match the header width (asserted). The row's
  /// source line defaults to its position assuming one line per row.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }

  /// 1-based source line the row started on (exact for parsed tables, even
  /// with embedded newlines in quoted fields; positional for built tables).
  [[nodiscard]] std::size_t source_line(std::size_t row) const {
    return source_lines_[row];
  }

  /// Cell parsed as double; nullopt if unparsable.
  [[nodiscard]] std::optional<double> cell_as_double(std::size_t row,
                                                     std::size_t col) const;

  /// Whole column parsed as doubles. A non-numeric cell is an error (with
  /// the offending source line) rather than a silent zero.
  [[nodiscard]] std::optional<std::vector<double>> column_as_numbers(
      std::size_t col, CsvError* error = nullptr) const;

 private:
  friend std::optional<CsvTable> parse_csv(std::string_view, CsvError*);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> source_lines_;
};

/// Serializes a table to CSV text with RFC-4180 quoting.
[[nodiscard]] std::string to_csv(const CsvTable& table);

/// Parses CSV text (first row is the header). Returns nullopt on structural
/// errors (ragged rows, unterminated quotes), reporting the offending line
/// through `error` when provided.
[[nodiscard]] std::optional<CsvTable> parse_csv(std::string_view text,
                                                CsvError* error = nullptr);

/// Convenience file I/O. Return false / nullopt on I/O failure.
[[nodiscard]] bool write_csv_file(const std::string& path, const CsvTable& table);
[[nodiscard]] std::optional<CsvTable> read_csv_file(const std::string& path,
                                                    CsvError* error = nullptr);

/// Formats a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double value);

}  // namespace hm::common
