// Tiny command-line parser for the bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hm::common {

class CliArgs {
 public:
  /// Parses argv. Unknown options are retained and reported by unknown().
  /// `known_flags` lists boolean options that take no value.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_flags = {});

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

  [[nodiscard]] std::string get_or(std::string_view name, std::string fallback) const;
  [[nodiscard]] std::int64_t get_or(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] double get_or(std::string_view name, double fallback) const;
  [[nodiscard]] bool flag(std::string_view name) const { return has(name); }

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Option names that were seen but not consumed by any getter (useful to
  /// warn about typos in bench invocations).
  [[nodiscard]] std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
};

}  // namespace hm::common
