// Wall-clock timing helpers. Experiments report the deterministic device
// cost model (see slambench/device.hpp); wall time is collected alongside
// so the correlation between counted work and real time can be validated.
#pragma once

#include <chrono>

namespace hm::common {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hm::common
