#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace hm::common {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling on the high bits: draw until the value falls into the
  // largest multiple of n representable in 64 bits.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return draw % n;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  // hm-lint: allow(no-float-equality) exact rejection of the degenerate polar sample
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

RngState Rng::save_state() const noexcept {
  RngState state;
  state.words = state_;
  state.have_spare_normal = have_spare_normal_;
  state.spare_normal_bits = std::bit_cast<std::uint64_t>(spare_normal_);
  return state;
}

void Rng::restore_state(const RngState& state) noexcept {
  state_ = state.words;
  have_spare_normal_ = state.have_spare_normal;
  spare_normal_ = std::bit_cast<double>(state.spare_normal_bits);
}

}  // namespace hm::common
