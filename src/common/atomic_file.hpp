// Crash-atomic file replacement: write the full contents to a temporary
// sibling, flush it to stable storage (fsync), then rename() it over the
// destination. A reader — or a process restarted after a crash — therefore
// only ever observes either the complete old file or the complete new file,
// never a torn write. Every export in the tree (CSV reports, PLY/OBJ
// meshes, bench JSON) goes through this writer; the hm-lint rule
// `no-bare-export-stream` enforces it.
#pragma once

#include <string>
#include <string_view>

namespace hm::common {

/// Atomically replaces `path` with `bytes`. The temporary sibling is
/// `<path>.tmp` (single-writer-per-path assumption; a stale .tmp from a
/// crashed writer is simply overwritten by the next attempt). On failure
/// returns false and, when `error` is non-null, describes the failing step
/// with its errno text. The destination is untouched on any failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view bytes,
                                     std::string* error = nullptr);

/// fsyncs the directory containing `path`, making a preceding rename of a
/// file inside it durable across power loss. Best-effort on filesystems
/// that reject directory fsync; returns false only on real errors.
[[nodiscard]] bool sync_parent_directory(const std::string& path,
                                         std::string* error = nullptr);

// EINTR-hardened syscall wrappers. Sandboxed runs are signal-heavy (worker
// SIGKILLs, SIGCHLD, the cooperative SIGTERM handler), and a signal landing
// mid-export must never surface as a spurious I/O failure. Every raw
// descriptor syscall in the tree goes through these (enforced by the
// hm-lint rule `no-unguarded-syscall` outside src/common/ + src/sandbox/).

/// `::open` retried on EINTR. Returns the descriptor or -1 (errno set).
[[nodiscard]] int open_retry(const char* path, int flags, int mode = 0);

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
[[nodiscard]] bool write_fd_all(int fd, std::string_view bytes);

/// `::fsync` retried on EINTR.
[[nodiscard]] bool fsync_retry(int fd);

/// `::close` treating EINTR as success: on Linux the descriptor is closed
/// even when close() is interrupted, and retrying would race a reuse of
/// the same descriptor number. Returns false only on non-EINTR errors.
bool close_relaxed(int fd);

}  // namespace hm::common
