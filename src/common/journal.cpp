#include "common/journal.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/atomic_file.hpp"

namespace hm::common {

namespace {

/// Builds the reflected CRC-32 (IEEE 802.3) lookup table at static init.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

constexpr std::string_view kMagic = "hmwal";

std::string header_line() {
  return std::string(kMagic) + " " + std::to_string(kJournalFormatVersion) + "\n";
}

[[nodiscard]] bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

[[nodiscard]] std::uint32_t hex_value(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint32_t>(c - 'a' + 10);
  return static_cast<std::uint32_t>(c - 'A' + 10);
}

std::string format_crc(std::uint32_t crc) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

/// Unescapes a payload; returns false on an invalid escape sequence.
[[nodiscard]] bool journal_unescape(std::string_view escaped, std::string* out) {
  out->clear();
  out->reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= escaped.size()) return false;
    const char next = escaped[++i];
    switch (next) {
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

/// Formats one complete record line (checksum, type, escaped payload).
std::string format_record(std::string_view type, std::string_view payload) {
  std::string body;
  body.reserve(type.size() + 1 + payload.size());
  body.append(type);
  body.push_back(' ');
  body.append(journal_escape(payload));
  return format_crc(crc32(body)) + " " + body + "\n";
}

void add_defect(JournalReadResult* result, std::size_t line, std::size_t offset,
                JournalDamage damage, std::string message) {
  if (result->defects.empty()) result->first_damaged_offset = offset;
  result->defects.push_back(
      JournalDefect{line, offset, damage, std::move(message)});
}

/// fwrite retried across EINTR-induced short writes. Sandboxed runs take
/// SIGCHLD/SIGTERM mid-append; a signal must not look like a dead journal.
[[nodiscard]] bool fwrite_all(std::FILE* file, std::string_view bytes) {
  const char* cursor = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const std::size_t written = std::fwrite(cursor, 1, remaining, file);
    if (written == 0) {
      if (errno == EINTR) {
        std::clearerr(file);
        continue;
      }
      return false;
    }
    cursor += written;
    remaining -= written;
  }
  return true;
}

/// fflush retried on EINTR (it writes buffered bytes with plain write()).
[[nodiscard]] bool fflush_retry(std::FILE* file) {
  while (std::fflush(file) != 0) {
    if (errno != EINTR) return false;
    std::clearerr(file);
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string journal_escape(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (const char c : payload) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* to_string(JournalDamage damage) {
  switch (damage) {
    case JournalDamage::kTruncatedTail: return "truncated tail";
    case JournalDamage::kBadChecksum: return "bad checksum";
    case JournalDamage::kMalformedFrame: return "malformed frame";
    case JournalDamage::kBadEscape: return "bad escape";
  }
  return "unknown";
}

const char* to_string(JournalStatus status) {
  switch (status) {
    case JournalStatus::kOk: return "ok";
    case JournalStatus::kRecovered: return "recovered";
    case JournalStatus::kEmpty: return "empty";
    case JournalStatus::kMissing: return "missing";
    case JournalStatus::kBadMagic: return "bad magic";
    case JournalStatus::kVersionMismatch: return "version mismatch";
  }
  return "unknown";
}

JournalReadResult parse_journal(std::string_view text) {
  JournalReadResult result;
  result.first_damaged_offset = text.size();
  if (text.empty()) {
    result.status = JournalStatus::kEmpty;
    result.first_damaged_offset = 0;
    return result;
  }

  // Header: "hmwal <version>\n". A file that does not even start with the
  // magic is not a journal at all — classify, do not attempt recovery.
  std::size_t header_end = text.find('\n');
  const std::string_view header =
      header_end == std::string_view::npos ? text : text.substr(0, header_end);
  if (header.substr(0, kMagic.size()) != kMagic ||
      (header.size() > kMagic.size() && header[kMagic.size()] != ' ')) {
    result.status = JournalStatus::kBadMagic;
    result.first_damaged_offset = 0;
    return result;
  }
  std::uint32_t version = 0;
  bool version_ok = header.size() > kMagic.size() + 1;
  for (std::size_t i = kMagic.size() + 1; version_ok && i < header.size(); ++i) {
    const char c = header[i];
    if (c < '0' || c > '9') {
      version_ok = false;
      break;
    }
    version = version * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (!version_ok) {
    result.status = JournalStatus::kBadMagic;
    result.first_damaged_offset = 0;
    return result;
  }
  result.version = version;
  if (version != kJournalFormatVersion) {
    result.status = JournalStatus::kVersionMismatch;
    result.first_damaged_offset = 0;
    return result;
  }
  if (header_end == std::string_view::npos) {
    // Header written but its newline never reached disk: an empty journal
    // with a truncated tail. Nothing to replay.
    result.status = JournalStatus::kRecovered;
    add_defect(&result, 1, 0, JournalDamage::kTruncatedTail,
               "header line has no terminating newline");
    return result;
  }

  std::size_t offset = header_end + 1;
  std::size_t line_number = 2;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    if (newline == std::string_view::npos) {
      // The record being written when the process died. Expected damage:
      // report the offset so resume knows exactly where durability ended.
      add_defect(&result, line_number, offset, JournalDamage::kTruncatedTail,
                 "record has no terminating newline (crash mid-append)");
      break;
    }
    const std::string_view line = text.substr(offset, newline - offset);

    // Frame: "<8 hex crc> <type> <escaped payload>". Type is non-empty and
    // space-free; payload may be empty.
    bool frame_ok = line.size() >= 10 && line[8] == ' ';
    for (std::size_t i = 0; frame_ok && i < 8; ++i) {
      if (!is_hex_digit(line[i])) frame_ok = false;
    }
    std::size_t type_end = 0;
    if (frame_ok) {
      type_end = line.find(' ', 9);
      if (type_end == std::string_view::npos || type_end == 9) frame_ok = false;
    }
    if (!frame_ok) {
      add_defect(&result, line_number, offset, JournalDamage::kMalformedFrame,
                 "line is not '<crc32> <type> <payload>'");
      offset = newline + 1;
      ++line_number;
      continue;
    }

    std::uint32_t stored_crc = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      stored_crc = (stored_crc << 4) | hex_value(line[i]);
    }
    const std::string_view body = line.substr(9);
    if (crc32(body) != stored_crc) {
      add_defect(&result, line_number, offset, JournalDamage::kBadChecksum,
                 "checksum mismatch (stored " + std::string(line.substr(0, 8)) +
                     ", computed " + format_crc(crc32(body)) + ")");
      offset = newline + 1;
      ++line_number;
      continue;
    }

    JournalRecord record;
    record.line = line_number;
    record.type = std::string(line.substr(9, type_end - 9));
    if (!journal_unescape(line.substr(type_end + 1), &record.payload)) {
      add_defect(&result, line_number, offset, JournalDamage::kBadEscape,
                 "payload contains an invalid escape sequence");
      offset = newline + 1;
      ++line_number;
      continue;
    }
    result.records.push_back(std::move(record));
    offset = newline + 1;
    ++line_number;
  }

  result.status =
      result.defects.empty() ? JournalStatus::kOk : JournalStatus::kRecovered;
  return result;
}

JournalReadResult read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    JournalReadResult result;
    result.status = JournalStatus::kMissing;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_journal(buffer.str());
}

bool JournalWriter::open(const std::string& path, std::string* error) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_for_flush(lock);
  if (file_ != nullptr) {
    // hm-lint: allow(blocking-under-lock) (re)initialization must exclude appenders: the FILE is being replaced under them
    std::fclose(file_);
    file_ = nullptr;
  }
  // Un-flushed records belong to the file being abandoned; callers must
  // not race open() against append() (same contract as before).
  pending_.clear();
  enqueued_ = written_;
  path_ = path;
  // hm-lint: allow(blocking-under-lock) initialization must exclude appenders until the header is durable
  return open_locked(error);
}

bool JournalWriter::open_locked(std::string* error) {
  // The journal is the one legitimately append-only stream in the tree:
  // atomically rewriting the whole file per record would defeat the WAL.
  // hm-lint: allow(no-bare-export-stream) append-only WAL; durability comes from per-record fsync, compaction rewrites atomically
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open journal " + path_ + ": " + std::strerror(errno);
    }
    return false;
  }
  // A fresh (empty) journal needs its header before any record.
  if (std::ftell(file_) == 0) {
    const std::string header = header_line();
    if (!fwrite_all(file_, header) || !fflush_retry(file_)) {
      if (error != nullptr) {
        *error = "cannot write journal header to " + path_;
      }
      std::fclose(file_);
      file_ = nullptr;
      return false;
    }
  }
  return true;
}

bool JournalWriter::append(std::string_view type, std::string_view payload) {
  std::function<void(std::size_t)> hook;
  std::size_t my_seq = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (file_ == nullptr) return false;
    pending_ += format_record(type, payload);
    my_seq = ++enqueued_;
    hook = hook_;
    // Group commit. Whoever finds the batch unclaimed becomes the leader:
    // it takes ownership of `file_` (flushing_), drains the whole pending
    // buffer with the mutex RELEASED, then publishes the new durable
    // sequence. Everyone else sleeps on the cv and piggybacks on the
    // leader's fsync — one disk flush per batch, and the lock is never
    // held across blocking IO.
    while (written_ < my_seq) {
      if (file_ == nullptr) return false;  // a leader hit an IO error
      if (!flushing_ && !pending_.empty()) {
        flushing_ = true;
        std::string batch;
        batch.swap(pending_);
        const std::size_t batch_end = enqueued_;
        std::FILE* file = file_;
        const bool do_fsync = fsync_;
        lock.unlock();
        bool ok = fwrite_all(file, batch) && fflush_retry(file);
        if (ok && do_fsync) ok = fsync_retry(::fileno(file));
        lock.lock();
        flushing_ = false;
        if (!ok) {
          // hm-lint: allow(blocking-under-lock) IO-error teardown: the dead FILE must be invalidated before any appender can observe it
          std::fclose(file_);
          file_ = nullptr;
          commit_cv_.notify_all();
          return false;
        }
        written_ = batch_end;
        commit_cv_.notify_all();
      } else {
        commit_cv_.wait(lock);
      }
    }
  }
  // Invoked outside the lock: the crash harness SIGKILLs from here, and a
  // hook that never returns must not leave the mutex held in the parent's
  // memory image semantics (and fork()ed children re-read the journal).
  if (hook) hook(my_seq);
  return true;
}

void JournalWriter::wait_for_flush(std::unique_lock<std::mutex>& lock) {
  while (flushing_) commit_cv_.wait(lock);
}

bool JournalWriter::rewrite(
    std::span<const std::pair<std::string, std::string>> records,
    std::string* error) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_for_flush(lock);
  if (file_ != nullptr) {
    // hm-lint: allow(blocking-under-lock) compaction must exclude appenders while the file is swapped out from under them
    std::fclose(file_);
    file_ = nullptr;
  }
  pending_.clear();
  enqueued_ = written_;
  std::string contents = header_line();
  for (const auto& [type, payload] : records) {
    contents += format_record(type, payload);
  }
  // hm-lint: allow(blocking-under-lock) compaction must exclude appenders: a concurrent append would be lost in the rewrite
  if (!write_file_atomic(path_, contents, error)) return false;
  // hm-lint: allow(blocking-under-lock) compaction must exclude appenders until the new journal accepts records
  return open_locked(error);
}

void JournalWriter::close() {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_for_flush(lock);
  if (file_ != nullptr) {
    // hm-lint: allow(blocking-under-lock) teardown must exclude appenders; any still-pending record is intentionally dropped with the FILE
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::size_t JournalWriter::records_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

}  // namespace hm::common
