// Crash flight recorder: a fixed-size lock-free ring of structured events
// (admissions, parks, sheds, worker kills, ...) that survives long past the
// scroll-back. Three dump paths:
//
//   - on demand (`to_json` / `dump`) — e.g. hm_serve's `GET /events`;
//   - on orderly shutdown (SIGTERM drain) via `dump`, which goes through
//     `write_file_atomic`;
//   - on a crash signal (SIGSEGV/SIGABRT/...) via the handler installed by
//     `install_crash_recorder`, which formats with async-signal-safe
//     primitives only (no allocation, no stdio, no locks) into a
//     pre-registered path.
//
// Recording is wait-free: one atomic fetch_add to claim a slot plus
// relaxed per-word stores and a release publish. Readers (including the
// signal handler)
// validate each slot's commit stamp and skip torn slots, so a reader
// racing a wrapped writer sees a consistent — if slightly shortened —
// history, never garbage.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hm::common {

/// What happened. Codes are append-only: dumps are read by post-mortem
/// tooling and renumbering would silently re-label history.
enum class FlightEventKind : std::uint32_t {
  kAdmit = 1,        ///< Campaign admitted (a = slot count in use).
  kShed = 2,         ///< Admission shed (a = campaigns in flight).
  kPark = 3,         ///< Campaign parked (a = iteration).
  kResume = 4,       ///< Campaign resumed (a = sample count recovered).
  kDone = 5,         ///< Campaign completed (a = sample count).
  kEvalDelivered = 6,///< Evaluation result folded in (a = iteration, b = samples).
  kWorkerKill = 7,   ///< Sandbox worker hard-killed (a = pid).
  kWorkerDeath = 8,  ///< Sandbox worker died on its own (a = pid).
  kCircuitTrip = 9,  ///< Sandbox circuit breaker opened (a = failure count).
  kDrain = 10,       ///< Drain started/finished (a = done, b = parked).
  kCrashSignal = 11, ///< Crash handler fired (a = signal number).
  kHttpScrape = 12,  ///< Observability endpoint served (a = status code).
};

/// Human-readable tag for a kind, used in dumps ("admit", "shed", ...).
[[nodiscard]] const char* to_string(FlightEventKind kind) noexcept;

/// One fixed-width ring slot. `detail` is a short NUL-terminated tag
/// (campaign id, reason) copied at record time — nothing on the record
/// path allocates.
struct FlightEvent {
  std::int64_t unix_ms = 0;   ///< Wall-clock record time.
  std::uint64_t seq = 0;      ///< Global record order (monotonic).
  FlightEventKind kind{};
  std::uint64_t a = 0;        ///< Kind-specific payload (see enum docs).
  std::uint64_t b = 0;
  char detail[48] = {};
};

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event. Wait-free; truncates `detail` to the slot width.
  void record(FlightEventKind kind, std::string_view detail,
              std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

  /// Consistent copy of the ring, oldest first. Slots being concurrently
  /// rewritten are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// `{"events": [{"seq":..,"t_ms":..,"kind":"admit","a":..,"b":..,
  /// "detail":".."} , ...]}` — oldest first.
  [[nodiscard]] std::string to_json() const;

  /// Writes `to_json()` atomically to `path`.
  [[nodiscard]] bool dump(const std::string& path,
                          std::string* error = nullptr) const;

  /// Total events ever recorded (>= ring occupancy once wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// The process-wide recorder used by hm_serve and the crash handler.
  [[nodiscard]] static FlightRecorder& global();

 private:
  struct Slot {
    // 0 = empty; seq + 1 once the event payload is fully written. A writer
    // re-claiming a wrapped slot zeroes this first, so readers can detect
    // and discard torn slots (seqlock-style, one generation deep).
    std::atomic<std::uint64_t> commit{0};
    // Payload words are individually relaxed atomics: a writer lapping the
    // ring shares this slot with the writer kCapacity records behind it,
    // and readers overlap both. The commit stamp decides whether a copied
    // payload is kept; per-word atomicity keeps every access defined.
    std::atomic<std::int64_t> unix_ms{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint32_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<char> detail[sizeof(FlightEvent{}.detail)]{};

    /// Relaxed copy of the payload; pair with a commit re-check.
    [[nodiscard]] FlightEvent load() const noexcept;
  };

  friend void flight_recorder_signal_dump(int) noexcept;

  std::atomic<std::uint64_t> next_seq_{0};
  Slot slots_[kCapacity];
};

/// Installs handlers for fatal signals (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that dump the global recorder to `path` using only
/// async-signal-safe calls, then re-raise with the default disposition.
/// `path` is copied into static storage (truncated past ~230 bytes).
/// Returns false if any sigaction fails.
bool install_crash_recorder(const std::string& path);

}  // namespace hm::common
