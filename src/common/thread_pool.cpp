#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace hm::common {

thread_local bool ThreadPool::inside_worker_ = false;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  inside_worker_ = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    assert(!stopping_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  grain = std::max<std::size_t>(1, grain);

  // Nested parallel_for from inside a worker would block a queue slot while
  // waiting on tasks that may never be scheduled; run serially instead.
  if (inside_worker_ || workers_.size() <= 1 || count <= grain) {
    body(begin, end);
    return;
  }

  const std::size_t max_chunks = (count + grain - 1) / grain;
  const std::size_t chunks = std::min(max_chunks, workers_.size() * 4);
  const std::size_t step = (count + chunks - 1) / chunks;

  std::atomic<std::size_t> next{begin};
  auto drain = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(step);
      if (lo >= end) break;
      body(lo, std::min(lo + step, end));
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(workers_.size());
  for (std::size_t i = 0; i + 1 < workers_.size() && i + 1 < chunks; ++i) {
    futures.push_back(submit(drain));
  }
  drain();  // The caller participates instead of idling.
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hm::common
