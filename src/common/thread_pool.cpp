#include "common/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace hm::common {

thread_local ThreadPool* ThreadPool::tls_pool_ = nullptr;
thread_local std::size_t ThreadPool::tls_index_ = 0;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  stat_slots_ = std::make_unique<StatSlot[]>(threads + 1);
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::function<void()> ThreadPool::pop_local(std::size_t index) {
  Worker& self = *workers_[index];
  std::lock_guard lock(self.mutex);
  if (self.deque.empty()) return nullptr;
  std::function<void()> task = std::move(self.deque.back());
  self.deque.pop_back();
  queued_tasks_.fetch_sub(1);
  return task;
}

std::function<void()> ThreadPool::try_steal(std::size_t thief_index) {
  const std::size_t n = workers_.size();
  for (std::size_t offset = 1; offset <= n; ++offset) {
    const std::size_t victim = (thief_index + offset) % n;
    Worker& other = *workers_[victim];
    std::lock_guard lock(other.mutex);
    if (other.deque.empty()) continue;
    std::function<void()> task = std::move(other.deque.front());
    other.deque.pop_front();
    queued_tasks_.fetch_sub(1);
    stat_slot().steals.fetch_add(1, std::memory_order_relaxed);
    return task;
  }
  return nullptr;
}

std::function<void()> ThreadPool::acquire_task() {
  if (tls_pool_ == this) {
    if (auto task = pop_local(tls_index_)) return task;
    return try_steal(tls_index_);
  }
  // External threads have no deque of their own; scan from a rotating start.
  return try_steal(next_victim_.fetch_add(1, std::memory_order_relaxed) %
                   workers_.size());
}

void ThreadPool::push_task(std::function<void()> task) {
  std::size_t target;
  if (tls_pool_ == this) {
    target = tls_index_;  // LIFO locality: a worker forks onto its own deque.
  } else {
    target = next_victim_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    Worker& worker = *workers_[target];
    std::lock_guard lock(worker.mutex);
    worker.deque.push_back(std::move(task));
  }
  queued_tasks_.fetch_add(1);
}

void ThreadPool::wake(std::size_t task_hint) {
  if (sleepers_.load() == 0) return;
  // The empty critical section orders this wake-up against a worker that is
  // between its predicate check and the actual sleep (it holds sleep_mutex_
  // for that whole window), so the notification cannot be lost.
  { std::lock_guard lock(sleep_mutex_); }
  if (task_hint <= 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool_ = this;
  tls_index_ = index;
  for (;;) {
    std::function<void()> task = pop_local(index);
    if (!task) task = try_steal(index);
    if (task) {
      stat_slot().tasks.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleepers_.fetch_add(1);
    cv_.wait(lock, [this] {
      return stopping_ || queued_tasks_.load() > 0;
    });
    sleepers_.fetch_sub(1);
    if (stopping_ && queued_tasks_.load() == 0) return;
    // Either new work arrived or we are draining before shutdown; rescan.
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
#ifndef NDEBUG
  {
    std::lock_guard lock(sleep_mutex_);
    assert(!stopping_);
  }
#endif
  push_task([packaged] { (*packaged)(); });
  wake(1);
  return future;
}

void ThreadPool::fork_join(
    std::size_t chunk_count,
    const std::function<std::function<void()>(std::size_t, Join&)>& make_task) {
  // Span per parallel region (no-op unless tracing is on); the region is
  // the fork-to-join window of the calling thread.
  const TraceSpan region_span("parallel_region", "sched");
  Join join;
  join.pending.store(chunk_count, std::memory_order_relaxed);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    push_task(make_task(c, join));
  }
  stat_slot().regions.fetch_add(1, std::memory_order_relaxed);
  wake(chunk_count);

  // Help-first join: while our chunks are in flight, execute pending tasks —
  // ours by LIFO preference, anyone's otherwise — so a blocked caller
  // (including a worker running a nested loop) stays productive.
  std::size_t idle_spins = 0;
  while (join.pending.load(std::memory_order_acquire) != 0) {
    if (std::function<void()> task = acquire_task()) {
      StatSlot& slot = stat_slot();
      slot.tasks.fetch_add(1, std::memory_order_relaxed);
      slot.help.fetch_add(1, std::memory_order_relaxed);
      task();
      idle_spins = 0;
      continue;
    }
    // Our remaining chunks are running on other threads; nothing to help
    // with. Yield, then back off to a short sleep so an oversubscribed or
    // single-core machine still makes progress.
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (join.error) std::rethrow_exception(join.error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  grain = std::max<std::size_t>(1, grain);

  if (workers_.size() <= 1 || count <= grain) {
    body(begin, end);
    return;
  }

  // Several chunks per worker so stealing can rebalance uneven bodies, but
  // capped to keep per-chunk overhead negligible.
  const std::size_t max_chunks = (count + grain - 1) / grain;
  const std::size_t chunks = std::min(max_chunks, workers_.size() * 8);
  const std::size_t step = (count + chunks - 1) / chunks;
  const std::size_t actual_chunks = (count + step - 1) / step;

  fork_join(actual_chunks, [&](std::size_t c, Join& join) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(lo + step, end);
    return [&join, &body, lo, hi] {
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard lock(join.error_mutex);
        if (!join.error) join.error = std::current_exception();
      }
      join.pending.fetch_sub(1, std::memory_order_acq_rel);
    };
  });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

ThreadPool::StatSlot& ThreadPool::stat_slot() noexcept {
  return stat_slots_[tls_pool_ == this ? tls_index_ : workers_.size()];
}

SchedulerStats ThreadPool::stats() const {
  SchedulerStats snapshot;
  for (std::size_t i = 0; i <= workers_.size(); ++i) {
    const StatSlot& slot = stat_slots_[i];
    snapshot.tasks_executed += slot.tasks.load(std::memory_order_relaxed);
    snapshot.steals += slot.steals.load(std::memory_order_relaxed);
    snapshot.help_joins += slot.help.load(std::memory_order_relaxed);
    snapshot.parallel_regions += slot.regions.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void ThreadPool::publish_stats(MetricsRegistry& registry) {
  const SchedulerStats now = stats();
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  registry.counter("hm_scheduler_tasks_total")
      .increment(now.tasks_executed - published_.tasks_executed);
  registry.counter("hm_scheduler_steals_total")
      .increment(now.steals - published_.steals);
  registry.counter("hm_scheduler_help_joins_total")
      .increment(now.help_joins - published_.help_joins);
  registry.counter("hm_scheduler_parallel_regions_total")
      .increment(now.parallel_regions - published_.parallel_regions);
  published_ = now;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hm::common
