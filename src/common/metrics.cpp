#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/atomic_file.hpp"

namespace hm::common {
namespace {

/// Shortest-round-trip-ish deterministic double formatting for exports.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Splits a full identity `name{key="v",...}` into base name and the label
/// body (without braces); the body is empty for unlabeled metrics.
std::pair<std::string_view, std::string_view> split_identity(
    std::string_view identity) {
  const std::size_t brace = identity.find('{');
  if (brace == std::string_view::npos) return {identity, {}};
  std::string_view body = identity.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  return {identity.substr(0, brace), body};
}

/// Emits a `# TYPE` line once per base metric name.
void emit_type_line(std::string& out, std::string_view base,
                    std::string_view type, std::string& last_base) {
  if (base == last_base) return;
  last_base.assign(base);
  out.append("# TYPE ");
  out.append(base);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

/// `base_suffix{labels,extra}` or `base_suffix{extra}` / `base_suffix`.
void append_series(std::string& out, std::string_view base,
                   std::string_view suffix, std::string_view labels,
                   std::string_view extra_label) {
  out.append(base);
  out.append(suffix);
  if (labels.empty() && extra_label.empty()) return;
  out.push_back('{');
  out.append(labels);
  if (!labels.empty() && !extra_label.empty()) out.push_back(',');
  out.append(extra_label);
  out.push_back('}');
}

}  // namespace

double HistogramLayout::lower_edge(std::size_t bucket) const noexcept {
  return lowest * std::pow(growth, static_cast<double>(bucket) - 1.0);
}

std::size_t HistogramLayout::bucket_index(double value) const noexcept {
  // Underflow collects everything the log cannot place: non-finite,
  // non-positive, and values below the first edge.
  if (!(value >= lowest)) return 0;
  const double raw = std::log(value / lowest) / std::log(growth);
  std::size_t k = static_cast<std::size_t>(
      std::clamp(1.0 + std::floor(raw), 1.0, static_cast<double>(bins + 1)));
  // The log is inexact near edges; fix up against the exact pow-derived
  // boundaries so bucket membership is lower-inclusive to the bit.
  while (k > 1 && value < lower_edge(k)) --k;
  while (k <= bins && value >= lower_edge(k + 1)) ++k;
  return k;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    cumulative += buckets[k];
    if (cumulative >= target) {
      // Report the bucket's upper edge (the conservative bound); the
      // overflow bucket has no finite upper edge, fall back to its lower.
      return k + 1 < buckets.size() ? layout.lower_edge(k + 1)
                                    : layout.lower_edge(k);
    }
  }
  return layout.lower_edge(buckets.size() - 1);
}

HistogramShard::HistogramShard(HistogramLayout layout)
    : layout_(layout), buckets_(layout.bucket_count(), 0) {}

void HistogramShard::observe(double value) noexcept {
  buckets_[layout_.bucket_index(value)] += 1;
  count_ += 1;
  if (std::isfinite(value)) sum_ += value;
}

HistogramShard& HistogramShard::operator+=(
    const HistogramShard& other) noexcept {
  const std::size_t n = std::min(buckets_.size(), other.buckets_.size());
  for (std::size_t k = 0; k < n; ++k) buckets_[k] += other.buckets_[k];
  count_ += other.count_;
  sum_ += other.sum_;
  return *this;
}

HistogramSnapshot HistogramShard::snapshot() const {
  HistogramSnapshot snap;
  snap.layout = layout_;
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

Histogram::Histogram(HistogramLayout layout)
    : layout_(layout), buckets_(layout.bucket_count()) {}

void Histogram::observe(double value) noexcept {
  buckets_[layout_.bucket_index(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::merge(const HistogramShard& shard) noexcept {
  const std::size_t n = std::min(buckets_.size(), shard.buckets().size());
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t delta = shard.buckets()[k];
    if (delta != 0) buckets_[k].fetch_add(delta, std::memory_order_relaxed);
  }
  count_.fetch_add(shard.count(), std::memory_order_relaxed);
  sum_.fetch_add(shard.sum(), std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.layout = layout_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view key,
                                  std::string_view value) {
  return counter(labeled_metric(name, key, value));
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::vector<MetricLabel> labels) {
  return counter(labeled_metric(name, std::move(labels)));
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view key,
                              std::string_view value) {
  return gauge(labeled_metric(name, key, value));
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::vector<MetricLabel> labels) {
  return gauge(labeled_metric(name, std::move(labels)));
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramLayout layout) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(layout))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view key,
                                      std::string_view value,
                                      HistogramLayout layout) {
  return histogram(labeled_metric(name, key, value), layout);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<MetricLabel> labels,
                                      HistogramLayout layout) {
  return histogram(labeled_metric(name, std::move(labels)), layout);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->snapshot());
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string labeled_metric(std::string_view name, std::string_view key,
                           std::string_view value) {
  std::string identity;
  identity.reserve(name.size() + key.size() + value.size() + 6);
  identity.append(name);
  identity.push_back('{');
  identity.append(key);
  identity.append("=\"");
  identity.append(prometheus_escape(value));
  identity.append("\"}");
  return identity;
}

std::string labeled_metric(std::string_view name,
                           std::vector<MetricLabel> labels) {
  // Sort by key so identity is independent of caller label ordering; ties
  // break on value to keep the result deterministic even for (unusual)
  // duplicate keys.
  std::sort(labels.begin(), labels.end(),
            [](const MetricLabel& a, const MetricLabel& b) {
              return a.key != b.key ? a.key < b.key : a.value < b.value;
            });
  std::string identity;
  identity.append(name);
  identity.push_back('{');
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) identity.push_back(',');
    identity.append(labels[i].key);
    identity.append("=\"");
    identity.append(prometheus_escape(labels[i].value));
    identity.push_back('"');
  }
  identity.push_back('}');
  return identity;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const auto& [identity, value] : snapshot.counters) {
    const auto [base, labels] = split_identity(identity);
    emit_type_line(out, base, "counter", last_base);
    append_series(out, base, "", labels, {});
    out.push_back(' ');
    out.append(std::to_string(value));
    out.push_back('\n');
  }
  last_base.clear();
  for (const auto& [identity, value] : snapshot.gauges) {
    const auto [base, labels] = split_identity(identity);
    emit_type_line(out, base, "gauge", last_base);
    append_series(out, base, "", labels, {});
    out.push_back(' ');
    out.append(format_double(value));
    out.push_back('\n');
  }
  last_base.clear();
  for (const auto& [identity, histogram] : snapshot.histograms) {
    const auto [base, labels] = split_identity(identity);
    emit_type_line(out, base, "histogram", last_base);
    // Prometheus buckets are cumulative with `le` upper bounds; our bins
    // are lower-inclusive, so an exact edge value sits one `le` higher
    // than Prometheus convention — a half-ULP detail the exports accept.
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k + 1 < histogram.buckets.size(); ++k) {
      cumulative += histogram.buckets[k];
      const std::string le =
          "le=\"" + format_double(histogram.layout.lower_edge(k + 1)) + "\"";
      append_series(out, base, "_bucket", labels, le);
      out.push_back(' ');
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    append_series(out, base, "_bucket", labels, "le=\"+Inf\"");
    out.push_back(' ');
    out.append(std::to_string(histogram.count));
    out.push_back('\n');
    append_series(out, base, "_sum", labels, {});
    out.push_back(' ');
    out.append(format_double(histogram.sum));
    out.push_back('\n');
    append_series(out, base, "_count", labels, {});
    out.push_back(' ');
    out.append(std::to_string(histogram.count));
    out.push_back('\n');
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [identity, value] : snapshot.counters) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    \"");
    out.append(json_escape(identity));
    out.append("\": ");
    out.append(std::to_string(value));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [identity, value] : snapshot.gauges) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    \"");
    out.append(json_escape(identity));
    out.append("\": ");
    out.append(format_double(value));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [identity, histogram] : snapshot.histograms) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    \"");
    out.append(json_escape(identity));
    out.append("\": {\"count\": ");
    out.append(std::to_string(histogram.count));
    out.append(", \"sum\": ");
    out.append(format_double(histogram.sum));
    out.append(", \"mean\": ");
    out.append(format_double(histogram.mean()));
    out.append(", \"p50\": ");
    out.append(format_double(histogram.quantile(0.5)));
    out.append(", \"p99\": ");
    out.append(format_double(histogram.quantile(0.99)));
    out.append(", \"buckets\": [");
    for (std::size_t k = 0; k < histogram.buckets.size(); ++k) {
      if (k != 0) out.append(", ");
      out.append(std::to_string(histogram.buckets[k]));
    }
    out.append("]}");
  }
  out.append(first ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

std::string metrics_summary(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [identity, value] : snapshot.counters) {
    out.append("  ");
    out.append(identity);
    out.append(" = ");
    out.append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [identity, value] : snapshot.gauges) {
    out.append("  ");
    out.append(identity);
    out.append(" = ");
    out.append(format_double(value));
    out.push_back('\n');
  }
  for (const auto& [identity, histogram] : snapshot.histograms) {
    out.append("  ");
    out.append(identity);
    out.append(" : count=");
    out.append(std::to_string(histogram.count));
    out.append(" mean=");
    out.append(format_double(histogram.mean()));
    out.append(" p50<=");
    out.append(format_double(histogram.quantile(0.5)));
    out.append(" p99<=");
    out.append(format_double(histogram.quantile(0.99)));
    out.push_back('\n');
  }
  return out;
}

bool write_metrics_file(const MetricsSnapshot& snapshot,
                        const std::string& path, std::string* error) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? to_json(snapshot)
                                : to_prometheus_text(snapshot);
  return write_file_atomic(path, body, error);
}

}  // namespace hm::common
