#include "common/cli.hpp"

#include <algorithm>
#include <charconv>

namespace hm::common {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_flags) {
  auto is_flag = [&](std::string_view name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (is_flag(arg) || i + 1 >= argc ||
                 (argv[i + 1][0] == '-' && argv[i + 1][1] == '-')) {
        options_[std::string(arg)] = "";
      } else {
        options_[std::string(arg)] = argv[++i];
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool CliArgs::has(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  consumed_[it->first] = true;
  return true;
}

std::optional<std::string> CliArgs::get(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  consumed_[it->first] = true;
  return it->second;
}

std::string CliArgs::get_or(std::string_view name, std::string fallback) const {
  return get(name).value_or(std::move(fallback));
}

std::int64_t CliArgs::get_or(std::string_view name, std::int64_t fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text->data(), text->data() + text->size(), value);
  if (ec != std::errc{} || ptr != text->data() + text->size()) return fallback;
  return value;
}

double CliArgs::get_or(std::string_view name, double fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text->data(), text->data() + text->size(), value);
  if (ec != std::errc{} || ptr != text->data() + text->size()) return fallback;
  return value;
}

std::vector<std::string> CliArgs::unknown() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : options_) {
    const auto it = consumed_.find(name);
    if (it == consumed_.end() || !it->second) names.push_back(name);
  }
  return names;
}

}  // namespace hm::common
