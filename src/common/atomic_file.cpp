#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace hm::common {

namespace {

void set_error(std::string* error, const char* step, const std::string& path) {
  if (error == nullptr) return;
  *error = std::string(step) + " " + path + ": " + std::strerror(errno);
}

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
[[nodiscard]] bool write_all(int fd, std::string_view bytes) {
  const char* cursor = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create", tmp);
    return false;
  }
  if (!write_all(fd, bytes)) {
    set_error(error, "cannot write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    set_error(error, "cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "cannot close", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "cannot rename over", path);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename itself must reach the disk before the write counts as
  // durable; a failure here leaves a fully-consistent file either way.
  return sync_parent_directory(path, error);
}

bool sync_parent_directory(const std::string& path, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  const std::string directory =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
  const int fd = ::open(directory.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, "cannot open directory", directory);
    return false;
  }
  if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    // EINVAL/EROFS: the filesystem does not support directory fsync; the
    // rename is still atomic, just not power-loss ordered. Best effort.
    set_error(error, "cannot fsync directory", directory);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

}  // namespace hm::common
