#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace hm::common {

namespace {

void set_error(std::string* error, const char* step, const std::string& path) {
  if (error == nullptr) return;
  *error = std::string(step) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

int open_retry(const char* path, int flags, int mode) {
  for (;;) {
    const int fd = ::open(path, flags, static_cast<mode_t>(mode));
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

bool write_fd_all(int fd, std::string_view bytes) {
  const char* cursor = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    remaining -= static_cast<std::size_t>(written);
  }
  return true;
}

bool fsync_retry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool close_relaxed(int fd) {
  // POSIX leaves the descriptor state unspecified after EINTR; Linux closes
  // it, so retrying could close a descriptor another thread just opened.
  return ::close(fd) == 0 || errno == EINTR;
}

bool write_file_atomic(const std::string& path, std::string_view bytes,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create", tmp);
    return false;
  }
  if (!write_fd_all(fd, bytes)) {
    set_error(error, "cannot write", tmp);
    close_relaxed(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (!fsync_retry(fd)) {
    set_error(error, "cannot fsync", tmp);
    close_relaxed(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (!close_relaxed(fd)) {
    set_error(error, "cannot close", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "cannot rename over", path);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename itself must reach the disk before the write counts as
  // durable; a failure here leaves a fully-consistent file either way.
  return sync_parent_directory(path, error);
}

bool sync_parent_directory(const std::string& path, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  const std::string directory =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
  const int fd = open_retry(directory.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, "cannot open directory", directory);
    return false;
  }
  if (!fsync_retry(fd) && errno != EINVAL && errno != EROFS) {
    // EINVAL/EROFS: the filesystem does not support directory fsync; the
    // rename is still atomic, just not power-loss ordered. Best effort.
    set_error(error, "cannot fsync directory", directory);
    close_relaxed(fd);
    return false;
  }
  close_relaxed(fd);
  return true;
}

}  // namespace hm::common
