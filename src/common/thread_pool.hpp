// Work-stealing fork-join scheduler. This is the single parallel substrate
// used by every hot loop in the repository (forest training, rendering, TSDF
// integration, ICP reductions, surrogate pool prediction) and by the DSE
// batch evaluation that wraps them, so nested parallelism must compose: a
// worker blocked in a join *helps* — it executes pending tasks instead of
// idling or serializing — which keeps all threads busy when an outer
// parallel_for (batch of configurations) fans out into inner kernel loops.
//
// Structure: one deque per worker. A worker pushes and pops its own deque at
// the back (LIFO, cache-warm), thieves steal from the front (FIFO, oldest
// chunks first). External threads inject round-robin and join by stealing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hm::common {

class MetricsRegistry;

/// Monotonic scheduler counters (process lifetime of the pool). Cheap
/// relaxed increments; read via ThreadPool::stats() for bench reports.
struct SchedulerStats {
  std::uint64_t tasks_executed = 0;   ///< Tasks run by workers and helpers.
  std::uint64_t steals = 0;           ///< Tasks taken from another deque.
  std::uint64_t help_joins = 0;       ///< Tasks run by a thread blocked in a join.
  std::uint64_t parallel_regions = 0; ///< parallel_for / reduce invocations that forked.
};

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool (and the calling thread). Blocks until all
  /// iterations finish. `grain` is the minimum iterations per chunk.
  ///
  /// Safe to call from inside a worker: the nested loop forks its chunks
  /// onto the caller's own deque and the caller helps while joining, so
  /// idle or stealing workers pick the chunks up and the nesting composes
  /// instead of collapsing to serial. The first exception thrown by `body`
  /// is rethrown on the caller after every chunk has finished.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Chunked variant: body(chunk_begin, chunk_end) — cheaper when the body
  /// is tiny per-iteration.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& body,
                           std::size_t grain = 1);

  /// Deterministic chunked reduction. The range is split into
  /// ceil((end-begin)/grain) chunks whose boundaries depend only on the
  /// range and `grain` — never on the thread count — and
  ///   partial[c] = body(chunk_begin, chunk_end, identity)
  /// is computed per chunk (in parallel), then folded left-to-right in
  /// chunk order:
  ///   result = combine(... combine(identity, partial[0]) ..., partial[k-1]).
  /// Because both the chunking and the combine order are fixed, the result
  /// is bitwise identical across thread counts (including the serial
  /// fallback below), which is what makes ICP poses reproducible.
  template <typename T, typename Body, typename Combine>
  T parallel_reduce(std::size_t begin, std::size_t end, T identity, Body&& body,
                    Combine&& combine, std::size_t grain = 1);

  /// Scheduler counters snapshot (monotonic since construction).
  [[nodiscard]] SchedulerStats stats() const;

  /// Folds the counter growth since the previous publish into `registry`
  /// (`hm_scheduler_*_total` counter family). Safe to call repeatedly —
  /// each event is counted exactly once across publishes.
  void publish_stats(MetricsRegistry& registry);

  /// Process-wide default pool, sized to hardware concurrency.
  static ThreadPool& global();

 private:
  // One per worker thread; heap-allocated so deques never share cache lines.
  struct alignas(64) Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;  // hm-guarded-by(mutex)
  };

  // Join state for one fork-join region (lives on the forking thread's
  // stack; tasks hold a pointer, and the region outlives them because the
  // join spins until `pending` reaches zero).
  struct Join {
    std::atomic<std::size_t> pending{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t index);
  /// Pops the calling worker's own deque (back = newest). Null if empty.
  std::function<void()> pop_local(std::size_t index);
  /// Steals the oldest task from some other deque. Null if all are empty.
  std::function<void()> try_steal(std::size_t thief_index);
  /// pop_local for workers of this pool, try_steal otherwise.
  std::function<void()> acquire_task();
  /// Enqueues `task` (own deque when called from a worker of this pool,
  /// round-robin otherwise) WITHOUT waking anyone; call wake() after a batch.
  void push_task(std::function<void()> task);
  void wake(std::size_t task_hint);
  /// Forks `chunk_count` tasks built by make_task(c) and helps until all
  /// complete; rethrows the first task exception.
  void fork_join(std::size_t chunk_count,
                 const std::function<std::function<void()>(std::size_t, Join&)>& make_task);

  /// Per-thread scheduler counters, one cache line each: concurrent relaxed
  /// increments from different workers land on different lines instead of
  /// bouncing one shared line around (the false-sharing fix measured by
  /// bench/threadpool_scaling). Slot i belongs to worker i; the extra slot
  /// at index thread_count() absorbs external (non-worker) threads.
  struct alignas(64) StatSlot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> help{0};
    std::atomic<std::uint64_t> regions{0};
  };
  static_assert(alignof(StatSlot) == 64,
                "stat slots must start on their own cache line");
  static_assert(sizeof(StatSlot) == 64,
                "stat slots must occupy exactly one cache line");

  /// The calling thread's slot (worker slot, or the shared external slot).
  [[nodiscard]] StatSlot& stat_slot() noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::unique_ptr<StatSlot[]> stat_slots_;  ///< thread_count() + 1 entries.
  std::condition_variable cv_;
  std::mutex sleep_mutex_;
  // Each hot shared atomic gets its own cache line; without the padding,
  // queued_tasks_ (every push/pop) and next_victim_ (every external
  // injection) share a line and contend.
  alignas(64) std::atomic<std::size_t> queued_tasks_{0};  ///< Tasks pushed, not yet acquired.
  alignas(64) std::atomic<std::size_t> sleepers_{0};
  alignas(64) std::atomic<std::size_t> next_victim_{0};   ///< Round-robin injection cursor.
  bool stopping_ = false;  // hm-guarded-by(sleep_mutex_)

  std::mutex publish_mutex_;
  /// Counters already published (delta-publishing state).
  SchedulerStats published_;  // hm-guarded-by(publish_mutex_)

  static thread_local ThreadPool* tls_pool_;
  static thread_local std::size_t tls_index_;
};

namespace detail {

/// Serial reference implementation of the deterministic chunked reduce:
/// same chunk boundaries, same left-to-right combine order as the parallel
/// version, so pool-less call sites produce bitwise-identical results.
template <typename T, typename Body, typename Combine>
T serial_chunked_reduce(std::size_t begin, std::size_t end, T identity,
                        Body&& body, Combine&& combine, std::size_t grain) {
  T result = identity;
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    result = combine(std::move(result), body(lo, hi, identity));
  }
  return result;
}

}  // namespace detail

template <typename T, typename Body, typename Combine>
T ThreadPool::parallel_reduce(std::size_t begin, std::size_t end, T identity,
                              Body&& body, Combine&& combine, std::size_t grain) {
  grain = grain == 0 ? 1 : grain;
  if (begin >= end) return identity;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (chunks == 1 || thread_count() <= 1) {
    return detail::serial_chunked_reduce(begin, end, std::move(identity), body,
                                         combine, grain);
  }
  std::vector<T> partials(chunks, identity);
  parallel_for(
      0, chunks,
      [&](std::size_t c) {
        const std::size_t lo = begin + c * grain;
        const std::size_t hi = lo + grain < end ? lo + grain : end;
        partials[c] = body(lo, hi, identity);
      },
      /*grain=*/1);
  T result = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    result = combine(std::move(result), std::move(partials[c]));
  }
  return result;
}

/// Pool-optional parallel_reduce: every kernel takes `ThreadPool*` that may
/// be null, and the serial path must match the pooled one bitwise — both go
/// through the same deterministic chunking.
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool* pool, std::size_t begin, std::size_t end,
                  T identity, Body&& body, Combine&& combine,
                  std::size_t grain = 1) {
  grain = grain == 0 ? 1 : grain;
  if (pool != nullptr) {
    return pool->parallel_reduce(begin, end, std::move(identity),
                                 std::forward<Body>(body),
                                 std::forward<Combine>(combine), grain);
  }
  return detail::serial_chunked_reduce(begin, end, std::move(identity),
                                       std::forward<Body>(body),
                                       std::forward<Combine>(combine), grain);
}

}  // namespace hm::common
