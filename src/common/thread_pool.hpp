// Fixed-size worker pool with a blocking task queue and a chunked
// parallel_for. This is the single parallel substrate used by every hot loop
// in the repository (forest training, rendering, TSDF integration, ICP
// reductions, surrogate pool prediction).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hm::common {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it has run.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool (and the calling thread). Blocks until all
  /// iterations finish. `grain` is the minimum iterations per chunk.
  ///
  /// The body must not itself call parallel_for on the same pool with
  /// blocking semantics expected; nested calls fall back to serial execution
  /// on the calling thread to avoid deadlock.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Chunked variant: body(chunk_begin, chunk_end) — cheaper when the body
  /// is tiny per-iteration.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& body,
                           std::size_t grain = 1);

  /// Process-wide default pool, sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  static thread_local bool inside_worker_;
};

}  // namespace hm::common
