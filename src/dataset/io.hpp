// Dataset interchange: TUM-RGBD-format trajectories ("timestamp tx ty tz
// qx qy qz qw") and 16-bit PGM depth maps (the ICL-NUIM / TUM convention of
// depth in 1/5000 m units). Lets the synthetic sequences be exported for
// external tools, and external ground-truth trajectories be evaluated with
// the slambench metrics.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/sequence.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"

namespace hm::dataset {

/// TUM depth scale: stored integer value = meters * 5000.
inline constexpr double kTumDepthScale = 5000.0;

/// Serializes a depth map as a binary 16-bit PGM (big-endian sample order,
/// per the PGM specification). Invalid pixels store 0.
[[nodiscard]] std::string depth_to_pgm(const hm::geometry::DepthImage& depth,
                                       double scale = kTumDepthScale);

/// Parses a binary 16-bit PGM into a depth map; nullopt on malformed input.
[[nodiscard]] std::optional<hm::geometry::DepthImage> depth_from_pgm(
    std::string_view text, double scale = kTumDepthScale);

/// Serializes an intensity image ([0,1]) as a binary 8-bit PGM.
[[nodiscard]] std::string intensity_to_pgm(
    const hm::geometry::IntensityImage& intensity);

/// TUM trajectory text: one "timestamp tx ty tz qx qy qz qw" line per pose,
/// timestamps at 1/fps spacing starting from 0.
[[nodiscard]] std::string trajectory_to_tum(
    std::span<const hm::geometry::SE3> poses, double fps = 30.0);

/// Parses TUM trajectory text. Lines starting with '#' and blank lines are
/// skipped; nullopt when any remaining line is malformed.
[[nodiscard]] std::optional<std::vector<hm::geometry::SE3>> trajectory_from_tum(
    std::string_view text);

/// Exports a whole sequence in TUM layout under `directory`:
/// depth/NNNN.pgm, rgb/NNNN.pgm (if present) and groundtruth.txt.
/// Returns false on any I/O failure. Creates the directories.
[[nodiscard]] bool export_sequence(const RGBDSequence& sequence,
                                   const std::string& directory);

}  // namespace hm::dataset
