// RGB-D sequence generation: renders the living-room scene along the
// ground-truth trajectory, applies the sensor noise model, and caches the
// result so a DSE run (thousands of pipeline evaluations over the same
// frames) renders each frame exactly once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataset/renderer.hpp"
#include "dataset/sdf_scene.hpp"
#include "dataset/trajectory.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"

namespace hm::dataset {

struct Frame {
  DepthImage depth;          ///< Noisy sensor depth (m, 0 = invalid).
  IntensityImage intensity;  ///< Grayscale RGB proxy in [0, 1].
  SE3 ground_truth_pose;     ///< Camera-to-world.
};

struct SequenceConfig {
  int width = 80;
  int height = 60;
  TrajectoryConfig trajectory;
  NoiseConfig noise;
  RenderConfig render;
  std::uint64_t noise_seed = 7;
  bool render_intensity = true;  ///< ElasticFusion needs it; KFusion does not.
};

/// An immutable rendered sequence. Thread-safe to read concurrently.
class RGBDSequence {
 public:
  /// Renders every frame up front (parallelized over `pool`).
  RGBDSequence(const Scene& scene, const SequenceConfig& config,
               hm::common::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }
  [[nodiscard]] const Frame& frame(std::size_t i) const { return frames_[i]; }
  [[nodiscard]] const Intrinsics& intrinsics() const noexcept { return intrinsics_; }
  [[nodiscard]] const SequenceConfig& config() const noexcept { return config_; }

  /// All ground-truth poses, in frame order.
  [[nodiscard]] std::vector<SE3> ground_truth() const;

 private:
  SequenceConfig config_;
  Intrinsics intrinsics_;
  std::vector<Frame> frames_;
};

/// Builds the canonical benchmark sequence ("living room trajectory 2" in
/// the paper's setup): the reference scene, `frame_count` frames at the
/// given resolution. Shared by tests, examples, and every bench binary.
/// `kind` selects the camera-motion archetype (default: the reference
/// orbit).
[[nodiscard]] std::shared_ptr<const RGBDSequence> make_benchmark_sequence(
    std::size_t frame_count, int width = 80, int height = 60,
    hm::common::ThreadPool* pool = nullptr, bool with_intensity = true,
    TrajectoryKind kind = TrajectoryKind::kOrbit);

}  // namespace hm::dataset
