#include "dataset/sdf_scene.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hm::dataset {

double BoxSdf::distance(Vec3d point) const {
  const Vec3d p = point - center_;
  const Vec3d q{std::abs(p.x) - half_.x, std::abs(p.y) - half_.y,
                std::abs(p.z) - half_.z};
  const Vec3d outside{std::max(q.x, 0.0), std::max(q.y, 0.0), std::max(q.z, 0.0)};
  const double inside = std::min(q.max_component(), 0.0);
  return outside.norm() + inside;
}

double RoomShellSdf::distance(Vec3d point) const {
  // The shell is the complement of the interior box: negative outside the
  // room is not needed (the camera never leaves), so the SDF is simply the
  // distance to the nearest interior wall, negated inside the wall.
  const Vec3d p = point - center_;
  const Vec3d q{half_.x - std::abs(p.x), half_.y - std::abs(p.y),
                half_.z - std::abs(p.z)};
  return q.min_component();  // > 0 strictly inside, 0 on a wall.
}

Vec3d RoomShellSdf::albedo(Vec3d point) const {
  // Procedural checker plus a smooth gradient: gives the RGB image both
  // strong edges (for frame-to-frame alignment) and low-frequency shading.
  const double checker_scale = 0.6;
  const auto cell = static_cast<long long>(std::floor(point.x / checker_scale)) +
                    static_cast<long long>(std::floor(point.y / checker_scale)) +
                    static_cast<long long>(std::floor(point.z / checker_scale));
  const bool dark = (cell & 1) != 0;
  const double base = dark ? 0.35 : 0.75;
  const double gradient =
      0.15 * std::sin(point.x * 1.7) * std::cos(point.z * 1.3);
  const double v = std::clamp(base + gradient, 0.05, 0.95);
  return {v, v * 0.95, v * 0.9};
}

double Scene::distance(Vec3d point) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) best = std::min(best, node->distance(point));
  return best;
}

Vec3d Scene::albedo(Vec3d point) const {
  double best = std::numeric_limits<double>::infinity();
  const SdfNode* closest = nullptr;
  for (const auto& node : nodes_) {
    const double d = node->distance(point);
    if (d < best) {
      best = d;
      closest = node.get();
    }
  }
  return closest != nullptr ? closest->albedo(point) : Vec3d{0.5, 0.5, 0.5};
}

Vec3d Scene::normal(Vec3d point) const {
  constexpr double h = 1e-4;
  const double dx = distance({point.x + h, point.y, point.z}) -
                    distance({point.x - h, point.y, point.z});
  const double dy = distance({point.x, point.y + h, point.z}) -
                    distance({point.x, point.y - h, point.z});
  const double dz = distance({point.x, point.y, point.z + h}) -
                    distance({point.x, point.y, point.z - h});
  return Vec3d{dx, dy, dz}.normalized();
}

Scene build_living_room() {
  Scene scene;
  // Room interior: x,z in [0, 4.8], y in [0, 2.6] (y down in camera space,
  // but world y is just a coordinate here). Center at (2.4, 1.3, 2.4).
  scene.add(std::make_unique<RoomShellSdf>(Vec3d{2.4, 1.3, 2.4},
                                           Vec3d{2.4, 1.3, 2.4}));
  // Sofa: long box against the -z wall.
  scene.add(std::make_unique<BoxSdf>(Vec3d{1.6, 2.2, 0.7},
                                     Vec3d{0.9, 0.4, 0.45},
                                     Vec3d{0.55, 0.25, 0.2}));
  // Coffee table, room center.
  scene.add(std::make_unique<BoxSdf>(Vec3d{2.4, 2.25, 2.3},
                                     Vec3d{0.5, 0.35, 0.35},
                                     Vec3d{0.4, 0.3, 0.18}));
  // Shelf against the +x wall.
  scene.add(std::make_unique<BoxSdf>(Vec3d{4.4, 1.5, 3.3},
                                     Vec3d{0.35, 1.1, 0.5},
                                     Vec3d{0.3, 0.22, 0.15}));
  // Side cabinet near the -x wall.
  scene.add(std::make_unique<BoxSdf>(Vec3d{0.5, 2.1, 3.6},
                                     Vec3d{0.4, 0.5, 0.35},
                                     Vec3d{0.6, 0.55, 0.5}));
  // Floor lamp (sphere on a thin box pole) in a corner.
  scene.add(std::make_unique<SphereSdf>(Vec3d{3.9, 1.0, 0.8}, 0.25,
                                        Vec3d{0.9, 0.85, 0.6}));
  scene.add(std::make_unique<BoxSdf>(Vec3d{3.9, 1.85, 0.8},
                                     Vec3d{0.05, 0.75, 0.05},
                                     Vec3d{0.2, 0.2, 0.2}));
  // Ball on the table — small-scale curvature for the TSDF to resolve.
  scene.add(std::make_unique<SphereSdf>(Vec3d{2.55, 1.72, 2.25}, 0.18,
                                        Vec3d{0.2, 0.45, 0.7}));
  return scene;
}

}  // namespace hm::dataset
