// Procedural indoor scene modelled as a signed-distance field. This is the
// stand-in for the ICL-NUIM living-room model: ICL-NUIM itself is a
// synthetic ray-traced scene, so a procedural SDF preserves exactly what the
// experiments need — a known geometry to render depth from and a ground
// truth to measure reconstruction against.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "geometry/vec.hpp"

namespace hm::dataset {

using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

/// Signed distance: negative inside, positive outside, in meters.
class SdfNode {
 public:
  virtual ~SdfNode() = default;
  [[nodiscard]] virtual double distance(Vec3d point) const = 0;
  /// Diffuse albedo at a surface point, in [0,1]^3 — drives the RGB render.
  [[nodiscard]] virtual Vec3d albedo(Vec3d point) const {
    (void)point;
    return {0.7, 0.7, 0.7};
  }
};

/// Axis-aligned box centered at `center` with half-extents `half`.
class BoxSdf final : public SdfNode {
 public:
  BoxSdf(Vec3d center, Vec3d half, Vec3d albedo = {0.7, 0.7, 0.7})
      : center_(center), half_(half), albedo_(albedo) {}
  [[nodiscard]] double distance(Vec3d point) const override;
  [[nodiscard]] Vec3d albedo(Vec3d) const override { return albedo_; }

 private:
  Vec3d center_, half_, albedo_;
};

class SphereSdf final : public SdfNode {
 public:
  SphereSdf(Vec3d center, double radius, Vec3d albedo = {0.7, 0.7, 0.7})
      : center_(center), radius_(radius), albedo_(albedo) {}
  [[nodiscard]] double distance(Vec3d point) const override {
    return (point - center_).norm() - radius_;
  }
  [[nodiscard]] Vec3d albedo(Vec3d) const override { return albedo_; }

 private:
  Vec3d center_;
  double radius_;
  Vec3d albedo_;
};

/// The room shell: the *inside* of a box (walls/floor/ceiling), textured
/// with a procedural checker so the RGB channel carries gradient information
/// for photometric tracking.
class RoomShellSdf final : public SdfNode {
 public:
  RoomShellSdf(Vec3d center, Vec3d half) : center_(center), half_(half) {}
  [[nodiscard]] double distance(Vec3d point) const override;
  [[nodiscard]] Vec3d albedo(Vec3d point) const override;

 private:
  Vec3d center_, half_;
};

/// Union of children; albedo comes from the closest child.
class Scene final : public SdfNode {
 public:
  void add(std::unique_ptr<SdfNode> node) { nodes_.push_back(std::move(node)); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  [[nodiscard]] double distance(Vec3d point) const override;
  [[nodiscard]] Vec3d albedo(Vec3d point) const override;

  /// Central-difference surface normal of the SDF at `point`.
  [[nodiscard]] Vec3d normal(Vec3d point) const;

 private:
  std::vector<std::unique_ptr<SdfNode>> nodes_;
};

/// Builds the reference living-room scene used by all experiments: a
/// 4.8 m x 2.6 m x 4.8 m room shell with furniture-scale boxes (sofa, table,
/// shelf) and spheres (lamps) providing geometric and photometric detail.
/// The scene fits entirely inside the KFusion reconstruction volume
/// ([0, 4.8]^3 by default).
[[nodiscard]] Scene build_living_room();

}  // namespace hm::dataset
