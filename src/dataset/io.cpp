#include "dataset/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/atomic_file.hpp"

namespace hm::dataset {

using hm::geometry::DepthImage;
using hm::geometry::IntensityImage;
using hm::geometry::SE3;

std::string depth_to_pgm(const DepthImage& depth, double scale) {
  std::string out;
  char header[64];
  const int header_len = std::snprintf(header, sizeof(header), "P5\n%d %d\n65535\n",
                                       depth.width(), depth.height());
  out.append(header, static_cast<std::size_t>(header_len));
  out.reserve(out.size() + depth.size() * 2);
  for (int v = 0; v < depth.height(); ++v) {
    for (int u = 0; u < depth.width(); ++u) {
      const double meters = static_cast<double>(depth.at(u, v));
      const auto value = static_cast<std::uint16_t>(
          std::clamp(std::lround(meters * scale), 0L, 65535L));
      out.push_back(static_cast<char>(value >> 8));  // Big-endian per spec.
      out.push_back(static_cast<char>(value & 0xFF));
    }
  }
  return out;
}

namespace {

/// Reads the next whitespace-delimited token after skipping comments.
bool next_pgm_token(std::string_view text, std::size_t& pos, long& value) {
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    } else if (text[pos] == '#') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
    } else {
      break;
    }
  }
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return false;
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

}  // namespace

std::optional<DepthImage> depth_from_pgm(std::string_view text, double scale) {
  if (text.size() < 2 || text[0] != 'P' || text[1] != '5') return std::nullopt;
  std::size_t pos = 2;
  long width = 0, height = 0, max_value = 0;
  if (!next_pgm_token(text, pos, width) || !next_pgm_token(text, pos, height) ||
      !next_pgm_token(text, pos, max_value)) {
    return std::nullopt;
  }
  if (width <= 0 || height <= 0 || max_value != 65535) return std::nullopt;
  ++pos;  // The single whitespace byte after the header.
  const std::size_t expected = static_cast<std::size_t>(width) *
                               static_cast<std::size_t>(height) * 2;
  if (text.size() - pos < expected) return std::nullopt;

  DepthImage depth(static_cast<int>(width), static_cast<int>(height), 0.0f);
  for (long v = 0; v < height; ++v) {
    for (long u = 0; u < width; ++u) {
      const auto high = static_cast<std::uint8_t>(text[pos]);
      const auto low = static_cast<std::uint8_t>(text[pos + 1]);
      pos += 2;
      const std::uint16_t value = static_cast<std::uint16_t>((high << 8) | low);
      depth.at(static_cast<int>(u), static_cast<int>(v)) =
          static_cast<float>(static_cast<double>(value) / scale);
    }
  }
  return depth;
}

std::string intensity_to_pgm(const IntensityImage& intensity) {
  std::string out;
  char header[64];
  const int header_len = std::snprintf(header, sizeof(header), "P5\n%d %d\n255\n",
                                       intensity.width(), intensity.height());
  out.append(header, static_cast<std::size_t>(header_len));
  out.reserve(out.size() + intensity.size());
  for (int v = 0; v < intensity.height(); ++v) {
    for (int u = 0; u < intensity.width(); ++u) {
      const double value = std::clamp(
          static_cast<double>(intensity.at(u, v)), 0.0, 1.0);
      out.push_back(static_cast<char>(std::lround(value * 255.0)));
    }
  }
  return out;
}

std::string trajectory_to_tum(std::span<const SE3> poses, double fps) {
  std::string out = "# timestamp tx ty tz qx qy qz qw\n";
  char line[256];
  for (std::size_t i = 0; i < poses.size(); ++i) {
    const auto& pose = poses[i];
    const auto q = hm::geometry::rotation_to_quaternion(pose.rotation);
    const double timestamp = static_cast<double>(i) / fps;
    const int len = std::snprintf(
        line, sizeof(line), "%.6f %.9f %.9f %.9f %.9f %.9f %.9f %.9f\n",
        timestamp, pose.translation.x, pose.translation.y, pose.translation.z,
        q[1], q[2], q[3], q[0]);
    out.append(line, static_cast<std::size_t>(len));
  }
  return out;
}

std::optional<std::vector<SE3>> trajectory_from_tum(std::string_view text) {
  std::vector<SE3> poses;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t line_end = text.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(pos, line_end - pos);
    pos = line_end + 1;

    // Trim, skip comments and blank lines.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front())))
      line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    double fields[8];
    const char* cursor = line.data();
    const char* end = line.data() + line.size();
    for (double& field : fields) {
      while (cursor < end && std::isspace(static_cast<unsigned char>(*cursor)))
        ++cursor;
      const auto [ptr, ec] = std::from_chars(cursor, end, field);
      if (ec != std::errc{} || ptr == cursor) return std::nullopt;
      cursor = ptr;
    }
    SE3 pose;
    pose.translation = {fields[1], fields[2], fields[3]};
    // TUM order: qx qy qz qw; ours: (w, x, y, z).
    pose.rotation = hm::geometry::quaternion_to_rotation(
        {fields[7], fields[4], fields[5], fields[6]});
    poses.push_back(pose);
  }
  return poses;
}

namespace {

bool write_file(const std::filesystem::path& path, const std::string& content) {
  // Exported frames and trajectories go through the atomic writer so a
  // crash mid-export never leaves a torn file in the sequence directory.
  return hm::common::write_file_atomic(path.string(), content);
}

}  // namespace

bool export_sequence(const RGBDSequence& sequence, const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root(directory);
  fs::create_directories(root / "depth", ec);
  if (ec) return false;
  const bool with_intensity =
      sequence.frame_count() > 0 && !sequence.frame(0).intensity.empty();
  if (with_intensity) {
    fs::create_directories(root / "rgb", ec);
    if (ec) return false;
  }

  char name[32];
  for (std::size_t i = 0; i < sequence.frame_count(); ++i) {
    std::snprintf(name, sizeof(name), "%04zu.pgm", i);
    if (!write_file(root / "depth" / name,
                    depth_to_pgm(sequence.frame(i).depth))) {
      return false;
    }
    if (with_intensity &&
        !write_file(root / "rgb" / name,
                    intensity_to_pgm(sequence.frame(i).intensity))) {
      return false;
    }
  }
  return write_file(root / "groundtruth.txt",
                    trajectory_to_tum(sequence.ground_truth(),
                                      sequence.config().trajectory.fps));
}

}  // namespace hm::dataset
