#include "dataset/trajectory.hpp"

#include <cmath>

namespace hm::dataset {

SE3 look_at(Vec3d eye, Vec3d target) {
  // Camera convention: +z forward, +x right, +y down. World "down" is +y.
  const Vec3d forward = (target - eye).normalized();
  Vec3d down{0.0, 1.0, 0.0};
  Vec3d right = down.cross(forward);
  if (right.squared_norm() < 1e-12) {
    // Looking straight up/down; pick an arbitrary right axis.
    right = Vec3d{1.0, 0.0, 0.0};
  }
  right = right.normalized();
  down = forward.cross(right).normalized();

  SE3 pose;
  // Columns of the rotation are the camera axes expressed in world frame.
  pose.rotation(0, 0) = right.x;  pose.rotation(0, 1) = down.x;  pose.rotation(0, 2) = forward.x;
  pose.rotation(1, 0) = right.y;  pose.rotation(1, 1) = down.y;  pose.rotation(1, 2) = forward.y;
  pose.rotation(2, 0) = right.z;  pose.rotation(2, 1) = down.z;  pose.rotation(2, 2) = forward.z;
  pose.translation = eye;
  return pose;
}

namespace {

/// Eye/target pair for warped time s in [0, 2*pi*fraction].
struct Waypoint {
  Vec3d eye;
  Vec3d target;
};

Waypoint orbit_waypoint(const TrajectoryConfig& config, double angle) {
  // Elliptic orbit around the room center with gentle vertical bobbing and
  // a slow radial breathing term so motion excites all six DoF.
  const double breathing = 1.0 + 0.12 * std::sin(3.0 * angle);
  const Vec3d eye{
      config.orbit_center.x + config.radius_x * breathing * std::cos(angle),
      config.orbit_center.y + config.bob * std::sin(2.2 * angle),
      config.orbit_center.z + config.radius_z * breathing * std::sin(angle)};
  // The look target drifts slightly so pure-rotation segments exist too.
  const Vec3d target{config.look_target.x + 0.25 * std::sin(1.3 * angle),
                     config.look_target.y + 0.1 * std::cos(1.7 * angle),
                     config.look_target.z + 0.25 * std::cos(0.9 * angle)};
  return {eye, target};
}

Waypoint pan_waypoint(const TrajectoryConfig& config, double angle) {
  // Lateral dolly along x at roughly constant depth from the -z wall.
  const double span = 1.6 * config.radius_x;
  const Vec3d eye{config.orbit_center.x + span * (angle / M_PI - 0.5),
                  config.orbit_center.y + config.bob * std::sin(2.0 * angle),
                  config.orbit_center.z + 1.2};
  const Vec3d target{eye.x + 0.2 * std::sin(angle), config.look_target.y,
                     0.6};
  return {eye, target};
}

Waypoint zigzag_waypoint(const TrajectoryConfig& config, double angle) {
  // Depth oscillation toward/away from the -z wall: exercises the
  // integration band and the depth-dependent noise. The path is shifted
  // off the room center line so it clears the coffee table.
  const Vec3d eye{
      1.3 + 0.3 * std::sin(2.0 * angle),
      config.orbit_center.y + config.bob * std::cos(1.5 * angle),
      config.orbit_center.z + config.radius_z * std::sin(angle) * 0.9};
  // Aim past the sofa corner: the wall/floor/sofa junction constrains
  // all six degrees of freedom (a head-on flat wall would let depth-only
  // ICP slide laterally).
  const Vec3d target{2.0 + 0.3 * std::sin(angle), 1.9, 0.7};
  return {eye, target};
}

Waypoint rotation_heavy_waypoint(const TrajectoryConfig& config, double angle) {
  // Almost stationary camera sweeping its gaze across the room: the
  // regime where SO(3) pre-alignment and coarse pyramid levels matter.
  // The viewpoint is off the room center line, clear of the coffee table.
  const Vec3d eye{1.5 + 0.05 * std::sin(angle), 1.3,
                  3.0 + 0.05 * std::cos(angle)};
  const double sweep = 2.2 * angle;
  const Vec3d target{config.orbit_center.x + 1.8 * std::cos(sweep),
                     config.look_target.y + 0.3 * std::sin(1.3 * sweep),
                     config.orbit_center.z + 1.8 * std::sin(sweep)};
  return {eye, target};
}

}  // namespace

std::vector<SE3> generate_trajectory(const TrajectoryConfig& config) {
  std::vector<SE3> poses;
  poses.reserve(config.frame_count);
  const auto n = static_cast<double>(config.frame_count);
  for (std::size_t frame = 0; frame < config.frame_count; ++frame) {
    const double t = static_cast<double>(frame) / std::max(1.0, n - 1.0);
    // Smoothstep time warp: zero velocity at both ends (handheld start/stop).
    const double s = t * t * (3.0 - 2.0 * t);
    const double angle = 2.0 * M_PI * config.orbit_fraction * s;
    Waypoint waypoint;
    switch (config.kind) {
      case TrajectoryKind::kOrbit:
        waypoint = orbit_waypoint(config, angle);
        break;
      case TrajectoryKind::kPan:
        waypoint = pan_waypoint(config, angle);
        break;
      case TrajectoryKind::kZigzag:
        waypoint = zigzag_waypoint(config, angle);
        break;
      case TrajectoryKind::kRotationHeavy:
        waypoint = rotation_heavy_waypoint(config, angle);
        break;
    }
    poses.push_back(look_at(waypoint.eye, waypoint.target));
  }
  return poses;
}

}  // namespace hm::dataset
