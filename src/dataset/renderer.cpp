#include "dataset/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace hm::dataset {
namespace {

using hm::geometry::Vec3d;

/// Sphere-traces one ray; returns hit distance along the (unit) direction,
/// or a negative value on miss.
double trace(const Scene& scene, Vec3d origin, Vec3d direction,
             const RenderConfig& config) {
  double t = 0.0;
  for (int step = 0; step < config.max_steps; ++step) {
    const Vec3d p = origin + direction * t;
    const double d = scene.distance(p);
    if (d < config.hit_epsilon) return t;
    // March conservatively; SDFs of unions are exact lower bounds.
    t += std::max(d, config.hit_epsilon);
    if (t > config.max_depth) break;
  }
  return -1.0;
}

}  // namespace

DepthImage render_depth(const Scene& scene, const Intrinsics& camera,
                        const SE3& camera_to_world, const RenderConfig& config,
                        hm::common::ThreadPool* pool) {
  DepthImage depth(camera.width, camera.height, 0.0f);
  auto render_rows = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      for (int u = 0; u < camera.width; ++u) {
        const Vec3d dir_camera = camera.ray_direction(u, static_cast<int>(v));
        const double z_scale = dir_camera.norm();
        const Vec3d dir_world = camera_to_world.rotate(dir_camera / z_scale);
        const double t =
            trace(scene, camera_to_world.translation, dir_world, config);
        if (t > 0.0) {
          // Store z-depth (distance along the camera z axis), the convention
          // used by depth cameras and by unproject().
          depth.at(u, static_cast<int>(v)) = static_cast<float>(t / z_scale);
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for_chunks(0, static_cast<std::size_t>(camera.height),
                              render_rows, /*grain=*/4);
  } else {
    render_rows(0, static_cast<std::size_t>(camera.height));
  }
  return depth;
}

IntensityImage render_intensity(const Scene& scene, const Intrinsics& camera,
                                const SE3& camera_to_world,
                                const RenderConfig& config,
                                hm::common::ThreadPool* pool) {
  IntensityImage intensity(camera.width, camera.height, 0.0f);
  auto render_rows = [&](std::size_t row_begin, std::size_t row_end) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      for (int u = 0; u < camera.width; ++u) {
        const Vec3d dir_camera = camera.ray_direction(u, static_cast<int>(v));
        const Vec3d dir_world =
            camera_to_world.rotate(dir_camera.normalized());
        const double t =
            trace(scene, camera_to_world.translation, dir_world, config);
        if (t <= 0.0) continue;
        const Vec3d hit = camera_to_world.translation + dir_world * t;
        const Vec3d n = scene.normal(hit);
        const Vec3d albedo = scene.albedo(hit);
        // Headlight shading: light collocated with the camera. Gray albedo
        // average keeps the image single-channel.
        const double lambert = std::max(0.0, n.dot(-dir_world));
        const double gray = (albedo.x + albedo.y + albedo.z) / 3.0;
        const double value = gray * (0.25 + 0.75 * lambert);
        intensity.at(u, static_cast<int>(v)) =
            static_cast<float>(std::clamp(value, 0.0, 1.0));
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for_chunks(0, static_cast<std::size_t>(camera.height),
                              render_rows, /*grain=*/4);
  } else {
    render_rows(0, static_cast<std::size_t>(camera.height));
  }
  return intensity;
}

void apply_depth_noise(DepthImage& depth, const NoiseConfig& config,
                       hm::common::Rng& rng) {
  if (!config.enabled) return;
  const int width = depth.width();
  const int height = depth.height();

  // Pass 1: mark pixels adjacent to a depth discontinuity.
  hm::geometry::Image<unsigned char> edge(width, height, 0);
  for (int v = 0; v < height; ++v) {
    for (int u = 0; u < width; ++u) {
      const float z = depth.at(u, v);
      if (z <= 0.0f) continue;
      const float right = u + 1 < width ? depth.at(u + 1, v) : z;
      const float below = v + 1 < height ? depth.at(u, v + 1) : z;
      if (std::abs(right - z) > config.edge_threshold ||
          std::abs(below - z) > config.edge_threshold) {
        edge.at(u, v) = 1;
        if (u + 1 < width) edge.at(u + 1, v) = 1;
        if (v + 1 < height) edge.at(u, v + 1) = 1;
      }
    }
  }

  // Pass 2: per-pixel noise. Sequential scan keeps the result deterministic.
  for (int v = 0; v < height; ++v) {
    for (int u = 0; u < width; ++u) {
      float& z = depth.at(u, v);
      if (z <= 0.0f) continue;
      const double drop = edge.at(u, v) != 0 ? config.edge_dropout_probability
                                             : config.dropout_probability;
      if (rng.bernoulli(drop)) {
        z = 0.0f;
        continue;
      }
      const double zd = static_cast<double>(z);
      const double sigma = config.sigma_base + config.sigma_quadratic * zd * zd;
      double noisy = zd + rng.normal(0.0, sigma);
      // Kinect disparity quantization grows quadratically with depth.
      const double step = config.quantization * zd * zd;
      if (step > 0.0) noisy = std::round(noisy / step) * step;
      z = static_cast<float>(std::max(noisy, 0.0));
    }
  }
}

}  // namespace hm::dataset
