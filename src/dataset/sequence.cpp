#include "dataset/sequence.hpp"

namespace hm::dataset {

RGBDSequence::RGBDSequence(const Scene& scene, const SequenceConfig& config,
                           hm::common::ThreadPool* pool)
    : config_(config),
      intrinsics_(Intrinsics::kinect(config.width, config.height)) {
  const std::vector<SE3> poses = generate_trajectory(config.trajectory);
  frames_.resize(poses.size());

  // Render clean frames in parallel (the renderer is pure), then apply the
  // noise model sequentially with per-frame forked RNGs so the noise of
  // frame i does not depend on thread scheduling.
  hm::common::Rng master(config.noise_seed);
  std::vector<hm::common::Rng> frame_rngs;
  frame_rngs.reserve(poses.size());
  for (std::size_t i = 0; i < poses.size(); ++i) frame_rngs.push_back(master.fork());

  auto render_frame = [&](std::size_t i) {
    Frame& frame = frames_[i];
    frame.ground_truth_pose = poses[i];
    // Nested parallelism composes on the work-stealing pool: the per-pixel
    // renderer loops also fork, so short sequences (fewer frames than
    // threads) still use every core. Rendering is pure per pixel, so the
    // frames are identical regardless of threading.
    frame.depth = render_depth(scene, intrinsics_, poses[i], config_.render, pool);
    if (config_.render_intensity) {
      frame.intensity =
          render_intensity(scene, intrinsics_, poses[i], config_.render, pool);
    }
    apply_depth_noise(frame.depth, config_.noise, frame_rngs[i]);
  };

  if (pool != nullptr) {
    pool->parallel_for(0, poses.size(), render_frame);
  } else {
    for (std::size_t i = 0; i < poses.size(); ++i) render_frame(i);
  }
}

std::vector<SE3> RGBDSequence::ground_truth() const {
  std::vector<SE3> poses;
  poses.reserve(frames_.size());
  for (const Frame& frame : frames_) poses.push_back(frame.ground_truth_pose);
  return poses;
}

std::shared_ptr<const RGBDSequence> make_benchmark_sequence(
    std::size_t frame_count, int width, int height,
    hm::common::ThreadPool* pool, bool with_intensity, TrajectoryKind kind) {
  const Scene scene = build_living_room();
  SequenceConfig config;
  config.width = width;
  config.height = height;
  config.trajectory.kind = kind;
  config.trajectory.frame_count = frame_count;
  // Keep the per-frame camera motion constant regardless of sequence
  // length: the reference is 400 frames covering 0.55 of an orbit (the
  // "living room trajectory 2" regime), so shorter sequences cover a
  // proportionally smaller arc.
  config.trajectory.orbit_fraction =
      0.55 * static_cast<double>(frame_count) / 400.0;
  config.render_intensity = with_intensity;
  return std::make_shared<RGBDSequence>(scene, config, pool);
}

}  // namespace hm::dataset
