// Ground-truth camera trajectory generation. The reference trajectory
// mimics ICL-NUIM "living room kt2": a smooth handheld-style sweep through
// the room, always looking toward the furnished interior, with gentle
// rotation (the regime where dense tracking is expected to work).
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/se3.hpp"

namespace hm::dataset {

using hm::geometry::SE3;
using hm::geometry::Vec3d;

/// Camera-motion archetypes. The paper's evaluation uses a single dataset
/// trajectory and names "more breadth in terms of trajectories" as future
/// work; these presets provide that breadth for the robustness ablation.
enum class TrajectoryKind {
  kOrbit,          ///< The reference living-room sweep (default).
  kPan,            ///< Mostly-translational lateral pan along one wall.
  kZigzag,         ///< Back-and-forth depth changes (stresses integration).
  kRotationHeavy,  ///< Near-stationary position, strong look-around rotation.
};

struct TrajectoryConfig {
  TrajectoryKind kind = TrajectoryKind::kOrbit;
  std::size_t frame_count = 400;
  /// Sensor frame rate; controls the per-frame motion magnitude.
  double fps = 30.0;
  /// Orbit radii of the camera path inside the room (meters).
  double radius_x = 1.1;
  double radius_z = 1.1;
  /// Vertical bobbing amplitude (meters).
  double bob = 0.12;
  /// Fraction of a full orbit covered over the whole sequence.
  double orbit_fraction = 0.55;
  /// Center of the orbit and of the look-at target.
  Vec3d orbit_center{2.4, 1.45, 2.4};
  Vec3d look_target{2.4, 1.8, 2.3};
};

/// Camera-to-world poses (x_world = pose * x_camera), camera looking down
/// +z toward the look target, x right, y down.
[[nodiscard]] std::vector<SE3> generate_trajectory(const TrajectoryConfig& config);

/// Look-at pose builder: camera at `eye` looking toward `target` with the
/// world +y axis ("down") as the vertical reference.
[[nodiscard]] SE3 look_at(Vec3d eye, Vec3d target);

}  // namespace hm::dataset
