// Depth + RGB rendering of an SDF scene by sphere tracing, plus the
// Kinect-style sensor noise model. Together with trajectory.hpp this
// produces the synthetic RGB-D sequences that substitute for ICL-NUIM.
#pragma once

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataset/sdf_scene.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"

namespace hm::dataset {

using hm::geometry::DepthImage;
using hm::geometry::IntensityImage;
using hm::geometry::Intrinsics;
using hm::geometry::SE3;

struct RenderConfig {
  double max_depth = 12.0;     ///< Rays are cut off beyond this range (m).
  double hit_epsilon = 1e-4;   ///< Surface convergence threshold (m).
  int max_steps = 192;         ///< Sphere-tracing step budget per ray.
};

/// Kinect-like depth sensor noise: quantization, depth-dependent Gaussian
/// noise, random dropout, and an edge shadow (dropout near depth
/// discontinuities, as produced by structured-light sensors).
struct NoiseConfig {
  double sigma_base = 0.0012;      ///< Additive noise at 1 m (m).
  double sigma_quadratic = 0.0019; ///< Scales with depth^2 (Khoshelham model).
  double quantization = 0.002;     ///< Depth quantization step at 1 m (m).
  double dropout_probability = 0.004;
  double edge_dropout_probability = 0.35;
  double edge_threshold = 0.08;    ///< Neighbor depth jump marking an edge (m).
  bool enabled = true;
};

/// Renders a clean (noise-free) depth map for `camera_to_world`.
/// Invalid pixels (no hit within range) are 0.
[[nodiscard]] DepthImage render_depth(const Scene& scene, const Intrinsics& camera,
                                      const SE3& camera_to_world,
                                      const RenderConfig& config = {},
                                      hm::common::ThreadPool* pool = nullptr);

/// Renders a grayscale intensity image (Lambertian shading of the albedo
/// with a headlight plus an ambient term) aligned with the depth map.
[[nodiscard]] IntensityImage render_intensity(
    const Scene& scene, const Intrinsics& camera, const SE3& camera_to_world,
    const RenderConfig& config = {}, hm::common::ThreadPool* pool = nullptr);

/// Applies the sensor noise model in place. Deterministic given `rng`.
void apply_depth_noise(DepthImage& depth, const NoiseConfig& config,
                       hm::common::Rng& rng);

}  // namespace hm::dataset
