#include "sandbox/sandbox.hpp"

#include <cerrno>
#include <cstring>
#include <exception>

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/flight_recorder.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "hypermapper/resilient_evaluator.hpp"
#include "sandbox/protocol.hpp"

namespace hm::sandbox {

namespace {

using hm::hypermapper::Configuration;
using hm::hypermapper::EvaluationError;
using hm::hypermapper::EvaluationTimeout;

/// Set only inside a worker process, for fault-injection tests.
int g_worker_response_fd = -1;

/// Global-registry handles resolved once; the registry owns the metrics.
struct SandboxMetrics {
  hm::common::Counter* spawns = nullptr;
  hm::common::Counter* requests = nullptr;
  hm::common::Counter* kills = nullptr;
  hm::common::Counter* timeouts = nullptr;
  hm::common::Counter* worker_deaths = nullptr;
  hm::common::Counter* protocol_errors = nullptr;
  hm::common::Counter* recycles = nullptr;
  hm::common::Counter* backoffs = nullptr;
  hm::common::Counter* fallbacks = nullptr;
  hm::common::Counter* circuit_trips = nullptr;
  hm::common::Gauge* circuit_open = nullptr;
  hm::common::Histogram* eval_seconds = nullptr;
};

const SandboxMetrics& sandbox_metrics() {
  static const SandboxMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    SandboxMetrics resolved;
    resolved.spawns = &registry.counter("hm_sandbox_spawns_total");
    resolved.requests = &registry.counter("hm_sandbox_requests_total");
    resolved.kills = &registry.counter("hm_sandbox_kills_total");
    resolved.timeouts = &registry.counter("hm_sandbox_timeouts_total");
    resolved.worker_deaths = &registry.counter("hm_sandbox_worker_deaths_total");
    resolved.protocol_errors =
        &registry.counter("hm_sandbox_protocol_errors_total");
    resolved.recycles = &registry.counter("hm_sandbox_recycles_total");
    resolved.backoffs = &registry.counter("hm_sandbox_backoffs_total");
    resolved.fallbacks = &registry.counter("hm_sandbox_fallbacks_total");
    resolved.circuit_trips =
        &registry.counter("hm_sandbox_circuit_trips_total");
    resolved.circuit_open = &registry.gauge("hm_sandbox_circuit_open");
    resolved.eval_seconds = &registry.histogram("hm_sandbox_eval_seconds");
    return resolved;
  }();
  return metrics;
}

/// EINTR-safe sleep (the supervisor takes SIGCHLD/SIGTERM mid-backoff).
void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  struct timespec remaining{};
  remaining.tv_sec = static_cast<time_t>(seconds);
  remaining.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(remaining.tv_sec)) * 1e9);
  while (::nanosleep(&remaining, &remaining) != 0 && errno == EINTR) {
  }
}

/// A write into a dead worker's pipe must surface as EPIPE (handled and
/// classified), not kill the supervisor. Process-wide and idempotent.
void ignore_sigpipe_once() {
  static const bool installed = [] {
    struct sigaction action{};
    action.sa_handler = SIG_IGN;
    return ::sigaction(SIGPIPE, &action, nullptr) == 0;
  }();
  (void)installed;
}

/// Deterministic, time-free description of a wait() status — it is
/// journaled in quarantine records and must be byte-identical on resume.
[[nodiscard]] std::string describe_worker_death(int status) {
  if (WIFSIGNALED(status)) {
    return "sandbox: worker killed by signal " +
           std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "sandbox: worker exited with status " +
           std::to_string(WEXITSTATUS(status)) + " before responding";
  }
  return "sandbox: worker died before responding";
}

using CounterSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

[[nodiscard]] CounterSnapshot counter_snapshot() {
  return hm::common::MetricsRegistry::global().snapshot().counters;
}

/// Per-name counter increments since `before`. Both snapshots are sorted
/// by name (the registry guarantees it), so a single merge pass suffices.
[[nodiscard]] CounterSnapshot counter_deltas_since(
    const CounterSnapshot& before) {
  const CounterSnapshot after = counter_snapshot();
  CounterSnapshot deltas;
  std::size_t j = 0;
  for (const auto& [name, value] : after) {
    while (j < before.size() && before[j].first < name) ++j;
    const std::uint64_t prior =
        (j < before.size() && before[j].first == name) ? before[j].second : 0;
    if (value > prior) deltas.emplace_back(name, value - prior);
  }
  return deltas;
}

/// Worker exit codes for protocol-level failures (distinct from evaluator
/// exit paths so the supervisor's death messages stay diagnosable).
constexpr int kWorkerExitBadRequest = 12;
constexpr int kWorkerExitWriteFailed = 13;

}  // namespace

double backoff_delay_seconds(const SandboxPolicy& policy,
                             std::uint64_t attempt) {
  if (attempt == 0) return 0.0;
  double delay = policy.backoff_base_seconds;
  for (std::uint64_t i = 1; i < attempt && delay < policy.backoff_max_seconds;
       ++i) {
    delay *= 2.0;
  }
  if (delay > policy.backoff_max_seconds) delay = policy.backoff_max_seconds;
  // Jitter in [0.5, 1.0): seeded, so recovery schedules are reproducible.
  std::uint64_t state = policy.backoff_seed ^ (attempt * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t bits = hm::common::splitmix64_next(state);
  const double unit =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
  return delay * (0.5 + 0.5 * unit);
}

int worker_response_fd() noexcept { return g_worker_response_fd; }

/// Releases the leased worker slot and wakes waiters on scope exit (also
/// on the exception paths that classify worker deaths).
class SandboxedEvaluator::Lease {
 public:
  Lease(SandboxedEvaluator& owner, Worker& worker)
      : owner_(owner), worker_(worker) {}
  ~Lease() {
    const std::lock_guard<std::mutex> lock(owner_.mutex_);
    worker_.busy = false;
    owner_.worker_available_.notify_all();
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

 private:
  SandboxedEvaluator& owner_;
  Worker& worker_;
};

SandboxedEvaluator::SandboxedEvaluator(hm::hypermapper::Evaluator& inner,
                                       SandboxPolicy policy)
    : inner_(inner), policy_(policy) {
  if (policy_.workers < 1) policy_.workers = 1;
  ignore_sigpipe_once();
  workers_.reserve(policy_.workers);
  for (std::size_t i = 0; i < policy_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->span_name = "sandbox_worker_" + std::to_string(i);
    workers_.push_back(std::move(worker));
  }
}

SandboxedEvaluator::~SandboxedEvaluator() { shutdown(); }

std::vector<double> SandboxedEvaluator::evaluate(const Configuration& config) {
  return supervised(config, 0);
}

std::vector<double> SandboxedEvaluator::evaluate_retry(
    const Configuration& config, std::uint64_t retry_nonce) {
  return supervised(config, retry_nonce);
}

void SandboxedEvaluator::set_dispatch_hook(
    std::function<void(std::size_t)> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dispatch_hook_ = std::move(hook);
}

bool SandboxedEvaluator::circuit_open() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return circuit_open_;
}

SandboxStats SandboxedEvaluator::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SandboxedEvaluator::shutdown() {
  // hm-lint: allow(guarded-by) the workers_ vector is structurally frozen after construction; only the pointed-to Workers mutate, and destroy_worker locks mutex_ around those field updates
  for (auto& worker : workers_) {
    destroy_worker(*worker, /*force_kill=*/false);
  }
}

void SandboxedEvaluator::trip_circuit_locked() {
  if (circuit_open_) return;
  circuit_open_ = true;
  hm::common::FlightRecorder::global().record(
      hm::common::FlightEventKind::kCircuitTrip, "sandbox",
      spawn_failures_in_a_row_);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.circuit_open = true;
  }
  sandbox_metrics().circuit_trips->increment();
  sandbox_metrics().circuit_open->set(1.0);
  hm::common::log_warn()
      << "sandbox circuit breaker tripped after " << spawn_failures_in_a_row_
      << " consecutive infrastructure failures; degrading to in-process "
         "evaluation (hard deadlines and memory caps no longer enforced)";
  worker_available_.notify_all();
}

std::vector<double> SandboxedEvaluator::fallback_evaluate(
    const Configuration& config, std::uint64_t nonce) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.fallbacks;
  }
  sandbox_metrics().fallbacks->increment();
  if (inner_.thread_safe()) {
    return nonce == 0 ? inner_.evaluate(config)
                      : inner_.evaluate_retry(config, nonce);
  }
  // The optimizer saw thread_safe() == true and dispatches concurrently;
  // a non-thread-safe inner evaluator must be serialized here.
  const std::lock_guard<std::mutex> lock(fallback_mutex_);
  // hm-lint: allow(blocking-under-lock) fallback_mutex_ exists precisely to serialize the blocking evaluation of a non-thread-safe inner evaluator
  return nonce == 0 ? inner_.evaluate(config)
                    // hm-lint: allow(blocking-under-lock) same serialization contract as the line above
                    : inner_.evaluate_retry(config, nonce);
}

bool SandboxedEvaluator::spawn_worker(Worker& worker,
                                      const std::vector<int>& sibling_fds,
                                      std::uint64_t attempt) {
  if (policy_.inject_spawn_failures_for_test > 0) {
    --policy_.inject_spawn_failures_for_test;
    return false;
  }
  int request_pipe[2] = {-1, -1};
  int response_pipe[2] = {-1, -1};
  if (::pipe(request_pipe) != 0) return false;
  if (::pipe(response_pipe) != 0) {
    hm::common::close_relaxed(request_pipe[0]);
    hm::common::close_relaxed(request_pipe[1]);
    return false;
  }
  // Capture the trace epoch before forking: the child inherits the
  // (steady, wall-clock) anchor pair, so its span timestamps land on the
  // supervisor's timeline without any rebase error.
  hm::common::init_trace_epoch();
  const pid_t pid = ::fork();
  if (pid < 0) {
    hm::common::close_relaxed(request_pipe[0]);
    hm::common::close_relaxed(request_pipe[1]);
    hm::common::close_relaxed(response_pipe[0]);
    hm::common::close_relaxed(response_pipe[1]);
    return false;
  }
  if (pid == 0) {
    // Child. Drop the supervisor-side pipe ends, and every sibling
    // worker's descriptors: a sibling's response pipe held open here
    // would defeat the supervisor's EOF-based death detection.
    hm::common::close_relaxed(request_pipe[1]);
    hm::common::close_relaxed(response_pipe[0]);
    for (const int fd : sibling_fds) hm::common::close_relaxed(fd);
    worker_main(request_pipe[0], response_pipe[1]);
  }
  hm::common::close_relaxed(request_pipe[0]);
  hm::common::close_relaxed(response_pipe[1]);
  worker.pid = pid;
  worker.to_child = request_pipe[1];
  worker.from_child = response_pipe[0];
  worker.served = 0;
  worker.fresh = true;
  (void)attempt;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.spawns;
  }
  sandbox_metrics().spawns->increment();
  return true;
}

// hm-signal-safe [[noreturn]] child entry point: single-threaded after
// fork, never returns (every path ends in ::_exit), and the evaluator it
// drives was constructed before any sibling thread could hold a lock the
// child would inherit frozen.
void SandboxedEvaluator::worker_main(int request_fd, int response_fd) {
  g_worker_response_fd = response_fd;
  // Lifecycle belongs to the supervisor: ignore the cooperative SIGINT /
  // SIGTERM so an interrupted run drains in-flight evaluations instead of
  // tearing them; only the supervisor's SIGKILL (or a resource limit)
  // stops a worker early.
  struct sigaction action{};
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  if (policy_.memory_limit_mb > 0) {
    struct rlimit limit{};
    limit.rlim_cur = static_cast<rlim_t>(policy_.memory_limit_mb) * 1024 * 1024;
    limit.rlim_max = limit.rlim_cur;
    ::setrlimit(RLIMIT_AS, &limit);
  }
  for (;;) {
    std::string payload;
    const FrameStatus status = read_frame(request_fd, &payload, 0.0);
    if (status == FrameStatus::kEof) ::_exit(0);  // Orderly shutdown.
    if (status != FrameStatus::kOk) ::_exit(kWorkerExitBadRequest);
    const auto request = decode_request(payload);
    if (!request) ::_exit(kWorkerExitBadRequest);

    EvalResponse response;
    CounterSnapshot before;
    if (policy_.forward_metrics) {
      try {
        before = counter_snapshot();
      } catch (...) {
        before.clear();
      }
    }
    // A traced request turns span recording on for exactly this
    // evaluation; the buffer is cleared first so the shipped bundle holds
    // only this request's spans (single-purpose process, nothing else
    // records here).
    const bool traced = request->trace_id != 0;
    if (traced) {
      hm::common::clear_trace();
      hm::common::set_trace_enabled(true);
    }
    {
      const hm::common::TraceContext trace_context(request->trace_id);
      const hm::common::TraceSpan span("worker_eval", "sandbox");
      try {
        response.objectives =
            request->nonce == 0
                ? inner_.evaluate(request->config)
                : inner_.evaluate_retry(request->config, request->nonce);
        response.ok = true;
      } catch (const EvaluationError& error) {
        response.ok = false;
        response.transient = error.transient();
        response.message = error.what();
      } catch (const std::exception& error) {
        response.ok = false;
        response.transient = false;
        response.message = error.what();
      } catch (...) {
        response.ok = false;
        response.transient = false;
        response.message = "unknown exception";
      }
    }
    if (traced) {
      try {
        response.span_bundle =
            hm::common::encode_span_bundle(request->trace_id);
      } catch (...) {
        response.span_bundle.clear();
      }
      hm::common::set_trace_enabled(false);
      hm::common::clear_trace();
    }
    if (policy_.forward_metrics) {
      // Best-effort: under a tight RLIMIT_AS the snapshot itself can run
      // out of memory; the objectives still ship without deltas.
      try {
        response.counter_deltas = counter_deltas_since(before);
      } catch (...) {
        response.counter_deltas.clear();
      }
    }
    if (!write_frame(response_fd, encode_response(response))) {
      ::_exit(kWorkerExitWriteFailed);
    }
  }
}

int SandboxedEvaluator::destroy_worker(Worker& worker, bool force_kill) {
  pid_t pid = -1;
  {
    // Field updates and fd closes are serialized with spawn_worker's
    // sibling-fd collection + fork, so a descriptor number can never be
    // recycled into a new pipe while a concurrent spawn still lists it.
    const std::lock_guard<std::mutex> lock(mutex_);
    pid = worker.pid;
    if (worker.to_child >= 0) hm::common::close_relaxed(worker.to_child);
    if (worker.from_child >= 0) hm::common::close_relaxed(worker.from_child);
    worker.pid = -1;
    worker.to_child = -1;
    worker.from_child = -1;
    worker.fresh = true;
    worker.served = 0;
  }
  if (pid <= 0) return 0;

  int status = 0;
  bool killed = false;
  if (!force_kill) {
    // The closed request pipe EOFs an idle worker out; give it a short
    // grace period before escalating.
    for (int i = 0; i < 500; ++i) {
      const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
      if (reaped == pid) return status;
      if (reaped < 0 && errno != EINTR) return 0;
      sleep_seconds(0.001);
    }
  }
  killed = ::kill(pid, SIGKILL) == 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      status = 0;
      break;
    }
  }
  if (killed) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.kills;
    }
    sandbox_metrics().kills->increment();
  }
  return status;
}

std::vector<double> SandboxedEvaluator::supervised(const Configuration& config,
                                                   std::uint64_t nonce) {
  const SandboxMetrics& metrics = sandbox_metrics();
  for (;;) {
    // Lease a worker: prefer a live idle one, else spawn into a dead
    // slot (with seeded backoff after infrastructure failures), else wait.
    Worker* leased = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (leased == nullptr && !circuit_open_) {
        Worker* dead_slot = nullptr;
        for (auto& worker : workers_) {
          if (worker->busy) continue;
          if (worker->pid > 0) {
            leased = worker.get();
            break;
          }
          if (dead_slot == nullptr) dead_slot = worker.get();
        }
        if (leased != nullptr) {
          leased->busy = true;
          break;
        }
        if (dead_slot == nullptr) {
          worker_available_.wait(lock);
          continue;
        }
        dead_slot->busy = true;  // Reserve the slot across the spawn.
        const std::uint64_t attempt = spawn_failures_in_a_row_;
        if (attempt > 0) {
          {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.backoffs;
          }
          metrics.backoffs->increment();
          lock.unlock();
          sleep_seconds(backoff_delay_seconds(policy_, attempt));
          lock.lock();
        }
        if (spawn_worker(*dead_slot, collect_sibling_fds(*dead_slot),
                         attempt)) {
          spawn_failures_in_a_row_ = 0;
          leased = dead_slot;  // Stays busy: this is our lease.
          break;
        }
        dead_slot->busy = false;
        ++spawn_failures_in_a_row_;
        if (spawn_failures_in_a_row_ >= policy_.circuit_failure_threshold) {
          trip_circuit_locked();
        }
        worker_available_.notify_all();
      }
    }
    if (leased == nullptr) return fallback_evaluate(config, nonce);
    Worker& worker = *leased;
    const Lease lease(*this, worker);

    {
      std::function<void(std::size_t)> hook;
      std::size_t ordinal = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ordinal = ++dispatch_count_;
        hook = dispatch_hook_;
      }
      if (hook) hook(ordinal);
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests;
    }
    metrics.requests->increment();
    const hm::common::TraceSpan span(worker.span_name.c_str(), "sandbox",
                                     metrics.eval_seconds);

    EvalRequest request;
    request.config = config;
    request.nonce = nonce;
    request.trace_id = hm::common::current_trace_id();
    if (!write_frame(worker.to_child, encode_request(request))) {
      // The worker died *between* evaluations (EPIPE before the request
      // was delivered) — not attributable to this configuration. Replace
      // it and retry internally. A worker dead before its very first
      // request counts as an infrastructure failure for the breaker.
      const bool infrastructure = worker.fresh;
      destroy_worker(worker, /*force_kill=*/true);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (infrastructure) {
        ++spawn_failures_in_a_row_;
        if (spawn_failures_in_a_row_ >= policy_.circuit_failure_threshold) {
          trip_circuit_locked();
        }
      }
      continue;
    }
    worker.fresh = false;

    std::string payload;
    const FrameStatus status =
        read_frame(worker.from_child, &payload, policy_.deadline_seconds);
    if (status == FrameStatus::kTimeout) {
      // hm-lint: allow(guarded-by) leased worker: the busy flag keeps pid stable until this thread destroys or releases it
      const auto killed_pid = static_cast<std::uint64_t>(worker.pid);
      hm::common::FlightRecorder::global().record(
          hm::common::FlightEventKind::kWorkerKill, worker.span_name,
          killed_pid);
      destroy_worker(worker, /*force_kill=*/true);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.timeouts;
      }
      metrics.timeouts->increment();
      // Deterministic message: mentions the configured deadline, never
      // the measured elapsed time (journaled quarantine records must
      // resume byte-identically).
      throw EvaluationTimeout(
          "sandbox: evaluation exceeded the hard deadline (" +
          std::to_string(policy_.deadline_seconds) + " s); worker killed");
    }
    if (status == FrameStatus::kEof) {
      // hm-lint: allow(guarded-by) leased worker: the busy flag keeps pid stable until this thread destroys or releases it
      const auto dead_pid = static_cast<std::uint64_t>(worker.pid);
      hm::common::FlightRecorder::global().record(
          hm::common::FlightEventKind::kWorkerDeath, worker.span_name,
          dead_pid);
      const int wait_status = destroy_worker(worker, /*force_kill=*/true);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.worker_deaths;
      }
      metrics.worker_deaths->increment();
      // A deterministic evaluator that crashed on this configuration will
      // crash again: permanent, quarantined on the first attempt.
      throw EvaluationError(describe_worker_death(wait_status),
                            /*transient=*/false);
    }
    if (status == FrameStatus::kCorrupt || status == FrameStatus::kError) {
      const std::string detail =
          status == FrameStatus::kCorrupt
              ? "sandbox: protocol corruption from worker (bad frame)"
              : std::string("sandbox: read from worker failed: ") +
                    std::strerror(errno);
      destroy_worker(worker, /*force_kill=*/true);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      metrics.protocol_errors->increment();
      // Transient: a one-off torn stream is retried (deterministically
      // corrupt evaluators exhaust max_attempts and quarantine).
      throw EvaluationError(detail, /*transient=*/true);
    }

    const auto response = decode_response(payload);
    if (!response) {
      destroy_worker(worker, /*force_kill=*/true);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      metrics.protocol_errors->increment();
      throw EvaluationError(
          "sandbox: protocol corruption from worker (undecodable response)",
          /*transient=*/true);
    }

    // A complete, well-formed response (even a failure report) proves the
    // sandbox infrastructure works: reset the breaker's failure streak and
    // retire the worker if it reached its recycling age.
    bool recycle = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      spawn_failures_in_a_row_ = 0;
      ++worker.served;
      recycle = policy_.max_evals_per_worker > 0 &&
                worker.served >= policy_.max_evals_per_worker;
    }
    if (recycle) {
      destroy_worker(worker, /*force_kill=*/false);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.recycles;
      }
      metrics.recycles->increment();
    }

    if (!response->span_bundle.empty()) {
      // Fold the worker's spans for this request into our merged timeline;
      // a malformed bundle is dropped (observability must never fail an
      // evaluation that produced valid objectives).
      (void)hm::common::ingest_span_bundle(response->span_bundle);
    }
    if (!response->ok) {
      throw EvaluationError(response->message, response->transient);
    }
    if (policy_.forward_metrics) {
      auto& registry = hm::common::MetricsRegistry::global();
      for (const auto& [name, delta] : response->counter_deltas) {
        registry.counter(name).increment(delta);
      }
    }
    return response->objectives;
  }
}

std::vector<int> SandboxedEvaluator::collect_sibling_fds(
    const Worker& spawning) const {
  std::vector<int> fds;
  for (const auto& worker : workers_) {
    if (worker.get() == &spawning || worker->pid <= 0) continue;
    fds.push_back(worker->to_child);
    fds.push_back(worker->from_child);
  }
  return fds;
}

}  // namespace hm::sandbox
