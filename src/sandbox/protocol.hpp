// Wire protocol between the evaluation supervisor and its forked workers:
// length-framed, crc-checked messages over a pair of pipes. The payload
// codecs reuse the journal's bit-exact field encoding (checkpoint.hpp), so
// an objective vector crosses the process boundary with the identical
// IEEE-754 bits it would have in-process — the determinism guarantee the
// optimizer's byte-identical resume depends on. This protocol is the seed
// of the `hm_serve` request/reply daemon the ROADMAP targets: a worker is
// simply a client whose transport is a pipe instead of a socket.
//
// Frame layout (all integers little-endian):
//   [u32 payload length][u32 crc32(payload)][payload bytes]
//
// A frame is only ever acted on after its checksum verifies; anything else
// — a short read, an oversized length, a crc mismatch — classifies the
// stream as corrupt and the supervisor kills and replaces the worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hm::sandbox {

/// Upper bound on a frame payload. A length field above this is corruption
/// (or a hostile worker), not a real message; reject before allocating.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;

/// Result of one framed read.
enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kEof,      ///< Orderly EOF at a frame boundary (peer closed / died idle).
  kTimeout,  ///< The deadline expired before a complete frame arrived.
  kCorrupt,  ///< Bad length, bad checksum, or EOF inside a frame.
  kError,    ///< A non-retryable read/poll error (errno describes it).
};

[[nodiscard]] const char* to_string(FrameStatus status);

/// Writes one complete frame, retrying EINTR and short writes. Returns
/// false on any hard error (typically EPIPE: the peer is gone).
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

/// Reads one complete frame. `deadline_seconds` bounds the whole frame
/// (header + payload) in wall-clock time; <= 0 blocks indefinitely. EINTR
/// never aborts the read — the remaining budget is recomputed and the wait
/// resumes, so signal-heavy supervisors cannot mis-classify a live worker.
[[nodiscard]] FrameStatus read_frame(int fd, std::string* payload,
                                     double deadline_seconds);

/// One evaluation request: the configuration vector plus the deterministic
/// retry nonce (0 means a first attempt — `Evaluator::evaluate`; non-zero
/// routes to `evaluate_retry`). A nonzero `trace_id` asks the worker to
/// record trace spans for this evaluation under that id and ship them back
/// in the response, so one request's timeline spans the fork boundary.
struct EvalRequest {
  std::vector<double> config;
  std::uint64_t nonce = 0;
  std::uint64_t trace_id = 0;
};

/// One evaluation response. On success the objective vector is bit-exact
/// and `counter_deltas` carries the worker's metric increments (kernel op
/// counts, evaluator counters) for the supervisor to fold into its own
/// registry. On failure the transient flag preserves the evaluator's
/// transient-vs-permanent classification across the process boundary.
/// `span_bundle`, when non-empty, is an `encode_span_bundle` payload
/// (common/trace.hpp) holding the worker's spans for the request's trace
/// id; the supervisor ingests it into its merged timeline.
struct EvalResponse {
  bool ok = false;
  std::vector<double> objectives;
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  bool transient = false;
  std::string message;
  std::string span_bundle;
};

[[nodiscard]] std::string encode_request(const EvalRequest& request);
[[nodiscard]] std::optional<EvalRequest> decode_request(
    std::string_view payload);

[[nodiscard]] std::string encode_response(const EvalResponse& response);
[[nodiscard]] std::optional<EvalResponse> decode_response(
    std::string_view payload);

// --- hm_serve control-plane messages. ---
//
// The daemon speaks the same frame layout over a stream socket (UNIX or
// TCP); read_frame/write_frame are already transport-agnostic — poll-based,
// EINTR-retrying, short-transfer-safe — so sockets need no new I/O code,
// only new payload types. A serve frame is a tagged message: a short kind
// string plus positional string fields (doubles, when present, use the
// bit-exact hex codec like every other payload in this file).
//
// Kinds, client -> server:
//   hello   [client_name, protocol_version]
//   submit  [scenario_json]         open a new campaign
//   resume  [campaign_id]           reattach a parked or recovered campaign
//   ping    [seq]                   liveness probe
//   bye     []                      orderly detach (campaign keeps running)
//
// Kinds, server -> client:
//   welcome  [server_name, protocol_version, max_campaigns]
//   accepted [campaign_id]          admission granted, campaign running
//   busy     [reason]               typed overload shed — never a silent drop
//   error    [message]              malformed scenario / unknown campaign / ...
//   progress [campaign_id, iteration, samples, front_size]
//   report   [campaign_id, interrupted, report_bytes]  final rendered report
//   parked   [campaign_id, reason]  campaign parked (drain, dead client)
//   pong     [seq]
//   spans    [campaign_id, bundle]  merged span bundle for the campaign's
//                                   trace id (encode_span_bundle payload);
//                                   sent just before `report` when the
//                                   submit carried a nonzero trace id
//
// Every serve frame also carries a (trace_id, span_id) pair: trace_id is
// the request-scoped correlation id (0 = untraced) that the daemon
// propagates into campaign evaluations and sandbox workers; span_id
// identifies the sender's current span so either side can attribute a
// frame to the span that produced it.
struct ServeFrame {
  std::string kind;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::vector<std::string> fields;
};

/// Current serve protocol version; `hello`/`welcome` carry it so a client
/// from a different build fails the handshake explicitly. v2: the serve
/// frame header grew the (trace_id, span_id) pair and EvalRequest/
/// EvalResponse gained trace_id/span_bundle — a v1 peer must be rejected
/// at the handshake, not fail mid-stream with opaque decode errors.
inline constexpr std::uint64_t kServeProtocolVersion = 2;

[[nodiscard]] std::string encode_serve_frame(const ServeFrame& frame);
[[nodiscard]] std::optional<ServeFrame> decode_serve_frame(
    std::string_view payload);

}  // namespace hm::sandbox
