// Process-isolated configuration evaluation. Aggressive corners of the
// design space (tiny volumes, degenerate ICP thresholds) are exactly where
// evaluations segfault, spin forever, or exhaust memory — and the
// cooperative deadline in ResilientEvaluator cannot preempt any of that.
// SandboxedEvaluator runs every evaluation inside a pool of forked worker
// processes speaking the framed pipe protocol (protocol.hpp), so the
// supervisor can enforce *hard* guarantees:
//
//   - wall-clock deadlines via poll() + SIGKILL (the worker never gets a
//     vote), memory ceilings via setrlimit(RLIMIT_AS) in the child;
//   - crash containment: a worker that segfaults, aborts, or corrupts the
//     protocol stream is reaped and its death is mapped into the typed
//     exceptions ResilientEvaluator already classifies (EvaluationTimeout
//     -> kTimeout, EvaluationError -> kException), so retry, quarantine,
//     and the journal apply unchanged;
//   - supervised recovery: workers are recycled after N evaluations or any
//     abnormal exit, respawns after infrastructure failures use seeded
//     exponential backoff with jitter, and a circuit breaker degrades to
//     in-process evaluation (logged + metrics-flagged) if the sandbox
//     itself — fork, pipes — fails repeatedly.
//
// Determinism: objectives cross the pipe bit-exactly (protocol.hpp), and
// every failure message is a pure function of the policy and the worker's
// exit status — never of measured time — so a sandboxed, journaled run
// resumes byte-identically. Thread-safe by construction (workers are
// leased under a mutex), which is what lets the optimizer dispatch whole
// batches of sandboxed evaluations concurrently on the ThreadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "hypermapper/evaluator.hpp"

namespace hm::sandbox {

/// Supervision policy for the worker pool.
struct SandboxPolicy {
  /// Worker processes kept in the pool. Batch dispatch runs up to this
  /// many evaluations truly concurrently.
  std::size_t workers = 1;
  /// Hard per-evaluation wall-clock deadline in seconds; on overrun the
  /// worker is SIGKILLed and the evaluation classifies kTimeout. 0 = none.
  double deadline_seconds = 0.0;
  /// RLIMIT_AS ceiling applied in each worker, in MiB; 0 = unlimited.
  std::size_t memory_limit_mb = 0;
  /// Recycle (cleanly replace) a worker after this many evaluations;
  /// bounds leak accumulation from misbehaving evaluators. 0 = never.
  std::size_t max_evals_per_worker = 128;
  /// Consecutive sandbox-infrastructure failures (fork/pipe failure, a
  /// worker dead before its first request) that trip the circuit breaker.
  std::size_t circuit_failure_threshold = 3;
  /// Seeded exponential backoff with jitter applied before respawn
  /// attempts that follow an infrastructure failure.
  double backoff_base_seconds = 0.005;
  double backoff_max_seconds = 0.25;
  std::uint64_t backoff_seed = 0xbacc0ffULL;
  /// Fold the workers' metric counter deltas into this process's registry.
  bool forward_metrics = true;
  /// Test seam: make the next N spawn attempts fail without forking, to
  /// exercise backoff and the circuit breaker deterministically.
  std::size_t inject_spawn_failures_for_test = 0;
};

/// The deterministic backoff schedule: base * 2^(attempt-1), capped, then
/// scaled by a jitter factor in [0.5, 1.0) drawn from splitmix64(seed,
/// attempt). Pure function of (policy, attempt); exposed for tests.
[[nodiscard]] double backoff_delay_seconds(const SandboxPolicy& policy,
                                           std::uint64_t attempt);

/// Pool counters, mirrored into the global metrics registry under
/// `hm_sandbox_*`. Snapshot is internally consistent per field only.
struct SandboxStats {
  std::size_t spawns = 0;
  std::size_t requests = 0;
  std::size_t kills = 0;            ///< SIGKILLs delivered by the supervisor.
  std::size_t timeouts = 0;         ///< Hard-deadline overruns.
  std::size_t worker_deaths = 0;    ///< Abnormal exits attributed to a config.
  std::size_t protocol_errors = 0;  ///< Corrupt or undecodable frames.
  std::size_t recycles = 0;         ///< Clean end-of-life replacements.
  std::size_t backoffs = 0;         ///< Backoff sleeps before respawns.
  std::size_t fallbacks = 0;        ///< In-process evaluations after a trip.
  bool circuit_open = false;
};

class SandboxedEvaluator final : public hm::hypermapper::Evaluator {
 public:
  /// Wraps `inner`, which is evaluated inside worker processes. Workers
  /// are spawned lazily on first use; fork happens from whichever thread
  /// dispatches, under a pool mutex (the children inherit the evaluator's
  /// state as of their spawn — evaluators must be self-contained, which
  /// the deterministic SLAM evaluators are).
  explicit SandboxedEvaluator(hm::hypermapper::Evaluator& inner,
                              SandboxPolicy policy = {});
  ~SandboxedEvaluator() override;

  SandboxedEvaluator(const SandboxedEvaluator&) = delete;
  SandboxedEvaluator& operator=(const SandboxedEvaluator&) = delete;

  [[nodiscard]] std::size_t objective_count() const override {
    return inner_.objective_count();
  }
  /// Always safe: concurrent callers lease distinct workers. (If the
  /// circuit breaker has degraded to in-process evaluation, calls are
  /// serialized when the inner evaluator is not itself thread-safe.)
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] std::vector<double> evaluate(
      const hm::hypermapper::Configuration& config) override;
  [[nodiscard]] std::vector<double> evaluate_retry(
      const hm::hypermapper::Configuration& config,
      std::uint64_t retry_nonce) override;

  /// Drains the pool: closes the request pipes (idle workers exit cleanly
  /// on EOF), SIGKILLs stragglers after a short grace, reaps everything.
  /// Idempotent; also runs from the destructor. This is what the
  /// cooperative-shutdown path relies on — no worker outlives the run.
  void shutdown();

  [[nodiscard]] SandboxStats stats() const;
  [[nodiscard]] const SandboxPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] bool circuit_open() const;

  /// Test seam mirroring JournalWriter::set_append_hook: invoked with the
  /// 1-based dispatch ordinal immediately before each request is written
  /// to a worker. The crash harness raises SIGTERM from here to pin the
  /// "signal lands mid-batch" interleaving deterministically.
  void set_dispatch_hook(std::function<void(std::size_t)> hook);

 private:
  struct Worker {
    pid_t pid = -1;  // hm-guarded-by(mutex_)
    int to_child = -1;    ///< Request pipe, write end.
    int from_child = -1;  ///< Response pipe, read end.
    std::size_t served = 0;
    bool busy = false;  // hm-guarded-by(mutex_)
    bool fresh = true;  ///< No request delivered since spawn.
    std::string span_name;
  };

  /// RAII worker lease; releases the slot and wakes waiters on scope exit.
  class Lease;

  [[nodiscard]] std::vector<double> supervised(
      const hm::hypermapper::Configuration& config, std::uint64_t nonce);
  [[nodiscard]] std::vector<double> fallback_evaluate(
      const hm::hypermapper::Configuration& config, std::uint64_t nonce);
  /// Spawns into `worker`; returns false on fork/pipe failure. `attempt`
  /// indexes the backoff schedule (0 = no wait).
  [[nodiscard]] bool spawn_worker(Worker& worker,
                                  const std::vector<int>& sibling_fds,
                                  std::uint64_t attempt);
  /// Child-side main loop; never returns.
  [[noreturn]] void worker_main(int request_fd, int response_fd);
  /// Kills (if still alive), reaps, and clears a worker; returns the raw
  /// wait() status (0 when the worker was already gone).
  int destroy_worker(Worker& worker, bool force_kill);
  void trip_circuit_locked();
  /// Live siblings' pipe fds, for the child to close after fork. Must be
  /// called with mutex_ held (serialized against destroy_worker's closes).
  [[nodiscard]] std::vector<int> collect_sibling_fds(
      const Worker& spawning) const;

  hm::hypermapper::Evaluator& inner_;
  SandboxPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable worker_available_;
  std::vector<std::unique_ptr<Worker>> workers_;  // hm-guarded-by(mutex_)
  std::size_t spawn_failures_in_a_row_ = 0;  // hm-guarded-by(mutex_)
  bool circuit_open_ = false;  // hm-guarded-by(mutex_)
  std::size_t dispatch_count_ = 0;  // hm-guarded-by(mutex_)
  std::function<void(std::size_t)> dispatch_hook_;  // hm-guarded-by(mutex_)

  /// Serializes fallback evaluations when the inner evaluator is not
  /// thread-safe but the optimizer dispatches concurrently.
  std::mutex fallback_mutex_;

  mutable std::mutex stats_mutex_;
  SandboxStats stats_;  // hm-guarded-by(stats_mutex_)
};

/// Inside a worker process: the response-pipe descriptor of the running
/// evaluation, or -1 in the supervisor. Fault-injection tests use it to
/// write garbage into the protocol stream from the evaluator side.
[[nodiscard]] int worker_response_fd() noexcept;

}  // namespace hm::sandbox
