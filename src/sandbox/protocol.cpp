#include "sandbox/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <iterator>

#include <poll.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/checkpoint.hpp"
#include "common/journal.hpp"
#include "common/timer.hpp"

namespace hm::sandbox {

namespace {

constexpr std::size_t kHeaderBytes = 8;

void put_u32le(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xFFu);
  out[1] = static_cast<char>((value >> 8) & 0xFFu);
  out[2] = static_cast<char>((value >> 16) & 0xFFu);
  out[3] = static_cast<char>((value >> 24) & 0xFFu);
}

[[nodiscard]] std::uint32_t get_u32le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

enum class ExactStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

/// Reads exactly `count` bytes. The deadline is shared across the whole
/// frame via `timer`; EINTR recomputes the remaining budget and resumes.
/// `*bytes_read` reports progress so the caller can tell a clean EOF at a
/// frame boundary from one that tears a frame in half.
[[nodiscard]] ExactStatus read_exact(int fd, char* out, std::size_t count,
                                     const hm::common::Timer& timer,
                                     double deadline_seconds,
                                     std::size_t* bytes_read) {
  *bytes_read = 0;
  while (*bytes_read < count) {
    int timeout_ms = -1;
    if (deadline_seconds > 0.0) {
      const double remaining = deadline_seconds - timer.seconds();
      if (remaining <= 0.0) return ExactStatus::kTimeout;
      timeout_ms = static_cast<int>(std::ceil(remaining * 1e3));
      if (timeout_ms < 1) timeout_ms = 1;
    }
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ExactStatus::kError;
    }
    if (ready == 0) return ExactStatus::kTimeout;
    // POLLHUP without POLLIN still requires a read(): the pipe may hold
    // buffered bytes the dead writer flushed before exiting.
    const ssize_t got = ::read(fd, out + *bytes_read, count - *bytes_read);
    if (got < 0) {
      if (errno == EINTR) continue;
      return ExactStatus::kError;
    }
    if (got == 0) return ExactStatus::kEof;
    *bytes_read += static_cast<std::size_t>(got);
  }
  return ExactStatus::kOk;
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTimeout: return "timeout";
    case FrameStatus::kCorrupt: return "corrupt";
    case FrameStatus::kError: return "error";
  }
  return "unknown";
}

// Socket-use audit (hm_serve shares these entry points with the pipe
// transport): write_fd_all retries EINTR and short writes, and surfaces
// EPIPE/ECONNRESET as a clean `false` — callers must have SIGPIPE ignored
// (the sandbox supervisor and the serve event loop both do). read_exact
// below retries EINTR with the remaining deadline recomputed from a shared
// Timer, treats POLLHUP as "drain the buffered bytes first", and reports
// partial progress so a half-closed peer mid-frame classifies kCorrupt,
// not kEof. Nothing here assumes pipe semantics.
bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string frame(kHeaderBytes, '\0');
  put_u32le(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame.data() + 4, hm::common::crc32(payload));
  frame.append(payload);
  // One buffered write keeps the frame contiguous in the pipe; pipes only
  // guarantee atomicity up to PIPE_BUF, so the reader still reassembles.
  return hm::common::write_fd_all(fd, frame);
}

FrameStatus read_frame(int fd, std::string* payload, double deadline_seconds) {
  const hm::common::Timer timer;
  char header[kHeaderBytes];
  std::size_t got = 0;
  switch (read_exact(fd, header, kHeaderBytes, timer, deadline_seconds, &got)) {
    case ExactStatus::kOk: break;
    case ExactStatus::kEof:
      // EOF before any byte is an orderly close; inside the header it is a
      // torn frame.
      return got == 0 ? FrameStatus::kEof : FrameStatus::kCorrupt;
    case ExactStatus::kTimeout: return FrameStatus::kTimeout;
    case ExactStatus::kError: return FrameStatus::kError;
  }
  const std::uint32_t length = get_u32le(header);
  const std::uint32_t expected_crc = get_u32le(header + 4);
  if (length > kMaxFramePayload) return FrameStatus::kCorrupt;
  payload->assign(length, '\0');
  if (length > 0) {
    switch (read_exact(fd, payload->data(), length, timer, deadline_seconds,
                       &got)) {
      case ExactStatus::kOk: break;
      case ExactStatus::kEof: return FrameStatus::kCorrupt;
      case ExactStatus::kTimeout: return FrameStatus::kTimeout;
      case ExactStatus::kError: return FrameStatus::kError;
    }
  }
  if (hm::common::crc32(*payload) != expected_crc) return FrameStatus::kCorrupt;
  return FrameStatus::kOk;
}

std::string encode_request(const EvalRequest& request) {
  std::vector<std::string> fields;
  fields.reserve(4 + request.config.size());
  fields.emplace_back("ev");
  fields.push_back(hm::common::encode_u64(request.nonce));
  fields.push_back(hm::common::encode_u64(request.trace_id));
  fields.push_back(hm::common::encode_u64(request.config.size()));
  for (const double value : request.config) {
    fields.push_back(hm::common::encode_double(value));
  }
  return hm::common::encode_fields(fields);
}

std::optional<EvalRequest> decode_request(std::string_view payload) {
  const auto fields = hm::common::decode_fields(payload);
  if (!fields || fields->size() < 4 || (*fields)[0] != "ev") {
    return std::nullopt;
  }
  const auto nonce = hm::common::decode_u64((*fields)[1]);
  const auto trace_id = hm::common::decode_u64((*fields)[2]);
  const auto count = hm::common::decode_u64((*fields)[3]);
  if (!nonce || !trace_id || !count || fields->size() != 4 + *count) {
    return std::nullopt;
  }
  EvalRequest request;
  request.nonce = *nonce;
  request.trace_id = *trace_id;
  request.config.reserve(*count);
  for (std::size_t i = 0; i < *count; ++i) {
    const auto value = hm::common::decode_double((*fields)[4 + i]);
    if (!value) return std::nullopt;
    request.config.push_back(*value);
  }
  return request;
}

std::string encode_response(const EvalResponse& response) {
  std::vector<std::string> fields;
  if (response.ok) {
    fields.reserve(2 + response.objectives.size() +
                   2 * response.counter_deltas.size() + 2);
    fields.emplace_back("ok");
    fields.push_back(hm::common::encode_u64(response.objectives.size()));
    for (const double value : response.objectives) {
      fields.push_back(hm::common::encode_double(value));
    }
    fields.push_back(hm::common::encode_u64(response.counter_deltas.size()));
    for (const auto& [name, delta] : response.counter_deltas) {
      fields.push_back(name);
      fields.push_back(hm::common::encode_u64(delta));
    }
    fields.push_back(response.span_bundle);
  } else {
    fields.emplace_back("err");
    fields.emplace_back(response.transient ? "1" : "0");
    fields.push_back(response.message);
    fields.push_back(response.span_bundle);
  }
  return hm::common::encode_fields(fields);
}

std::optional<EvalResponse> decode_response(std::string_view payload) {
  const auto fields = hm::common::decode_fields(payload);
  if (!fields || fields->empty()) return std::nullopt;
  EvalResponse response;
  if ((*fields)[0] == "err") {
    if (fields->size() != 4) return std::nullopt;
    if ((*fields)[1] == "1") {
      response.transient = true;
    } else if ((*fields)[1] != "0") {
      return std::nullopt;
    }
    response.message = (*fields)[2];
    response.span_bundle = (*fields)[3];
    response.ok = false;
    return response;
  }
  if ((*fields)[0] != "ok" || fields->size() < 2) return std::nullopt;
  const auto objective_count = hm::common::decode_u64((*fields)[1]);
  if (!objective_count || fields->size() < 2 + *objective_count + 1) {
    return std::nullopt;
  }
  response.objectives.reserve(*objective_count);
  for (std::size_t i = 0; i < *objective_count; ++i) {
    const auto value = hm::common::decode_double((*fields)[2 + i]);
    if (!value) return std::nullopt;
    response.objectives.push_back(*value);
  }
  const std::size_t deltas_at = 2 + *objective_count;
  const auto delta_count = hm::common::decode_u64((*fields)[deltas_at]);
  if (!delta_count ||
      fields->size() != deltas_at + 1 + 2 * *delta_count + 1) {
    return std::nullopt;
  }
  response.counter_deltas.reserve(*delta_count);
  for (std::size_t i = 0; i < *delta_count; ++i) {
    const std::string& name = (*fields)[deltas_at + 1 + 2 * i];
    const auto delta = hm::common::decode_u64((*fields)[deltas_at + 2 + 2 * i]);
    if (!delta) return std::nullopt;
    response.counter_deltas.emplace_back(name, *delta);
  }
  response.span_bundle = fields->back();
  response.ok = true;
  return response;
}

std::string encode_serve_frame(const ServeFrame& frame) {
  std::vector<std::string> fields;
  fields.reserve(5 + frame.fields.size());
  fields.emplace_back("sv");
  fields.push_back(frame.kind);
  fields.push_back(hm::common::encode_u64(frame.trace_id));
  fields.push_back(hm::common::encode_u64(frame.span_id));
  fields.push_back(hm::common::encode_u64(frame.fields.size()));
  for (const std::string& field : frame.fields) fields.push_back(field);
  return hm::common::encode_fields(fields);
}

std::optional<ServeFrame> decode_serve_frame(std::string_view payload) {
  auto fields = hm::common::decode_fields(payload);
  if (!fields || fields->size() < 5 || (*fields)[0] != "sv") {
    return std::nullopt;
  }
  const auto trace_id = hm::common::decode_u64((*fields)[2]);
  const auto span_id = hm::common::decode_u64((*fields)[3]);
  const auto count = hm::common::decode_u64((*fields)[4]);
  if (!trace_id || !span_id || !count || fields->size() != 5 + *count) {
    return std::nullopt;
  }
  ServeFrame frame;
  frame.kind = std::move((*fields)[1]);
  frame.trace_id = *trace_id;
  frame.span_id = *span_id;
  frame.fields.assign(std::make_move_iterator(fields->begin() + 5),
                      std::make_move_iterator(fields->end()));
  return frame;
}

}  // namespace hm::sandbox
