// CART regression tree with variance-reduction splits and random feature
// subsets (the randomized decision trees of Breiman's random forest). Flat
// node storage; prediction is an iterative descent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "rf/matrix.hpp"

namespace hm::rf {

struct TreeConfig {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features tried per split; 0 means ceil(n_features / 3) — the standard
  /// regression-forest default.
  std::size_t max_features = 0;
};

class RegressionTree {
 public:
  /// Fits on the rows of `x` selected by `indices` (with multiplicity, so a
  /// bootstrap sample is just a vector of indices with repeats).
  void fit(const FeatureMatrix& x, std::span<const double> y,
           std::span<const std::size_t> indices, const TreeConfig& config,
           hm::common::Rng& rng);

  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Accumulates, per feature, the total variance reduction contributed by
  /// splits on that feature (impurity-based importance). `out` must have one
  /// slot per feature.
  void accumulate_importance(std::span<double> out) const;

 private:
  struct Node {
    // Leaves have feature == kLeaf. For internal nodes, feature < threshold
    // routes to the left child (always stored at this node's index + 1 in
    // depth-first order); `right` holds the right child's index.
    std::int32_t feature = kLeaf;
    double threshold = 0.0;
    double value = 0.0;       ///< Leaf prediction (mean of targets).
    double gain = 0.0;        ///< Variance reduction achieved by this split.
    std::uint32_t right = 0;  ///< Index of the right child.
    static constexpr std::int32_t kLeaf = -1;
  };

  std::size_t build(const FeatureMatrix& x, std::span<const double> y,
                    std::vector<std::size_t>& indices, std::size_t begin,
                    std::size_t end, std::size_t depth, const TreeConfig& config,
                    hm::common::Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace hm::rf
