#include "rf/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace hm::rf {
namespace {

struct SplitCandidate {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double gain = 0.0;        ///< Total variance reduction (weighted).
  std::size_t left_count = 0;
};

/// Scans sorted (value, target) pairs for the split maximizing variance
/// reduction, honoring the min_samples_leaf constraint.
SplitCandidate best_split_on_feature(std::span<const std::pair<double, double>> sorted,
                                     std::int32_t feature,
                                     std::size_t min_samples_leaf) {
  SplitCandidate best;
  best.feature = feature;
  const std::size_t n = sorted.size();
  if (n < 2 * min_samples_leaf) return best;

  double total_sum = 0.0;
  for (const auto& [value, target] : sorted) total_sum += target;

  double left_sum = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    left_sum += sorted[i].second;
    const std::size_t left_count = i + 1;
    if (left_count < min_samples_leaf) continue;
    if (n - left_count < min_samples_leaf) break;
    if (sorted[i].first == sorted[i + 1].first) continue;  // No boundary here.
    const double right_sum = total_sum - left_sum;
    const auto nl = static_cast<double>(left_count);
    const auto nr = static_cast<double>(n - left_count);
    // Maximizing variance reduction == maximizing sum of per-side
    // (sum^2 / count); the parent term is constant across candidates.
    const double score = left_sum * left_sum / nl + right_sum * right_sum / nr;
    if (score > best.gain) {
      best.gain = score;
      best.threshold = sorted[i].first + (sorted[i + 1].first - sorted[i].first) / 2.0;
      best.left_count = left_count;
    }
  }
  return best;
}

}  // namespace

void RegressionTree::fit(const FeatureMatrix& x, std::span<const double> y,
                         std::span<const std::size_t> indices,
                         const TreeConfig& config, hm::common::Rng& rng) {
  assert(x.rows() == y.size());
  nodes_.clear();
  if (indices.empty()) {
    nodes_.push_back(Node{});  // Single zero-valued leaf.
    return;
  }
  std::vector<std::size_t> working(indices.begin(), indices.end());
  nodes_.reserve(working.size());
  build(x, y, working, 0, working.size(), 0, config, rng);
}

std::size_t RegressionTree::build(const FeatureMatrix& x, std::span<const double> y,
                                  std::vector<std::size_t>& indices,
                                  std::size_t begin, std::size_t end,
                                  std::size_t depth, const TreeConfig& config,
                                  hm::common::Rng& rng) {
  const std::size_t node_index = nodes_.size();
  nodes_.push_back(Node{});

  const std::size_t count = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += y[indices[i]];
  const double node_mean = sum / static_cast<double>(count);
  nodes_[node_index].value = node_mean;

  double sum_sq_dev = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = y[indices[i]] - node_mean;
    sum_sq_dev += d * d;
  }

  const bool stop = depth >= config.max_depth ||
                    count < config.min_samples_split ||
                    sum_sq_dev <= 1e-12 * static_cast<double>(count);
  if (stop) return node_index;

  // Random feature subset without replacement.
  const std::size_t n_features = x.columns();
  std::size_t mtry = config.max_features;
  if (mtry == 0) mtry = (n_features + 2) / 3;
  mtry = std::min(std::max<std::size_t>(1, mtry), n_features);

  std::vector<std::size_t> features(n_features);
  std::iota(features.begin(), features.end(), std::size_t{0});
  for (std::size_t i = 0; i < mtry; ++i) {
    const std::size_t j = i + rng.uniform_index(n_features - i);
    std::swap(features[i], features[j]);
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> sorted;
  sorted.reserve(count);
  // Baseline score of the unsplit node in the same units as the scan score.
  const double parent_score = sum * sum / static_cast<double>(count);
  for (std::size_t f = 0; f < mtry; ++f) {
    const std::size_t feature = features[f];
    sorted.clear();
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(x.at(indices[i], feature), y[indices[i]]);
    }
    std::sort(sorted.begin(), sorted.end());
    SplitCandidate candidate = best_split_on_feature(
        sorted, static_cast<std::int32_t>(feature), config.min_samples_leaf);
    if (candidate.left_count != 0 && candidate.gain > best.gain) best = candidate;
  }

  if (best.left_count == 0 || best.gain <= parent_score + 1e-12) {
    return node_index;  // No useful split found.
  }

  // Partition the index range in place around the chosen threshold.
  const auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return x.at(row, static_cast<std::size_t>(best.feature)) < best.threshold;
      });
  const auto split =
      static_cast<std::size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_index;  // Degenerate.

  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].gain = best.gain - parent_score;

  const std::size_t left = build(x, y, indices, begin, split, depth + 1, config, rng);
  const std::size_t right = build(x, y, indices, split, end, depth + 1, config, rng);
  // `left` always equals node_index + 1 (depth-first), so only the right
  // child index needs storing; we keep `left` and derive right from it.
  assert(left == node_index + 1);
  (void)left;
  nodes_[node_index].right = static_cast<std::uint32_t>(right);
  return node_index;
}

double RegressionTree::predict(std::span<const double> features) const {
  assert(trained());
  std::size_t index = 0;
  for (;;) {
    const Node& node = nodes_[index];
    if (node.feature == Node::kLeaf) return node.value;
    if (features[static_cast<std::size_t>(node.feature)] < node.threshold) {
      index = index + 1;      // Left child is stored immediately after.
    } else {
      index = node.right;
    }
  }
}

std::size_t RegressionTree::leaf_count() const noexcept {
  std::size_t count = 0;
  for (const Node& node : nodes_) count += node.feature == Node::kLeaf ? 1 : 0;
  return count;
}

std::size_t RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit structure.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[index];
    if (node.feature != Node::kLeaf) {
      stack.emplace_back(index + 1, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }
  return max_depth;
}

void RegressionTree::accumulate_importance(std::span<double> out) const {
  for (const Node& node : nodes_) {
    if (node.feature != Node::kLeaf) {
      out[static_cast<std::size_t>(node.feature)] += node.gain;
    }
  }
}

}  // namespace hm::rf
