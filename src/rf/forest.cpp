#include "rf/forest.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hm::rf {

void RandomForest::fit(const FeatureMatrix& x, std::span<const double> y,
                       hm::common::ThreadPool* pool) {
  assert(x.rows() == y.size());
  const std::size_t n = x.rows();
  train_rows_ = n;
  trees_.assign(config_.tree_count, RegressionTree{});
  bootstrap_indices_.assign(config_.tree_count, {});
  if (n == 0) {
    trees_.clear();
    bootstrap_indices_.clear();
    return;
  }

  const std::size_t draws = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                  static_cast<double>(n)));

  // Pre-derive one RNG per tree from the forest seed so results are
  // independent of scheduling order.
  hm::common::Rng seeder(config_.seed);
  std::vector<hm::common::Rng> tree_rngs;
  tree_rngs.reserve(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    tree_rngs.push_back(seeder.fork());
  }

  auto fit_tree = [&](std::size_t t) {
    hm::common::Rng& rng = tree_rngs[t];
    std::vector<std::size_t>& indices = bootstrap_indices_[t];
    indices.resize(draws);
    for (std::size_t i = 0; i < draws; ++i) indices[i] = rng.uniform_index(n);
    trees_[t].fit(x, y, indices, config_.tree, rng);
  };

  if (pool != nullptr) {
    pool->parallel_for(0, config_.tree_count, fit_tree);
  } else {
    for (std::size_t t = 0; t < config_.tree_count; ++t) fit_tree(t);
  }
}

double RandomForest::predict(std::span<const double> features) const {
  assert(trained());
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) sum += tree.predict(features);
  return sum / static_cast<double>(trees_.size());
}

RandomForest::Prediction RandomForest::predict_with_uncertainty(
    std::span<const double> features) const {
  assert(trained());
  double sum = 0.0, sum_sq = 0.0;
  for (const RegressionTree& tree : trees_) {
    const double p = tree.predict(features);
    sum += p;
    sum_sq += p * p;
  }
  const auto count = static_cast<double>(trees_.size());
  Prediction out;
  out.mean = sum / count;
  const double variance = std::max(0.0, sum_sq / count - out.mean * out.mean);
  out.stddev = std::sqrt(variance);
  return out;
}

std::vector<double> RandomForest::predict_batch(
    const FeatureMatrix& x, hm::common::ThreadPool* pool) const {
  assert(trained());
  std::vector<double> out(x.rows(), 0.0);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = predict(x.row(i));
  };
  if (pool != nullptr) {
    pool->parallel_for_chunks(0, x.rows(), body, /*grain=*/256);
  } else {
    body(0, x.rows());
  }
  return out;
}

double RandomForest::oob_rmse(const FeatureMatrix& x, std::span<const double> y,
                              hm::common::ThreadPool* pool) const {
  if (!trained() || x.rows() != train_rows_) return 0.0;
  // For each training row, average predictions of trees that never drew it.
  std::vector<std::vector<bool>> in_bag(trees_.size(),
                                        std::vector<bool>(train_rows_, false));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    for (const std::size_t row : bootstrap_indices_[t]) in_bag[t][row] = true;
  }
  struct Accumulator {
    double sum_sq = 0.0;
    std::size_t counted = 0;
  };
  const Accumulator total = hm::common::parallel_reduce(
      pool, 0, train_rows_, Accumulator{},
      [&](std::size_t row_begin, std::size_t row_end, Accumulator local) {
        for (std::size_t row = row_begin; row < row_end; ++row) {
          double sum = 0.0;
          std::size_t votes = 0;
          for (std::size_t t = 0; t < trees_.size(); ++t) {
            if (!in_bag[t][row]) {
              sum += trees_[t].predict(x.row(row));
              ++votes;
            }
          }
          if (votes == 0) continue;
          const double err = sum / static_cast<double>(votes) - y[row];
          local.sum_sq += err * err;
          ++local.counted;
        }
        return local;
      },
      [](Accumulator a, const Accumulator& b) {
        a.sum_sq += b.sum_sq;
        a.counted += b.counted;
        return a;
      },
      /*grain=*/16);
  if (total.counted == 0) return 0.0;
  return std::sqrt(total.sum_sq / static_cast<double>(total.counted));
}

std::vector<double> RandomForest::feature_importance(
    std::size_t feature_count) const {
  std::vector<double> importance(feature_count, 0.0);
  for (const RegressionTree& tree : trees_) {
    tree.accumulate_importance(importance);
  }
  double total = 0.0;
  for (const double v : importance) total += v;
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace hm::rf
