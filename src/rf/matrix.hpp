// Row-major feature matrix for the regression forest. Rows are samples
// (design-space configurations encoded as numeric features), columns are
// features.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace hm::rf {

class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(std::size_t columns) : columns_(columns) {}
  FeatureMatrix(std::size_t rows, std::size_t columns)
      : columns_(columns), data_(rows * columns, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns_ == 0 ? 0 : data_.size() / columns_;
  }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  void add_row(std::span<const double> row) {
    assert(row.size() == columns_);
    data_.insert(data_.end(), row.begin(), row.end());
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    assert(i < rows());
    return {data_.data() + i * columns_, columns_};
  }
  [[nodiscard]] std::span<double> row(std::size_t i) {
    assert(i < rows());
    return {data_.data() + i * columns_, columns_};
  }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    assert(r < rows() && c < columns_);
    return data_[r * columns_ + c];
  }
  double& at(std::size_t r, std::size_t c) {
    assert(r < rows() && c < columns_);
    return data_[r * columns_ + c];
  }

  void reserve_rows(std::size_t rows) { data_.reserve(rows * columns_); }
  void clear() { data_.clear(); }

 private:
  std::size_t columns_ = 0;
  std::vector<double> data_;
};

}  // namespace hm::rf
