// Bagged random-forest regressor: the surrogate-model substrate of
// HyperMapper (one forest per objective, Algorithm 1 in the paper).
// Fitting and batch prediction parallelize across a ThreadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "rf/matrix.hpp"
#include "rf/tree.hpp"

namespace hm::rf {

struct ForestConfig {
  std::size_t tree_count = 64;
  TreeConfig tree;
  /// Fraction of the training set drawn (with replacement) per tree.
  double bootstrap_fraction = 1.0;
  /// Seed for the forest's private generator; fitting is deterministic for a
  /// fixed seed and config regardless of thread count.
  std::uint64_t seed = 1;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fits `tree_count` trees on bootstrap samples of (x, y). Replaces any
  /// previous model. Thread-safe with respect to other forests.
  void fit(const FeatureMatrix& x, std::span<const double> y,
           hm::common::ThreadPool* pool = nullptr);

  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] const ForestConfig& config() const noexcept { return config_; }

  /// Mean prediction across trees for one feature vector.
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// Mean and across-tree standard deviation (a cheap epistemic-uncertainty
  /// proxy used by the active-learning diagnostics).
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] Prediction predict_with_uncertainty(
      std::span<const double> features) const;

  /// Batch prediction over all rows of `x`, parallelized over `pool`.
  [[nodiscard]] std::vector<double> predict_batch(
      const FeatureMatrix& x, hm::common::ThreadPool* pool = nullptr) const;

  /// Out-of-bag RMSE: each sample predicted only by trees whose bootstrap
  /// excluded it. Returns 0 if the model is untrained or no sample is OOB.
  /// Parallelizes over rows; the reduction is deterministically chunked, so
  /// the result is identical across thread counts.
  [[nodiscard]] double oob_rmse(const FeatureMatrix& x,
                                std::span<const double> y,
                                hm::common::ThreadPool* pool = nullptr) const;

  /// Impurity-based (variance-reduction) feature importance, normalized to
  /// sum to 1 (all-zero if the forest never split).
  [[nodiscard]] std::vector<double> feature_importance(
      std::size_t feature_count) const;

 private:
  ForestConfig config_;
  std::vector<RegressionTree> trees_;
  std::vector<std::vector<std::size_t>> bootstrap_indices_;  ///< Per tree.
  std::size_t train_rows_ = 0;
};

}  // namespace hm::rf
