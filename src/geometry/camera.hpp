// Pinhole camera model shared by the dataset renderer and both SLAM
// pipelines. Conventions: camera looks down +z, x right, y down; pixel (u,v)
// addresses column u, row v; projection uses the pixel-center offset.
#pragma once

#include <cstddef>
#include <optional>

#include "geometry/vec.hpp"

namespace hm::geometry {

struct Intrinsics {
  int width = 0;
  int height = 0;
  double fx = 0.0;
  double fy = 0.0;
  double cx = 0.0;
  double cy = 0.0;

  /// Kinect-like VGA intrinsics scaled to the requested resolution.
  [[nodiscard]] static Intrinsics kinect(int width, int height);

  /// Intrinsics for the same field of view at 1/ratio resolution (KFusion's
  /// "compute size ratio" downsampling).
  [[nodiscard]] Intrinsics scaled(int ratio) const;

  /// Camera-space ray direction through pixel center (u, v), unnormalized
  /// (z component is exactly 1).
  [[nodiscard]] Vec3d ray_direction(int u, int v) const {
    return {(static_cast<double>(u) + 0.5 - cx) / fx,
            (static_cast<double>(v) + 0.5 - cy) / fy, 1.0};
  }

  /// Back-projects pixel (u, v) with depth z (meters) to a camera-space point.
  [[nodiscard]] Vec3d unproject(int u, int v, double z) const {
    return ray_direction(u, v) * z;
  }

  /// Projects a camera-space point to continuous pixel coordinates. Returns
  /// nullopt for points at or behind the camera plane.
  [[nodiscard]] std::optional<Vec2d> project(Vec3d point) const {
    if (point.z <= 1e-9) return std::nullopt;
    return Vec2d{fx * point.x / point.z + cx - 0.5,
                 fy * point.y / point.z + cy - 0.5};
  }

  [[nodiscard]] bool contains(int u, int v) const {
    return u >= 0 && v >= 0 && u < width && v < height;
  }

  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
};

}  // namespace hm::geometry
