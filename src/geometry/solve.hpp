// Dense linear solvers for the small systems arising in pose estimation:
// the 6x6 normal equations of point-to-plane ICP and the 3x3 systems of the
// SO(3) pre-alignment step.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <optional>

namespace hm::geometry {

/// Symmetric positive-definite NxN system solved by Cholesky decomposition.
/// `a` is row-major. Returns nullopt if the matrix is not positive definite
/// (within a small pivot tolerance), which callers treat as a degenerate
/// tracking update.
template <std::size_t N>
[[nodiscard]] std::optional<std::array<double, N>> solve_cholesky(
    std::array<double, N * N> a, std::array<double, N> b) {
  // In-place lower Cholesky factorization A = L L^T.
  for (std::size_t j = 0; j < N; ++j) {
    double diag = a[j * N + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * N + k] * a[j * N + k];
    if (diag <= 1e-300) return std::nullopt;
    const double ljj = std::sqrt(diag);
    a[j * N + j] = ljj;
    for (std::size_t i = j + 1; i < N; ++i) {
      double v = a[i * N + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * N + k] * a[j * N + k];
      a[i * N + j] = v / ljj;
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < N; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * N + k] * b[k];
    b[i] = v / a[i * N + i];
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = N; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < N; ++k) v -= a[k * N + ii] * b[k];
    b[ii] = v / a[ii * N + ii];
  }
  return b;
}

/// Accumulator for Gauss-Newton normal equations J^T J x = J^T r with
/// scalar residuals: add one row (jacobian, residual) at a time, optionally
/// weighted, then solve. Supports merging partial accumulators from worker
/// threads (operator+=), which is how the ICP reduction parallelizes.
template <std::size_t N>
class NormalEquations {
 public:
  void add(const std::array<double, N>& jacobian, double residual,
           double weight = 1.0) {
    for (std::size_t r = 0; r < N; ++r) {
      const double wj = weight * jacobian[r];
      for (std::size_t c = r; c < N; ++c) jtj_[r * N + c] += wj * jacobian[c];
      jtr_[r] += wj * residual;
    }
    error_ += weight * residual * residual;
    ++count_;
  }

  /// Merges externally accumulated sums: row-major upper-triangle of J^T J
  /// (r <= c), J^T r, summed squared error, and the number of rows they
  /// represent. Used by the SIMD ICP reduction, which accumulates lanes in
  /// float vectors and flushes them here once per image row.
  void add_normal_system(const std::array<double, N*(N + 1) / 2>& jtj_upper,
                         const std::array<double, N>& jtr, double error,
                         std::size_t count) {
    std::size_t k = 0;
    for (std::size_t r = 0; r < N; ++r) {
      for (std::size_t c = r; c < N; ++c, ++k) jtj_[r * N + c] += jtj_upper[k];
    }
    for (std::size_t i = 0; i < N; ++i) jtr_[i] += jtr[i];
    error_ += error;
    count_ += count;
  }

  NormalEquations& operator+=(const NormalEquations& other) {
    for (std::size_t i = 0; i < N * N; ++i) jtj_[i] += other.jtj_[i];
    for (std::size_t i = 0; i < N; ++i) jtr_[i] += other.jtr_[i];
    error_ += other.error_;
    count_ += other.count_;
    return *this;
  }

  /// Solves for the update; `damping` adds Levenberg-style lambda*I.
  [[nodiscard]] std::optional<std::array<double, N>> solve(
      double damping = 0.0) const {
    std::array<double, N * N> a = jtj_;
    for (std::size_t r = 0; r < N; ++r) {
      for (std::size_t c = 0; c < r; ++c) a[r * N + c] = a[c * N + r];
      a[r * N + r] += damping;
    }
    return solve_cholesky<N>(a, jtr_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum_squared_error() const noexcept { return error_; }
  [[nodiscard]] double mean_squared_error() const noexcept {
    return count_ == 0 ? 0.0 : error_ / static_cast<double>(count_);
  }

 private:
  std::array<double, N * N> jtj_{};
  std::array<double, N> jtr_{};
  double error_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace hm::geometry
