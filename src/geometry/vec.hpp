// Small fixed-size vector and matrix types used by the SLAM pipelines.
// Value types with constexpr-friendly operations; float is the working
// precision of image/volume kernels, double is used by pose estimation.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace hm::geometry {

template <typename T>
struct Vec2 {
  T x{}, y{};

  constexpr Vec2() = default;
  constexpr Vec2(T x_, T y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(T s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(T s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr T dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] T norm() const { return std::sqrt(dot(*this)); }
};

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr T dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr T squared_norm() const { return dot(*this); }
  [[nodiscard]] T norm() const { return std::sqrt(squared_norm()); }
  [[nodiscard]] Vec3 normalized() const {
    const T n = norm();
    return n > T(0) ? *this / n : Vec3{};
  }
  /// Component-wise product (used for albedo shading and voxel scaling).
  [[nodiscard]] constexpr Vec3 cwise(Vec3 o) const {
    return {x * o.x, y * o.y, z * o.z};
  }
  [[nodiscard]] constexpr T max_component() const {
    return x > y ? (x > z ? x : z) : (y > z ? y : z);
  }
  [[nodiscard]] constexpr T min_component() const {
    return x < y ? (x < z ? x : z) : (y < z ? y : z);
  }
};

template <typename T>
constexpr Vec3<T> operator*(T s, Vec3<T> v) {
  return v * s;
}

template <typename T>
struct Vec4 {
  T x{}, y{}, z{}, w{};

  constexpr Vec4() = default;
  constexpr Vec4(T x_, T y_, T z_, T w_) : x(x_), y(y_), z(z_), w(w_) {}
  constexpr Vec4(Vec3<T> v, T w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

  [[nodiscard]] constexpr Vec3<T> xyz() const { return {x, y, z}; }
  constexpr bool operator==(const Vec4&) const = default;
  [[nodiscard]] constexpr T dot(Vec4 o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
};

/// Row-major 3x3 matrix.
template <typename T>
struct Mat3 {
  std::array<T, 9> m{};  // m[row * 3 + col]

  constexpr T& operator()(std::size_t r, std::size_t c) { return m[r * 3 + c]; }
  constexpr const T& operator()(std::size_t r, std::size_t c) const {
    return m[r * 3 + c];
  }

  static constexpr Mat3 identity() {
    Mat3 out;
    out(0, 0) = out(1, 1) = out(2, 2) = T(1);
    return out;
  }

  constexpr Vec3<T> operator*(Vec3<T> v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  constexpr Mat3 operator*(const Mat3& o) const {
    Mat3 out;
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        T accum{};
        for (std::size_t k = 0; k < 3; ++k) accum += (*this)(r, k) * o(k, c);
        out(r, c) = accum;
      }
    }
    return out;
  }

  constexpr Mat3 operator+(const Mat3& o) const {
    Mat3 out;
    for (std::size_t i = 0; i < 9; ++i) out.m[i] = m[i] + o.m[i];
    return out;
  }

  constexpr Mat3 operator*(T s) const {
    Mat3 out;
    for (std::size_t i = 0; i < 9; ++i) out.m[i] = m[i] * s;
    return out;
  }

  [[nodiscard]] constexpr Mat3 transposed() const {
    Mat3 out;
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }

  [[nodiscard]] constexpr T trace() const { return m[0] + m[4] + m[8]; }
  constexpr bool operator==(const Mat3&) const = default;
};

/// Skew-symmetric (hat) matrix of a 3-vector: hat(w) * v == w x v.
template <typename T>
constexpr Mat3<T> hat(Vec3<T> w) {
  Mat3<T> out;
  out(0, 1) = -w.z; out(0, 2) = w.y;
  out(1, 0) = w.z;  out(1, 2) = -w.x;
  out(2, 0) = -w.y; out(2, 1) = w.x;
  return out;
}

using Vec2f = Vec2<float>;
using Vec2d = Vec2<double>;
using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;
using Vec4f = Vec4<float>;
using Mat3f = Mat3<float>;
using Mat3d = Mat3<double>;

[[nodiscard]] inline Vec3f to_float(Vec3d v) {
  return {static_cast<float>(v.x), static_cast<float>(v.y), static_cast<float>(v.z)};
}
[[nodiscard]] inline Vec3d to_double(Vec3f v) {
  return {static_cast<double>(v.x), static_cast<double>(v.y),
          static_cast<double>(v.z)};
}

}  // namespace hm::geometry
