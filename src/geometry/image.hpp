// 2D image container used for depth maps, intensity images and the scalar
// planes of the SoA vertex/normal maps (geometry/soa.hpp). Value semantics.
//
// Storage is laid out for the SIMD kernels (src/common/simd.hpp):
//   - 64-byte aligned allocation, so row starts sit on cache-line (and
//     vector-register) boundaries;
//   - a padded row pitch (elements per row step, >= width + 16 and a
//     multiple of 16), so an unaligned vector load that starts inside the
//     payload may safely overhang the row end;
//   - a 16-element guard band before row 0, so window kernels (bilateral,
//     radius <= 16) may read `row(v) + u - radius` for u >= 0 without
//     undershooting the allocation.
// Guard and slack elements are value-initialized (T{}) and never written by
// at()/fill(), which keeps out-of-row lanes at the invalid-pixel sentinel.
// Iteration must therefore go through at()/row() — there are deliberately
// no begin()/end(): a flat walk would visit padding.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "geometry/vec.hpp"

namespace hm::geometry {

/// Minimal aligned allocator so std::vector storage lands on `Alignment`.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
class Image {
 public:
  /// Guard elements before row 0 and minimum row slack after each row end;
  /// also the pitch granularity. 16 floats = one cache line on each side.
  static constexpr int kGuard = 16;

  Image() = default;
  Image(int width, int height, T fill = T{})
      : width_(width),
        height_(height),
        pitch_((width + kGuard - 1) / kGuard * kGuard + kGuard),
        data_(static_cast<std::size_t>(kGuard) +
                  static_cast<std::size_t>(pitch_) *
                      static_cast<std::size_t>(height),
              T{}) {
    assert(width >= 0 && height >= 0);
    this->fill(fill);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  /// Elements (not bytes) from one row start to the next.
  [[nodiscard]] int pitch() const noexcept { return pitch_; }
  /// Logical element count (width * height, excluding padding).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] bool contains(int u, int v) const noexcept {
    return u >= 0 && v >= 0 && u < width_ && v < height_;
  }

  [[nodiscard]] T& at(int u, int v) {
    assert(contains(u, v));
    return data_[offset(u, v)];
  }
  [[nodiscard]] const T& at(int u, int v) const {
    assert(contains(u, v));
    return data_[offset(u, v)];
  }

  /// Pointer to the first payload element of row v. Reads may range over
  /// [row(v) - kGuard, row(v) + pitch()); only [row(v), row(v) + width())
  /// may be written.
  [[nodiscard]] T* row(int v) noexcept { return data_.data() + offset(0, v); }
  [[nodiscard]] const T* row(int v) const noexcept {
    return data_.data() + offset(0, v);
  }

  /// Payload start (== row(0)). The layout is PITCHED: element (u, v) lives
  /// at data()[v * pitch() + u], not v * width() + u.
  [[nodiscard]] T* data() noexcept { return row(0); }
  [[nodiscard]] const T* data() const noexcept { return row(0); }

  /// Fills the payload; guard and slack elements stay T{}.
  void fill(T value) {
    for (int v = 0; v < height_; ++v) {
      T* r = row(v);
      std::fill(r, r + width_, value);
    }
  }

 private:
  [[nodiscard]] std::size_t offset(int u, int v) const noexcept {
    return static_cast<std::size_t>(kGuard) +
           static_cast<std::size_t>(v) * static_cast<std::size_t>(pitch_) +
           static_cast<std::size_t>(u);
  }

  int width_ = 0;
  int height_ = 0;
  int pitch_ = 0;
  std::vector<T, AlignedAllocator<T, 64>> data_;
};

using DepthImage = Image<float>;       ///< Meters; <= 0 marks invalid pixels.
using IntensityImage = Image<float>;   ///< Grayscale in [0, 1].

/// Bilinear sample of a scalar image at continuous (u, v); nullopt outside
/// the valid interpolation domain or when any support pixel is invalid
/// (<= invalid_below).
[[nodiscard]] inline std::optional<float> sample_bilinear(
    const Image<float>& image, double u, double v,
    float invalid_below = -1e30f) {
  const int u0 = static_cast<int>(std::floor(u));
  const int v0 = static_cast<int>(std::floor(v));
  if (u0 < 0 || v0 < 0 || u0 + 1 >= image.width() || v0 + 1 >= image.height()) {
    return std::nullopt;
  }
  const float f00 = image.at(u0, v0);
  const float f10 = image.at(u0 + 1, v0);
  const float f01 = image.at(u0, v0 + 1);
  const float f11 = image.at(u0 + 1, v0 + 1);
  if (f00 <= invalid_below || f10 <= invalid_below || f01 <= invalid_below ||
      f11 <= invalid_below) {
    return std::nullopt;
  }
  const float du = static_cast<float>(u - u0);
  const float dv = static_cast<float>(v - v0);
  return (f00 * (1 - du) + f10 * du) * (1 - dv) + (f01 * (1 - du) + f11 * du) * dv;
}

}  // namespace hm::geometry
