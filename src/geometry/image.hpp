// 2D image container used for depth maps, intensity images, vertex maps and
// normal maps. Row-major contiguous storage, value semantics.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "geometry/vec.hpp"

namespace hm::geometry {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(int width, int height, T fill = T{})
      : width_(width), height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
    assert(width >= 0 && height >= 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] bool contains(int u, int v) const noexcept {
    return u >= 0 && v >= 0 && u < width_ && v < height_;
  }

  [[nodiscard]] T& at(int u, int v) {
    assert(contains(u, v));
    return data_[static_cast<std::size_t>(v) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(u)];
  }
  [[nodiscard]] const T& at(int u, int v) const {
    assert(contains(u, v));
    return data_[static_cast<std::size_t>(v) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(u)];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using DepthImage = Image<float>;       ///< Meters; <= 0 marks invalid pixels.
using IntensityImage = Image<float>;   ///< Grayscale in [0, 1].
using VertexMap = Image<Vec3f>;        ///< Camera- or world-space points.
using NormalMap = Image<Vec3f>;        ///< Unit normals; zero marks invalid.

/// Bilinear sample of a scalar image at continuous (u, v); nullopt outside
/// the valid interpolation domain or when any support pixel is invalid
/// (<= invalid_below).
[[nodiscard]] inline std::optional<float> sample_bilinear(
    const Image<float>& image, double u, double v,
    float invalid_below = -1e30f) {
  const int u0 = static_cast<int>(std::floor(u));
  const int v0 = static_cast<int>(std::floor(v));
  if (u0 < 0 || v0 < 0 || u0 + 1 >= image.width() || v0 + 1 >= image.height()) {
    return std::nullopt;
  }
  const float f00 = image.at(u0, v0);
  const float f10 = image.at(u0 + 1, v0);
  const float f01 = image.at(u0, v0 + 1);
  const float f11 = image.at(u0 + 1, v0 + 1);
  if (f00 <= invalid_below || f10 <= invalid_below || f01 <= invalid_below ||
      f11 <= invalid_below) {
    return std::nullopt;
  }
  const float du = static_cast<float>(u - u0);
  const float dv = static_cast<float>(v - v0);
  return (f00 * (1 - du) + f10 * du) * (1 - dv) + (f01 * (1 - du) + f11 * du) * dv;
}

}  // namespace hm::geometry
