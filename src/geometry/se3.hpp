// Rigid-body transforms: SO(3) exponential/logarithm and SE(3) poses.
// Double precision throughout; pose estimation accuracy must not be limited
// by the representation.
#pragma once

#include <array>

#include "geometry/vec.hpp"

namespace hm::geometry {

/// Rodrigues formula: rotation matrix for axis-angle vector `w` (angle is
/// |w| radians about w/|w|). Small angles use the second-order Taylor series.
[[nodiscard]] Mat3d so3_exp(Vec3d w);

/// Logarithm map: axis-angle vector of a rotation matrix. Handles the
/// near-identity and near-pi branches.
[[nodiscard]] Vec3d so3_log(const Mat3d& rotation);

/// SE(3) pose: x_world = rotation * x_local + translation.
struct SE3 {
  Mat3d rotation = Mat3d::identity();
  Vec3d translation{};

  [[nodiscard]] static SE3 identity() { return SE3{}; }

  /// Exponential of a twist (vx, vy, vz, wx, wy, wz): translation part first,
  /// matching the ICP update convention used in KFusion.
  [[nodiscard]] static SE3 exp(const std::array<double, 6>& twist);

  /// Logarithm returning (v, w) with the same ordering as exp().
  [[nodiscard]] std::array<double, 6> log() const;

  [[nodiscard]] Vec3d operator*(Vec3d point) const {
    return rotation * point + translation;
  }

  [[nodiscard]] SE3 operator*(const SE3& other) const {
    return {rotation * other.rotation, rotation * other.translation + translation};
  }

  [[nodiscard]] SE3 inverse() const {
    const Mat3d rt = rotation.transposed();
    return {rt, -(rt * translation)};
  }

  /// Applies only the rotation (for directions / normals).
  [[nodiscard]] Vec3d rotate(Vec3d direction) const { return rotation * direction; }
};

/// Geodesic rotation distance in radians between two poses.
[[nodiscard]] double rotation_angle_between(const SE3& a, const SE3& b);

/// Euclidean distance between the translations of two poses.
[[nodiscard]] double translation_distance(const SE3& a, const SE3& b);

/// Re-orthonormalizes the rotation via Gram-Schmidt; call after long chains
/// of incremental updates to keep the matrix on SO(3).
[[nodiscard]] Mat3d orthonormalized(const Mat3d& rotation);

/// Spherical-linear interpolation between poses (rotation via slerp on the
/// geodesic, translation lerped). t in [0,1].
[[nodiscard]] SE3 interpolate(const SE3& a, const SE3& b, double t);

/// Unit quaternion (w, x, y, z) of a rotation matrix (Shepperd's method);
/// w is kept non-negative to make the representation unique.
[[nodiscard]] std::array<double, 4> rotation_to_quaternion(const Mat3d& rotation);

/// Rotation matrix of a quaternion (w, x, y, z); normalizes internally.
[[nodiscard]] Mat3d quaternion_to_rotation(const std::array<double, 4>& q);

}  // namespace hm::geometry
