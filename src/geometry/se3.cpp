#include "geometry/se3.hpp"

#include <algorithm>
#include <cmath>

namespace hm::geometry {
namespace {
constexpr double kSmallAngle = 1e-10;
}

Mat3d so3_exp(Vec3d w) {
  const double theta2 = w.squared_norm();
  const Mat3d k = hat(w);
  const Mat3d k2 = k * k;
  double a = 0.0, b = 0.0;
  if (theta2 < kSmallAngle) {
    // sin(t)/t ~ 1 - t^2/6, (1-cos(t))/t^2 ~ 1/2 - t^2/24.
    a = 1.0 - theta2 / 6.0;
    b = 0.5 - theta2 / 24.0;
  } else {
    const double theta = std::sqrt(theta2);
    a = std::sin(theta) / theta;
    b = (1.0 - std::cos(theta)) / theta2;
  }
  return Mat3d::identity() + k * a + k2 * b;
}

Vec3d so3_log(const Mat3d& rotation) {
  const double cos_theta = std::clamp((rotation.trace() - 1.0) / 2.0, -1.0, 1.0);
  const double theta = std::acos(cos_theta);
  const Vec3d axis_times_2sin{rotation(2, 1) - rotation(1, 2),
                              rotation(0, 2) - rotation(2, 0),
                              rotation(1, 0) - rotation(0, 1)};
  if (theta < 1e-7) {
    return axis_times_2sin * 0.5;  // sin(t) ~ t.
  }
  if (theta > M_PI - 1e-5) {
    // Near pi the off-diagonal construction degenerates; recover the axis
    // from the diagonal of R = I + 2*sin^2(t/2) * (aa^T - I) ~= 2 aa^T - I.
    Vec3d axis{std::sqrt(std::max(0.0, (rotation(0, 0) + 1.0) / 2.0)),
               std::sqrt(std::max(0.0, (rotation(1, 1) + 1.0) / 2.0)),
               std::sqrt(std::max(0.0, (rotation(2, 2) + 1.0) / 2.0))};
    // Fix signs using the off-diagonal sums, anchored at the largest entry.
    if (axis.x >= axis.y && axis.x >= axis.z) {
      axis.y = std::copysign(axis.y, rotation(0, 1) + rotation(1, 0));
      axis.z = std::copysign(axis.z, rotation(0, 2) + rotation(2, 0));
    } else if (axis.y >= axis.z) {
      axis.x = std::copysign(axis.x, rotation(0, 1) + rotation(1, 0));
      axis.z = std::copysign(axis.z, rotation(1, 2) + rotation(2, 1));
    } else {
      axis.x = std::copysign(axis.x, rotation(0, 2) + rotation(2, 0));
      axis.y = std::copysign(axis.y, rotation(1, 2) + rotation(2, 1));
    }
    return axis.normalized() * theta;
  }
  return axis_times_2sin * (theta / (2.0 * std::sin(theta)));
}

SE3 SE3::exp(const std::array<double, 6>& twist) {
  const Vec3d v{twist[0], twist[1], twist[2]};
  const Vec3d w{twist[3], twist[4], twist[5]};
  const double theta2 = w.squared_norm();
  const Mat3d k = hat(w);
  const Mat3d k2 = k * k;
  // V = I + (1-cos t)/t^2 K + (t - sin t)/t^3 K^2 maps v to the translation.
  double b = 0.0, c = 0.0;
  if (theta2 < kSmallAngle) {
    b = 0.5 - theta2 / 24.0;
    c = 1.0 / 6.0 - theta2 / 120.0;
  } else {
    const double theta = std::sqrt(theta2);
    b = (1.0 - std::cos(theta)) / theta2;
    c = (theta - std::sin(theta)) / (theta2 * theta);
  }
  const Mat3d v_matrix = Mat3d::identity() + k * b + k2 * c;
  return {so3_exp(w), v_matrix * v};
}

std::array<double, 6> SE3::log() const {
  const Vec3d w = so3_log(rotation);
  const double theta2 = w.squared_norm();
  const Mat3d k = hat(w);
  const Mat3d k2 = k * k;
  // V^{-1} = I - K/2 + (1/t^2 - (1+cos t)/(2 t sin t)) K^2.
  double c = 0.0;
  if (theta2 < kSmallAngle) {
    c = 1.0 / 12.0 + theta2 / 720.0;
  } else {
    const double theta = std::sqrt(theta2);
    c = 1.0 / theta2 -
        (1.0 + std::cos(theta)) / (2.0 * theta * std::sin(theta));
  }
  const Mat3d v_inv = Mat3d::identity() + k * -0.5 + k2 * c;
  const Vec3d v = v_inv * translation;
  return {v.x, v.y, v.z, w.x, w.y, w.z};
}

double rotation_angle_between(const SE3& a, const SE3& b) {
  return so3_log(a.rotation.transposed() * b.rotation).norm();
}

double translation_distance(const SE3& a, const SE3& b) {
  return (a.translation - b.translation).norm();
}

Mat3d orthonormalized(const Mat3d& rotation) {
  Vec3d r0{rotation(0, 0), rotation(0, 1), rotation(0, 2)};
  Vec3d r1{rotation(1, 0), rotation(1, 1), rotation(1, 2)};
  r0 = r0.normalized();
  r1 = (r1 - r0 * r0.dot(r1)).normalized();
  const Vec3d r2 = r0.cross(r1);
  Mat3d out;
  out(0, 0) = r0.x; out(0, 1) = r0.y; out(0, 2) = r0.z;
  out(1, 0) = r1.x; out(1, 1) = r1.y; out(1, 2) = r1.z;
  out(2, 0) = r2.x; out(2, 1) = r2.y; out(2, 2) = r2.z;
  return out;
}

std::array<double, 4> rotation_to_quaternion(const Mat3d& r) {
  // Shepperd's method: pick the largest of the four squared components to
  // avoid cancellation.
  std::array<double, 4> q{};
  const double trace = r.trace();
  if (trace > 0.0) {
    const double s = std::sqrt(trace + 1.0) * 2.0;  // 4 w.
    q[0] = 0.25 * s;
    q[1] = (r(2, 1) - r(1, 2)) / s;
    q[2] = (r(0, 2) - r(2, 0)) / s;
    q[3] = (r(1, 0) - r(0, 1)) / s;
  } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;  // 4 x.
    q[0] = (r(2, 1) - r(1, 2)) / s;
    q[1] = 0.25 * s;
    q[2] = (r(0, 1) + r(1, 0)) / s;
    q[3] = (r(0, 2) + r(2, 0)) / s;
  } else if (r(1, 1) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;  // 4 y.
    q[0] = (r(0, 2) - r(2, 0)) / s;
    q[1] = (r(0, 1) + r(1, 0)) / s;
    q[2] = 0.25 * s;
    q[3] = (r(1, 2) + r(2, 1)) / s;
  } else {
    const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;  // 4 z.
    q[0] = (r(1, 0) - r(0, 1)) / s;
    q[1] = (r(0, 2) + r(2, 0)) / s;
    q[2] = (r(1, 2) + r(2, 1)) / s;
    q[3] = 0.25 * s;
  }
  if (q[0] < 0.0) {
    for (double& component : q) component = -component;
  }
  return q;
}

Mat3d quaternion_to_rotation(const std::array<double, 4>& quaternion) {
  const double norm =
      std::sqrt(quaternion[0] * quaternion[0] + quaternion[1] * quaternion[1] +
                quaternion[2] * quaternion[2] + quaternion[3] * quaternion[3]);
  if (norm < 1e-300) return Mat3d::identity();
  const double w = quaternion[0] / norm, x = quaternion[1] / norm,
               y = quaternion[2] / norm, z = quaternion[3] / norm;
  Mat3d m;
  m(0, 0) = 1 - 2 * (y * y + z * z);
  m(0, 1) = 2 * (x * y - w * z);
  m(0, 2) = 2 * (x * z + w * y);
  m(1, 0) = 2 * (x * y + w * z);
  m(1, 1) = 1 - 2 * (x * x + z * z);
  m(1, 2) = 2 * (y * z - w * x);
  m(2, 0) = 2 * (x * z - w * y);
  m(2, 1) = 2 * (y * z + w * x);
  m(2, 2) = 1 - 2 * (x * x + y * y);
  return m;
}

SE3 interpolate(const SE3& a, const SE3& b, double t) {
  const Vec3d w = so3_log(a.rotation.transposed() * b.rotation);
  SE3 out;
  out.rotation = a.rotation * so3_exp(w * t);
  out.translation = a.translation * (1.0 - t) + b.translation * t;
  return out;
}

}  // namespace hm::geometry
