// Structure-of-arrays Vec3f maps: three aligned, pitched float planes
// (geometry/image.hpp) instead of one interleaved Image<Vec3f>. This is the
// layout the SIMD kernels want — loading eight consecutive pixels' x
// components is one contiguous vector load per plane, and the reference-map
// gathers in the ICP reduction index a single float plane per component.
//
// The zero vector stays the invalid-pixel sentinel, exactly as it was for
// Image<Vec3f>: at(u, v) == Vec3f{} means "no data here".
#pragma once

#include <cassert>
#include <cstddef>

#include "geometry/image.hpp"
#include "geometry/vec.hpp"

namespace hm::geometry {

class SoaVec3Map {
 public:
  SoaVec3Map() = default;
  SoaVec3Map(int width, int height, Vec3f fill = Vec3f{})
      : x_(width, height, fill.x),
        y_(width, height, fill.y),
        z_(width, height, fill.z) {}

  [[nodiscard]] int width() const noexcept { return x_.width(); }
  [[nodiscard]] int height() const noexcept { return x_.height(); }
  [[nodiscard]] int pitch() const noexcept { return x_.pitch(); }
  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] bool empty() const noexcept { return x_.empty(); }
  [[nodiscard]] bool contains(int u, int v) const noexcept {
    return x_.contains(u, v);
  }

  /// Gathers one pixel into an AoS value (by value — there is no Vec3f in
  /// memory to reference). Write through set().
  [[nodiscard]] Vec3f at(int u, int v) const {
    return {x_.at(u, v), y_.at(u, v), z_.at(u, v)};
  }
  void set(int u, int v, Vec3f value) {
    x_.at(u, v) = value.x;
    y_.at(u, v) = value.y;
    z_.at(u, v) = value.z;
  }

  /// Component planes for kernels that load/gather lanes directly.
  [[nodiscard]] Image<float>& x() noexcept { return x_; }
  [[nodiscard]] Image<float>& y() noexcept { return y_; }
  [[nodiscard]] Image<float>& z() noexcept { return z_; }
  [[nodiscard]] const Image<float>& x() const noexcept { return x_; }
  [[nodiscard]] const Image<float>& y() const noexcept { return y_; }
  [[nodiscard]] const Image<float>& z() const noexcept { return z_; }

  void fill(Vec3f value) {
    x_.fill(value.x);
    y_.fill(value.y);
    z_.fill(value.z);
  }

 private:
  Image<float> x_;
  Image<float> y_;
  Image<float> z_;
};

using VertexMap = SoaVec3Map;  ///< Camera- or world-space points.
using NormalMap = SoaVec3Map;  ///< Unit normals; zero marks invalid.

}  // namespace hm::geometry
