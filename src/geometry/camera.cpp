#include "geometry/camera.hpp"

namespace hm::geometry {

Intrinsics Intrinsics::kinect(int width, int height) {
  // Reference Kinect VGA calibration (ICL-NUIM uses 481.2/480 at 640x480);
  // scale focal lengths and principal point with resolution.
  const double sx = static_cast<double>(width) / 640.0;
  const double sy = static_cast<double>(height) / 480.0;
  Intrinsics k;
  k.width = width;
  k.height = height;
  k.fx = 481.2 * sx;
  k.fy = 480.0 * sy;
  k.cx = 319.5 * sx;
  k.cy = 239.5 * sy;
  return k;
}

Intrinsics Intrinsics::scaled(int ratio) const {
  Intrinsics out = *this;
  if (ratio <= 1) return out;
  const double inv = 1.0 / static_cast<double>(ratio);
  out.width = width / ratio;
  out.height = height / ratio;
  out.fx = fx * inv;
  out.fy = fy * inv;
  out.cx = cx * inv;
  out.cy = cy * inv;
  return out;
}

}  // namespace hm::geometry
