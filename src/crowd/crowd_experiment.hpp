// The crowd-sourcing experiment (paper, Section IV-D / Fig. 5): run a tuned
// configuration and the default configuration on every device of the
// population and report the per-device speedup. The app ran only 100 frames
// on each phone; the harness mirrors that.
#pragma once

#include <string>
#include <vector>

#include "crowd/device_population.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::crowd {

struct DeviceSpeedup {
  std::string device_name;
  double default_fps = 0.0;
  double tuned_fps = 0.0;
  double speedup = 0.0;  ///< default runtime / tuned runtime.
};

struct CrowdResult {
  std::vector<DeviceSpeedup> devices;
  double min_speedup = 0.0;
  double max_speedup = 0.0;
  double median_speedup = 0.0;
  double mean_speedup = 0.0;
};

/// Computes per-device speedups from the measured kernel work of the two
/// configurations (device-independent counts -> per-device runtimes).
[[nodiscard]] CrowdResult run_crowd_experiment(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames);

/// ASCII histogram of the speedups (one row per bucket), mirroring Fig. 5.
[[nodiscard]] std::string speedup_histogram(const CrowdResult& result,
                                            double bucket_width = 1.0);

}  // namespace hm::crowd
