// The crowd-sourcing experiment (paper, Section IV-D / Fig. 5): run a tuned
// configuration and the default configuration on every device of the
// population and report the per-device speedup. The app ran only 100 frames
// on each phone; the harness mirrors that — including the in-the-wild
// funnel (~2000 installs but only 83 usable result sets): the flaky-device
// model drops devices that never report and perturbs the measurements of
// unreliable ones, and the aggregates are robust to both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "crowd/device_population.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::crowd {

struct DeviceSpeedup {
  std::string device_name;
  double default_fps = 0.0;
  double tuned_fps = 0.0;
  double speedup = 0.0;  ///< default runtime / tuned runtime.
  bool noisy = false;    ///< Measurements carried injected noise.
};

/// In-the-wild failure model for the device population. Deterministic for a
/// fixed seed: the same devices drop out and the same devices report noisy
/// measurements on every run.
struct FlakyDeviceModel {
  /// Probability a device never reports a usable result (app crash, killed
  /// in background, upload failure). Dropped devices are counted, not used.
  double dropout_rate = 0.0;
  /// Probability a reporting device's measurements are noisy (thermal
  /// throttling, background load).
  double noisy_rate = 0.0;
  /// Log-normal sigma applied independently to the default and tuned
  /// runtimes of a noisy device.
  double noise_sigma = 0.25;
  /// Per-tail trim fraction of the robust (trimmed-mean) aggregate.
  double trim_fraction = 0.10;
  std::uint64_t seed = 2000;  ///< As many installs as the paper reports.
};

struct CrowdResult {
  std::vector<DeviceSpeedup> devices;  ///< Usable devices only.
  double min_speedup = 0.0;
  double max_speedup = 0.0;
  double median_speedup = 0.0;
  double mean_speedup = 0.0;
  /// Robust aggregate: trimmed mean over usable devices (noisy included).
  double trimmed_mean_speedup = 0.0;
  std::size_t usable_devices = 0;
  std::size_t dropped_devices = 0;  ///< Never reported (flaky dropout).
  std::size_t noisy_devices = 0;    ///< Reported with injected noise.
  /// True when a journaled campaign stopped at a device boundary because
  /// its cancel probe fired (SIGINT/SIGTERM). The journal holds every
  /// measured device; rerunning with the same path resumes to the
  /// byte-identical complete result.
  bool interrupted = false;
};

/// Computes per-device speedups from the measured kernel work of the two
/// configurations (device-independent counts -> per-device runtimes),
/// subjecting each device to the flaky-device model first.
[[nodiscard]] CrowdResult run_crowd_experiment(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames,
    const FlakyDeviceModel& flaky = {});

/// ASCII histogram of the speedups (one row per bucket), mirroring Fig. 5.
[[nodiscard]] std::string speedup_histogram(const CrowdResult& result,
                                            double bucket_width = 1.0);

/// Bookkeeping from a journaled campaign run.
struct CrowdJournalInfo {
  std::size_t replayed_devices = 0;  ///< Restored from the journal.
  std::size_t measured_devices = 0;  ///< Measured (and journaled) this run.
  std::size_t journal_defects = 0;   ///< Damaged/undecodable records skipped.
};

/// Journaled variant of run_crowd_experiment: every per-device outcome is
/// appended durably to the write-ahead log at `journal_path` as it
/// completes, so a campaign killed mid-population resumes from the next
/// unmeasured device instead of re-running the fleet. A fresh path starts
/// a new campaign; an existing journal is replayed first (its fingerprint
/// must match the requested campaign, or the call refuses and sets
/// `error`). The result is byte-identical to an uninterrupted
/// run_crowd_experiment with the same inputs: replay burns the same RNG
/// draws the original devices consumed, and measured values round-trip
/// through the journal bit-exactly.
///
/// `cancel` is the cooperative shutdown probe (typically
/// common::shutdown_requested), polled between devices: when it fires the
/// campaign stops cleanly at the boundary and returns the partial result
/// with `interrupted == true` — callers exit 130, the repo-wide
/// cooperative-shutdown code.
[[nodiscard]] std::optional<CrowdResult> run_crowd_experiment_journaled(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames,
    const FlakyDeviceModel& flaky, const std::string& journal_path,
    CrowdJournalInfo* info = nullptr, std::string* error = nullptr,
    const std::function<bool()>& cancel = {});

}  // namespace hm::crowd
