// The crowd-sourcing substrate: a deterministic population of 83 synthetic
// mobile devices standing in for the 83 phones/tablets that ran the
// SLAMBench Android app (paper, Section IV-D). Devices are drawn from three
// ARM-SoC-like families (low/mid/high tier) with log-normal spread on the
// per-kernel coefficients, so a fixed configuration pair produces a
// distribution of speedups, as in Fig. 5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "slambench/device.hpp"

namespace hm::crowd {

struct PopulationConfig {
  std::size_t device_count = 83;  ///< As crowd-sourced in the paper.
  std::uint64_t seed = 2017;
  /// Log-normal sigma of per-kernel coefficient spread within a family.
  double kernel_spread = 0.25;
  /// Log-normal sigma of the device-wide speed factor.
  double device_spread = 0.35;
};

/// Generates the device population. Deterministic for a fixed config.
[[nodiscard]] std::vector<hm::slambench::DeviceModel> generate_population(
    const PopulationConfig& config = {});

}  // namespace hm::crowd
