#include "crowd/device_population.hpp"

#include <cmath>
#include <string>

#include "common/rng.hpp"

namespace hm::crowd {

using hm::slambench::DeviceModel;

namespace {

struct Family {
  const char* name;
  double weight;         ///< Sampling probability.
  double speed_factor;   ///< Multiplier on the ODROID-class baseline.
  double overhead;       ///< Per-frame fixed cost (s).
};

/// Market mix circa 2016: many mid-tier phones, a tail of slow tablets and
/// a few flagship SoCs.
constexpr Family kFamilies[] = {
    {"low-tier", 0.30, 1.9, 0.040},
    {"mid-tier", 0.50, 1.0, 0.025},
    {"flagship", 0.20, 0.45, 0.012},
};

}  // namespace

std::vector<DeviceModel> generate_population(const PopulationConfig& config) {
  hm::common::Rng rng(config.seed);
  std::vector<DeviceModel> devices;
  devices.reserve(config.device_count);

  const DeviceModel baseline = hm::slambench::odroid_xu3();
  for (std::size_t i = 0; i < config.device_count; ++i) {
    const double pick = rng.uniform();
    const Family* family = &kFamilies[0];
    double accumulated = 0.0;
    for (const Family& candidate : kFamilies) {
      accumulated += candidate.weight;
      if (pick < accumulated) {
        family = &candidate;
        break;
      }
    }

    DeviceModel device = baseline;
    device.name = std::string(family->name) + "-" + std::to_string(i);
    const double device_factor =
        family->speed_factor * std::exp(rng.normal(0.0, config.device_spread));
    for (double& coefficient : device.ns_per_op) {
      // Per-kernel spread models architectural differences (bandwidth vs.
      // ALU vs. divergence costs differ across GPUs).
      coefficient *=
          device_factor * std::exp(rng.normal(0.0, config.kernel_spread));
    }
    // A slow SoC is slow at everything: the fixed per-frame cost (driver,
    // transfers, launches) tracks the device speed, sublinearly. This is
    // what keeps the crowd speedup distribution in the paper's 2x-12x band
    // rather than degenerating to the raw work ratio.
    device.frame_overhead = family->overhead * std::pow(device_factor, 0.85) *
                            std::exp(rng.normal(0.0, 0.2));
    devices.push_back(std::move(device));
  }
  return devices;
}

}  // namespace hm::crowd
