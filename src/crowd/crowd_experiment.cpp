#include "crowd/crowd_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/checkpoint.hpp"
#include "common/journal.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hm::crowd {

namespace {

/// What happened to one device of the population.
enum class DeviceOutcome : std::uint64_t {
  kDropped = 0,   ///< Never reported (flaky dropout).
  kUsable = 1,    ///< Reported a usable measurement.
  kUnusable = 2,  ///< Reported, but with non-positive runtimes.
};

/// One device's reliability draw. The draw order (dropout, noisy, then the
/// two noise factors when noisy) is part of the campaign's determinism
/// contract: replay reproduces it exactly from the journaled flags.
struct ReliabilityDraw {
  bool dropped = false;
  bool noisy = false;
  double default_noise = 1.0;
  double tuned_noise = 1.0;
};

ReliabilityDraw draw_reliability(hm::common::Rng& rng,
                                 const FlakyDeviceModel& flaky) {
  ReliabilityDraw draw;
  draw.dropped = rng.bernoulli(flaky.dropout_rate);
  draw.noisy = rng.bernoulli(flaky.noisy_rate);
  if (draw.noisy) {
    draw.default_noise = std::exp(rng.normal(0.0, flaky.noise_sigma));
    draw.tuned_noise = std::exp(rng.normal(0.0, flaky.noise_sigma));
  }
  return draw;
}

/// Consumes exactly the draws the original pass consumed for a device with
/// the journaled `noisy` flag, re-aligning the generator during replay.
void burn_reliability(hm::common::Rng& rng, bool noisy,
                      const FlakyDeviceModel& flaky) {
  (void)rng.bernoulli(flaky.dropout_rate);
  (void)rng.bernoulli(flaky.noisy_rate);
  if (noisy) {
    (void)rng.normal(0.0, flaky.noise_sigma);
    (void)rng.normal(0.0, flaky.noise_sigma);
  }
}

DeviceOutcome measure_device(const hm::slambench::DeviceModel& device,
                             const hm::kfusion::KernelStats& default_stats,
                             const hm::kfusion::KernelStats& tuned_stats,
                             std::size_t frames, const ReliabilityDraw& draw,
                             DeviceSpeedup* entry) {
  // The noisy flag is set even for dropped/unusable devices: the campaign
  // journal records it so replay can burn exactly the RNG draws this
  // device consumed (a noisy device consumed two extra normals regardless
  // of whether its measurement was ultimately usable).
  entry->noisy = draw.noisy;
  if (draw.dropped) return DeviceOutcome::kDropped;
  const double default_seconds =
      device.seconds(default_stats, frames) * draw.default_noise;
  const double tuned_seconds =
      device.seconds(tuned_stats, frames) * draw.tuned_noise;
  if (default_seconds <= 0.0 || tuned_seconds <= 0.0) {
    return DeviceOutcome::kUnusable;
  }
  entry->device_name = device.name;
  entry->default_fps = static_cast<double>(frames) / default_seconds;
  entry->tuned_fps = static_cast<double>(frames) / tuned_seconds;
  entry->speedup = default_seconds / tuned_seconds;
  return DeviceOutcome::kUsable;
}

/// Folds one device outcome into the accumulating result.
void apply_outcome(DeviceOutcome outcome, DeviceSpeedup entry,
                   CrowdResult* result, std::vector<double>* speedups) {
  switch (outcome) {
    case DeviceOutcome::kDropped:
      ++result->dropped_devices;
      break;
    case DeviceOutcome::kUnusable:
      break;
    case DeviceOutcome::kUsable:
      result->noisy_devices += entry.noisy ? 1 : 0;
      speedups->push_back(entry.speedup);
      result->devices.push_back(std::move(entry));
      break;
  }
}

void finalize_result(CrowdResult* result, const std::vector<double>& speedups,
                     double trim_fraction) {
  result->usable_devices = result->devices.size();
  if (speedups.empty()) return;
  const auto summary = hm::common::summarize(speedups);
  result->min_speedup = summary.min;
  result->max_speedup = summary.max;
  result->median_speedup = summary.median;
  result->mean_speedup = summary.mean;
  result->trimmed_mean_speedup =
      hm::common::trimmed_mean(speedups, trim_fraction);
}

// --- Campaign journal schema. Record types: "crowd" (campaign
// --- fingerprint), "dev" (one device outcome), "done" (campaign
// --- complete). All doubles are bit-exact (checkpoint.hpp codecs).

std::string encode_campaign(std::size_t device_count, std::size_t frames,
                            const FlakyDeviceModel& flaky) {
  using hm::common::encode_double;
  using hm::common::encode_u64;
  return hm::common::encode_fields(
      {encode_u64(device_count), encode_u64(frames), encode_u64(flaky.seed),
       encode_double(flaky.dropout_rate), encode_double(flaky.noisy_rate),
       encode_double(flaky.noise_sigma), encode_double(flaky.trim_fraction)});
}

struct DecodedDevice {
  std::uint64_t index = 0;
  DeviceOutcome outcome = DeviceOutcome::kUnusable;
  DeviceSpeedup entry;
};

std::string encode_device(std::uint64_t index, DeviceOutcome outcome,
                          const DeviceSpeedup& entry) {
  using hm::common::encode_double;
  using hm::common::encode_u64;
  return hm::common::encode_fields(
      {encode_u64(index), encode_u64(static_cast<std::uint64_t>(outcome)),
       encode_u64(entry.noisy ? 1 : 0), entry.device_name,
       encode_double(entry.default_fps), encode_double(entry.tuned_fps),
       encode_double(entry.speedup)});
}

std::optional<DecodedDevice> decode_device(const std::string& payload) {
  const auto fields = hm::common::decode_fields(payload);
  if (!fields || fields->size() != 7) return std::nullopt;
  DecodedDevice decoded;
  const auto index = hm::common::decode_u64((*fields)[0]);
  const auto outcome = hm::common::decode_u64((*fields)[1]);
  const auto noisy = hm::common::decode_u64((*fields)[2]);
  const auto default_fps = hm::common::decode_double((*fields)[4]);
  const auto tuned_fps = hm::common::decode_double((*fields)[5]);
  const auto speedup = hm::common::decode_double((*fields)[6]);
  if (!index || !outcome || *outcome > 2 || !noisy || *noisy > 1 ||
      !default_fps || !tuned_fps || !speedup) {
    return std::nullopt;
  }
  decoded.index = *index;
  decoded.outcome = static_cast<DeviceOutcome>(*outcome);
  decoded.entry.device_name = (*fields)[3];
  decoded.entry.noisy = *noisy == 1;
  decoded.entry.default_fps = *default_fps;
  decoded.entry.tuned_fps = *tuned_fps;
  decoded.entry.speedup = *speedup;
  return decoded;
}

}  // namespace

CrowdResult run_crowd_experiment(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames,
    const FlakyDeviceModel& flaky) {
  CrowdResult result;
  result.devices.reserve(devices.size());
  std::vector<double> speedups;
  speedups.reserve(devices.size());

  // One reliability draw sequence over the device list: deterministic for a
  // fixed (population, seed) pair, so reruns reproduce the same funnel.
  hm::common::Rng rng(flaky.seed);
  for (const auto& device : devices) {
    const ReliabilityDraw draw = draw_reliability(rng, flaky);
    DeviceSpeedup entry;
    const DeviceOutcome outcome =
        measure_device(device, default_stats, tuned_stats, frames, draw, &entry);
    apply_outcome(outcome, std::move(entry), &result, &speedups);
  }
  finalize_result(&result, speedups, flaky.trim_fraction);
  return result;
}

std::optional<CrowdResult> run_crowd_experiment_journaled(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames,
    const FlakyDeviceModel& flaky, const std::string& journal_path,
    CrowdJournalInfo* info, std::string* error,
    const std::function<bool()>& cancel) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  const hm::common::JournalReadResult parsed =
      hm::common::read_journal(journal_path);
  if (parsed.status == hm::common::JournalStatus::kBadMagic ||
      parsed.status == hm::common::JournalStatus::kVersionMismatch) {
    // Not a journal we can append to: refusing beats clobbering it.
    return fail(std::string(journal_path) + " is not a usable campaign journal: " +
                hm::common::to_string(parsed.status));
  }

  CrowdJournalInfo local;
  local.journal_defects = parsed.defects.size();
  CrowdResult result;
  std::vector<double> speedups;
  speedups.reserve(devices.size());
  hm::common::Rng rng(flaky.seed);
  const std::string campaign = encode_campaign(devices.size(), frames, flaky);
  std::size_t next_index = 0;
  bool have_campaign_record = false;
  bool done = false;

  if (parsed.usable() && !parsed.records.empty()) {
    if (parsed.records.front().type != "crowd") {
      return fail("campaign journal does not start with a campaign record");
    }
    if (parsed.records.front().payload != campaign) {
      return fail("campaign journal was written for a different campaign "
                  "(device population, frame count, or flaky model differ)");
    }
    have_campaign_record = true;
    for (std::size_t i = 1; i < parsed.records.size(); ++i) {
      const hm::common::JournalRecord& record = parsed.records[i];
      if (record.type == "done") {
        done = true;
        continue;
      }
      if (record.type != "dev") {
        ++local.journal_defects;
        continue;
      }
      const auto decoded = decode_device(record.payload);
      if (!decoded) {
        ++local.journal_defects;
        continue;
      }
      if (decoded->index < next_index) continue;  // Duplicate from a resume.
      if (decoded->index > next_index) {
        // A gap means a device record was lost to corruption: everything
        // from the gap on must be re-measured (the RNG cannot be
        // re-aligned past an unknown outcome).
        local.journal_defects += parsed.records.size() - i;
        break;
      }
      burn_reliability(rng, decoded->entry.noisy, flaky);
      apply_outcome(decoded->outcome, decoded->entry, &result, &speedups);
      ++next_index;
      ++local.replayed_devices;
    }
  }

  if (done && next_index == devices.size()) {
    finalize_result(&result, speedups, flaky.trim_fraction);
    if (info != nullptr) *info = local;
    return result;
  }

  hm::common::JournalWriter writer;
  std::string io_error;
  if (!writer.open(journal_path, &io_error)) {
    return fail("cannot open campaign journal: " + io_error);
  }
  if (!have_campaign_record && !writer.append("crowd", campaign)) {
    return fail("cannot journal the campaign fingerprint");
  }
  for (std::size_t i = next_index; i < devices.size(); ++i) {
    if (cancel && cancel()) {
      // Device boundary: every measured device is already durable, and no
      // "done" record is written, so a rerun resumes from device i.
      result.interrupted = true;
      finalize_result(&result, speedups, flaky.trim_fraction);
      if (info != nullptr) *info = local;
      return result;
    }
    const ReliabilityDraw draw = draw_reliability(rng, flaky);
    DeviceSpeedup entry;
    const DeviceOutcome outcome = measure_device(
        devices[i], default_stats, tuned_stats, frames, draw, &entry);
    if (!writer.append("dev", encode_device(i, outcome, entry))) {
      return fail("cannot journal device " + devices[i].name);
    }
    apply_outcome(outcome, std::move(entry), &result, &speedups);
    ++local.measured_devices;
  }
  if (!writer.append("done", "")) {
    return fail("cannot journal campaign completion");
  }
  finalize_result(&result, speedups, flaky.trim_fraction);
  if (info != nullptr) *info = local;
  return result;
}

std::string speedup_histogram(const CrowdResult& result, double bucket_width) {
  if (result.devices.empty() || bucket_width <= 0.0) return {};
  const auto bucket_of = [&](double speedup) {
    return static_cast<std::size_t>(std::floor(speedup / bucket_width));
  };
  std::size_t max_bucket = 0;
  for (const auto& device : result.devices) {
    max_bucket = std::max(max_bucket, bucket_of(device.speedup));
  }
  std::vector<std::size_t> counts(max_bucket + 1, 0);
  for (const auto& device : result.devices) ++counts[bucket_of(device.speedup)];

  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0 && b * bucket_width < result.min_speedup) continue;
    const int written = std::snprintf(
        line, sizeof(line), "%5.1fx-%5.1fx | %-3zu ",
        static_cast<double>(b) * bucket_width,
        static_cast<double>(b + 1) * bucket_width, counts[b]);
    out.append(line, static_cast<std::size_t>(written));
    out.append(std::min<std::size_t>(counts[b], 100), '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace hm::crowd
