#include "crowd/crowd_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hm::crowd {

CrowdResult run_crowd_experiment(
    const std::vector<hm::slambench::DeviceModel>& devices,
    const hm::kfusion::KernelStats& default_stats,
    const hm::kfusion::KernelStats& tuned_stats, std::size_t frames,
    const FlakyDeviceModel& flaky) {
  CrowdResult result;
  result.devices.reserve(devices.size());
  std::vector<double> speedups;
  speedups.reserve(devices.size());

  // One reliability draw sequence over the device list: deterministic for a
  // fixed (population, seed) pair, so reruns reproduce the same funnel.
  hm::common::Rng rng(flaky.seed);
  for (const auto& device : devices) {
    const bool dropped = rng.bernoulli(flaky.dropout_rate);
    const bool noisy = rng.bernoulli(flaky.noisy_rate);
    const double default_noise =
        noisy ? std::exp(rng.normal(0.0, flaky.noise_sigma)) : 1.0;
    const double tuned_noise =
        noisy ? std::exp(rng.normal(0.0, flaky.noise_sigma)) : 1.0;
    if (dropped) {
      ++result.dropped_devices;
      continue;
    }
    DeviceSpeedup entry;
    entry.device_name = device.name;
    entry.noisy = noisy;
    const double default_seconds =
        device.seconds(default_stats, frames) * default_noise;
    const double tuned_seconds =
        device.seconds(tuned_stats, frames) * tuned_noise;
    if (default_seconds <= 0.0 || tuned_seconds <= 0.0) continue;
    entry.default_fps = static_cast<double>(frames) / default_seconds;
    entry.tuned_fps = static_cast<double>(frames) / tuned_seconds;
    entry.speedup = default_seconds / tuned_seconds;
    result.noisy_devices += noisy ? 1 : 0;
    speedups.push_back(entry.speedup);
    result.devices.push_back(std::move(entry));
  }
  result.usable_devices = result.devices.size();

  if (!speedups.empty()) {
    const auto summary = hm::common::summarize(speedups);
    result.min_speedup = summary.min;
    result.max_speedup = summary.max;
    result.median_speedup = summary.median;
    result.mean_speedup = summary.mean;
    result.trimmed_mean_speedup =
        hm::common::trimmed_mean(speedups, flaky.trim_fraction);
  }
  return result;
}

std::string speedup_histogram(const CrowdResult& result, double bucket_width) {
  if (result.devices.empty() || bucket_width <= 0.0) return {};
  const auto bucket_of = [&](double speedup) {
    return static_cast<std::size_t>(std::floor(speedup / bucket_width));
  };
  std::size_t max_bucket = 0;
  for (const auto& device : result.devices) {
    max_bucket = std::max(max_bucket, bucket_of(device.speedup));
  }
  std::vector<std::size_t> counts(max_bucket + 1, 0);
  for (const auto& device : result.devices) ++counts[bucket_of(device.speedup)];

  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0 && b * bucket_width < result.min_speedup) continue;
    const int written = std::snprintf(
        line, sizeof(line), "%5.1fx-%5.1fx | %-3zu ",
        static_cast<double>(b) * bucket_width,
        static_cast<double>(b + 1) * bucket_width, counts[b]);
    out.append(line, static_cast<std::size_t>(written));
    out.append(std::min<std::size_t>(counts[b], 100), '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace hm::crowd
