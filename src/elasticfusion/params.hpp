// The ElasticFusion design space of the paper (Section III-C): three
// numeric parameters and five flags, with the upstream defaults.
#pragma once

namespace hm::elasticfusion {

struct EFParams {
  /// Relative ICP/RGB tracking weight: the geometric (ICP) term is weighted
  /// `icp_rgb_weight` times the photometric (RGB) term. Upstream default 10.
  double icp_rgb_weight = 10.0;
  /// Depth cutoff: raw depth beyond this range (m) is ignored. Default 3 m.
  double depth_cutoff = 3.0;
  /// Surfel confidence threshold: surfels participate in the model
  /// (tracking reference, loop closure) only once their confidence reaches
  /// this value. Default 10.
  double confidence_threshold = 10.0;

  // Flags (paper order).
  bool so3_prealign = true;       ///< SO(3) rotation pre-alignment enabled.
  bool open_loop = false;         ///< true disables local loop closure.
  bool relocalisation = true;     ///< Fern-based relocalization on loss.
  bool fast_odometry = false;     ///< Single-level pyramid odometry.
  bool frame_to_frame_rgb = false;  ///< RGB residual vs previous frame
                                    ///< instead of the projected model.

  [[nodiscard]] static EFParams defaults() { return {}; }
};

}  // namespace hm::elasticfusion
