// Randomized-fern keyframe database (Glocker et al.), as used by
// ElasticFusion for relocalization and global loop-closure candidate
// detection. Each keyframe is encoded by evaluating a fixed set of random
// binary tests on its downsampled depth and intensity images; similarity is
// the fraction of agreeing fern codes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::elasticfusion {

using hm::geometry::SE3;
using hm::kfusion::Kernel;
using hm::kfusion::KernelStats;

struct FernDbConfig {
  std::size_t fern_count = 48;   ///< Ferns per code.
  int code_width = 16;           ///< Images are sampled on a code_width grid.
  int code_height = 12;
  /// New keyframes are only added when the best existing similarity is
  /// below this (keeps the database diverse).
  double novelty_threshold = 0.85;
  std::uint64_t seed = 99;
};

struct Keyframe {
  std::vector<std::uint8_t> code;  ///< One 2-bit pair per fern, packed as bytes.
  SE3 pose;                        ///< Camera-to-world at capture time.
  std::uint32_t frame_index = 0;
};

class FernDatabase {
 public:
  explicit FernDatabase(const FernDbConfig& config = {});

  [[nodiscard]] std::size_t size() const noexcept { return keyframes_.size(); }
  [[nodiscard]] const Keyframe& keyframe(std::size_t i) const {
    return keyframes_[i];
  }

  /// Encodes a frame (downsampling internally to the code grid). Encoding
  /// work is counted as Kernel::kLoopClosure.
  [[nodiscard]] std::vector<std::uint8_t> encode(
      const hm::geometry::DepthImage& depth,
      const hm::geometry::IntensityImage& intensity, KernelStats& stats) const;

  /// Similarity in [0, 1] between two codes (fraction of equal ferns).
  [[nodiscard]] static double similarity(const std::vector<std::uint8_t>& a,
                                         const std::vector<std::uint8_t>& b);

  struct Match {
    std::size_t keyframe_index = 0;
    double similarity = 0.0;
  };

  /// Best match in the database; nullopt when empty. Search work is counted
  /// as Kernel::kLoopClosure.
  [[nodiscard]] std::optional<Match> best_match(
      const std::vector<std::uint8_t>& code, KernelStats& stats) const;

  /// Adds the frame as a keyframe if it is sufficiently novel. Returns true
  /// when added.
  bool maybe_add(const std::vector<std::uint8_t>& code, const SE3& pose,
                 std::uint32_t frame_index, KernelStats& stats);

 private:
  struct FernTest {
    int u = 0;           ///< Code-grid coordinates.
    int v = 0;
    float depth_threshold = 0.0f;
    float intensity_threshold = 0.0f;
  };

  FernDbConfig config_;
  std::vector<FernTest> tests_;
  std::vector<Keyframe> keyframes_;
};

}  // namespace hm::elasticfusion
