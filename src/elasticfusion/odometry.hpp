// ElasticFusion's camera tracking: joint geometric (point-to-plane ICP
// against the projected surfel model) and photometric (RGB) alignment,
// with optional SO(3) rotation pre-alignment, single-level "fast odometry",
// and frame-to-frame RGB mode — the mechanisms behind five of the eight
// parameters in the paper's ElasticFusion design space.
#pragma once

#include <array>
#include <vector>

#include "elasticfusion/surfel_map.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"
#include "kfusion/pyramid.hpp"

namespace hm::elasticfusion {

using hm::geometry::IntensityImage;
using hm::kfusion::PyramidLevel;

struct OdometryConfig {
  /// Geometric term weight relative to the photometric term.
  double icp_rgb_weight = 10.0;
  bool so3_prealign = true;
  bool fast_odometry = false;
  bool frame_to_frame_rgb = false;
  /// Iterations per pyramid level, finest first (ElasticFusion upstream
  /// runs 10/5/4). Fast odometry runs a single half-resolution level with
  /// iterations[0] iterations.
  std::array<int, 3> iterations{10, 5, 4};
  double update_threshold = 1e-6;
  double distance_gate = 0.12;
  double normal_gate = 0.7;
  double min_inlier_fraction = 0.08;
  double rms_gate = 0.10;
  /// Converts photometric residuals into length-comparable units before the
  /// weight is applied (intensity is in [0,1], geometry in meters).
  double rgb_residual_scale = 0.12;
};

struct OdometryResult {
  SE3 pose;
  bool tracked = true;
  double inlier_fraction = 0.0;
  double final_rms = 0.0;
  int iterations_run = 0;
};

/// Intensity pyramid matching a depth pyramid's levels (2x2 averaging).
[[nodiscard]] std::vector<IntensityImage> build_intensity_pyramid(
    const IntensityImage& level0, int level_count, KernelStats& stats);

/// Estimates the inter-frame rotation by photometric alignment at the
/// coarsest level (the SO(3) pre-alignment step). Returns the delta rotation
/// R such that a current-camera point p appears at R*p in the previous
/// camera. Work is counted as Kernel::kSo3Prealign.
[[nodiscard]] hm::geometry::Mat3d so3_prealign(
    const PyramidLevel& current_coarse, const IntensityImage& current_intensity,
    const IntensityImage& previous_intensity,
    const hm::geometry::Intrinsics& coarse_intrinsics, KernelStats& stats);

/// Tracks the current frame against the projected model (and, in
/// frame-to-frame mode, the previous frame's intensity). `model` was
/// projected from `reference_pose` at the pyramid's level-0 resolution.
[[nodiscard]] OdometryResult track_rgbd(
    const std::vector<PyramidLevel>& pyramid,
    const std::vector<IntensityImage>& intensity_pyramid, const ModelView& model,
    const std::vector<IntensityImage>& previous_intensity_pyramid,
    const hm::geometry::Intrinsics& level0_intrinsics, const SE3& reference_pose,
    const SE3& initial_pose, const OdometryConfig& config, KernelStats& stats);

}  // namespace hm::elasticfusion
