// The full ElasticFusion per-frame pipeline: depth cutoff + filtering,
// joint ICP/RGB frame-to-model tracking, surfel fusion, fern-keyframe
// bookkeeping, local loop closure, and fern relocalization — each mechanism
// controlled by one of the eight explored parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "elasticfusion/fern_db.hpp"
#include "elasticfusion/odometry.hpp"
#include "elasticfusion/params.hpp"
#include "elasticfusion/surfel_map.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::elasticfusion {

class ElasticFusionPipeline {
 public:
  ElasticFusionPipeline(const EFParams& params, const Intrinsics& intrinsics,
                        const SE3& initial_pose);

  struct FrameResult {
    SE3 pose;
    bool tracked = true;
    bool relocalized = false;
    bool loop_closed = false;
  };

  /// Processes the next RGB-D frame (depth in meters, intensity in [0,1]).
  [[nodiscard]] FrameResult process_frame(
      const hm::geometry::DepthImage& depth,
      const hm::geometry::IntensityImage& intensity);

  [[nodiscard]] const SE3& pose() const noexcept { return pose_; }
  [[nodiscard]] const SurfelMap& map() const noexcept { return map_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<SE3>& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::size_t relocalization_count() const noexcept {
    return relocalizations_;
  }
  [[nodiscard]] std::size_t loop_closure_count() const noexcept {
    return loop_closures_;
  }

 private:
  /// Applies the depth cutoff and light filtering to the raw depth.
  [[nodiscard]] hm::geometry::DepthImage preprocess(
      const hm::geometry::DepthImage& raw);

  void attempt_loop_closure(const std::vector<PyramidLevel>& pyramid,
                            const std::vector<IntensityImage>& intensity_pyramid,
                            FrameResult& result);

  EFParams params_;
  Intrinsics intrinsics_;
  SurfelMap map_;
  FernDatabase ferns_;
  SE3 pose_;
  std::uint32_t frame_ = 0;
  KernelStats stats_;
  std::vector<SE3> trajectory_;
  std::vector<IntensityImage> previous_intensity_pyramid_;
  OdometryConfig odometry_config_;
  std::size_t relocalizations_ = 0;
  std::size_t loop_closures_ = 0;
  /// Frames between loop-closure attempts (fixed, not explored).
  static constexpr std::uint32_t kLoopCheckInterval = 8;
  /// Unstable surfels observed within this many frames join the active
  /// tracking model (ElasticFusion's time window).
  static constexpr std::uint32_t kUnstableWindow = 30;
};

}  // namespace hm::elasticfusion
