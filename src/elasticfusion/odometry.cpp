#include "elasticfusion/odometry.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/solve.hpp"

namespace hm::elasticfusion {

using hm::geometry::Intrinsics;
using hm::geometry::Mat3d;
using hm::geometry::NormalEquations;
using hm::geometry::Vec2d;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

std::vector<IntensityImage> build_intensity_pyramid(const IntensityImage& level0,
                                                    int level_count,
                                                    KernelStats& stats) {
  std::vector<IntensityImage> pyramid;
  pyramid.reserve(static_cast<std::size_t>(level_count));
  pyramid.push_back(level0);
  for (int level = 1; level < level_count; ++level) {
    const IntensityImage& src = pyramid.back();
    IntensityImage dst(src.width() / 2, src.height() / 2, 0.0f);
    for (int v = 0; v < dst.height(); ++v) {
      for (int u = 0; u < dst.width(); ++u) {
        dst.at(u, v) = 0.25f * (src.at(2 * u, 2 * v) + src.at(2 * u + 1, 2 * v) +
                                src.at(2 * u, 2 * v + 1) +
                                src.at(2 * u + 1, 2 * v + 1));
      }
    }
    stats.add(Kernel::kPyramid, dst.size() * 4);
    pyramid.push_back(std::move(dst));
  }
  return pyramid;
}

namespace {

/// Central-difference image gradient at integer pixel (u, v); nullopt at the
/// border or when any support pixel is invalid (< invalid_below).
std::optional<Vec2d> image_gradient(const IntensityImage& image, int u, int v,
                                    float invalid_below) {
  if (u < 1 || v < 1 || u + 1 >= image.width() || v + 1 >= image.height()) {
    return std::nullopt;
  }
  const float left = image.at(u - 1, v), right = image.at(u + 1, v);
  const float up = image.at(u, v - 1), down = image.at(u, v + 1);
  if (left <= invalid_below || right <= invalid_below || up <= invalid_below ||
      down <= invalid_below) {
    return std::nullopt;
  }
  return Vec2d{0.5 * static_cast<double>(right - left),
               0.5 * static_cast<double>(down - up)};
}

}  // namespace

Mat3d so3_prealign(const PyramidLevel& current_coarse,
                   const IntensityImage& current_intensity,
                   const IntensityImage& previous_intensity,
                   const Intrinsics& coarse_intrinsics, KernelStats& stats) {
  Vec3d w{};  // Accumulated rotation (axis-angle).
  std::uint64_t ops = 0;
  constexpr int kIterations = 4;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const Mat3d rotation = hm::geometry::so3_exp(w);
    NormalEquations<3> equations;
    for (int v = 0; v < current_coarse.vertices.height(); ++v) {
      for (int u = 0; u < current_coarse.vertices.width(); ++u) {
        const Vec3f vertex = current_coarse.vertices.at(u, v);
        // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
        if (vertex == Vec3f{}) continue;
        ++ops;
        // Current-camera point rotated into the previous camera.
        const Vec3d q = rotation * hm::geometry::to_double(vertex);
        if (q.z <= 1e-6) continue;
        const auto pixel = coarse_intrinsics.project(q);
        if (!pixel) continue;
        const int pu = static_cast<int>(std::lround(pixel->x));
        const int pv = static_cast<int>(std::lround(pixel->y));
        if (!coarse_intrinsics.contains(pu, pv)) continue;
        const auto grad = image_gradient(previous_intensity, pu, pv, -0.5f);
        if (!grad) continue;
        const float reference = previous_intensity.at(pu, pv);
        const double residual = static_cast<double>(
            current_intensity.at(u, v) - reference);

        // d(pixel)/dq, then dq/dw = -hat(q).
        const double inv_z = 1.0 / q.z;
        const Vec3d dpx{coarse_intrinsics.fx * inv_z, 0.0,
                        -coarse_intrinsics.fx * q.x * inv_z * inv_z};
        const Vec3d dpy{0.0, coarse_intrinsics.fy * inv_z,
                        -coarse_intrinsics.fy * q.y * inv_z * inv_z};
        const Vec3d di = dpx * grad->x + dpy * grad->y;  // dI/dq.
        // dq/dw = -hat(q), so the prediction jacobian is q x di; the
        // residual is (observed - predicted), matching J w ~ b.
        const Vec3d j = q.cross(di);
        equations.add({j.x, j.y, j.z}, residual);
      }
    }
    if (equations.count() < 12) break;
    const auto update = equations.solve(/*damping=*/1e-7);
    if (!update) break;
    w += Vec3d{(*update)[0], (*update)[1], (*update)[2]};
    const double norm2 = (*update)[0] * (*update)[0] +
                         (*update)[1] * (*update)[1] +
                         (*update)[2] * (*update)[2];
    if (norm2 < 1e-10) break;
  }
  stats.add(Kernel::kSo3Prealign, ops);
  return hm::geometry::so3_exp(w);
}

namespace {

struct JointReduction {
  NormalEquations<6> equations;
  std::uint64_t icp_tested = 0;
  std::uint64_t icp_matched = 0;
  std::uint64_t rgb_tested = 0;
  double icp_sse = 0.0;  ///< Geometric residual sum of squares.
  std::size_t icp_count = 0;
};

/// One joint ICP+RGB pass at a pyramid level under pose estimate `pose`.
JointReduction reduce_joint(const PyramidLevel& level,
                            const IntensityImage& level_intensity,
                            const ModelView& model,
                            const IntensityImage& rgb_reference,
                            const Intrinsics& level0_intrinsics,
                            const SE3& world_to_reference, const SE3& pose,
                            const OdometryConfig& config) {
  JointReduction out;
  const double distance_gate2 = config.distance_gate * config.distance_gate;
  const double w_icp = config.icp_rgb_weight;
  const double w_rgb = 1.0;
  const double rgb_scale = config.rgb_residual_scale;

  for (int v = 0; v < level.vertices.height(); ++v) {
    for (int u = 0; u < level.vertices.width(); ++u) {
      const Vec3f vertex = level.vertices.at(u, v);
      // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
      if (vertex == Vec3f{}) continue;
      const Vec3d p_world = pose * hm::geometry::to_double(vertex);
      const Vec3d p_ref = world_to_reference * p_world;
      const auto pixel = level0_intrinsics.project(p_ref);
      if (!pixel) continue;
      const int ru = static_cast<int>(std::lround(pixel->x));
      const int rv = static_cast<int>(std::lround(pixel->y));
      if (!level0_intrinsics.contains(ru, rv)) continue;

      // --- Geometric (ICP) term against the projected model. ---
      const Vec3f normal = level.normals.at(u, v);
      // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
      if (normal != Vec3f{}) {
        ++out.icp_tested;
        const Vec3f ref_vertex = model.vertices.at(ru, rv);
        const Vec3f ref_normal = model.normals.at(ru, rv);
        // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
        if (ref_vertex != Vec3f{} && ref_normal != Vec3f{}) {
          const Vec3d v_ref = hm::geometry::to_double(ref_vertex);
          const Vec3d n_ref = hm::geometry::to_double(ref_normal);
          const Vec3d diff = v_ref - p_world;
          const Vec3d n_cur = pose.rotate(hm::geometry::to_double(normal));
          if (diff.squared_norm() <= distance_gate2 &&
              n_ref.dot(n_cur) >= config.normal_gate) {
            const double residual = n_ref.dot(diff);
            const Vec3d moment = p_world.cross(n_ref);
            out.equations.add(
                {n_ref.x, n_ref.y, n_ref.z, moment.x, moment.y, moment.z},
                residual, w_icp);
            out.icp_sse += residual * residual;
            ++out.icp_count;
            ++out.icp_matched;
          }
        }
      }

      // --- Photometric (RGB) term. ---
      if (!level_intensity.empty() && !rgb_reference.empty()) {
        ++out.rgb_tested;
        const auto grad = image_gradient(rgb_reference, ru, rv, -0.5f);
        const float reference_value = rgb_reference.at(ru, rv);
        if (grad && reference_value > -0.5f) {
          const double residual =
              rgb_scale * (static_cast<double>(level_intensity.at(u, v)) -
                           static_cast<double>(reference_value));
          // Chain rule: dI/dpixel * dpixel/dp_ref * dp_ref/dtwist.
          const double inv_z = 1.0 / p_ref.z;
          const Vec3d dpx{level0_intrinsics.fx * inv_z, 0.0,
                          -level0_intrinsics.fx * p_ref.x * inv_z * inv_z};
          const Vec3d dpy{0.0, level0_intrinsics.fy * inv_z,
                          -level0_intrinsics.fy * p_ref.y * inv_z * inv_z};
          // dI/dp_ref, then into world via R_ref^T (rows of world_to_ref).
          const Vec3d di_ref = dpx * grad->x + dpy * grad->y;
          const Vec3d di_world =
              world_to_reference.rotation.transposed() * di_ref;
          // dp_world/dtwist = [I | -hat(p_world)] gives the prediction
          // jacobian [di_world ; p_world x di_world]; with the residual
          // defined as (current - predicted) the solve J ksi = r matches
          // the ICP convention above.
          const Vec3d j_rot = p_world.cross(di_world);
          out.equations.add({rgb_scale * di_world.x, rgb_scale * di_world.y,
                             rgb_scale * di_world.z, rgb_scale * j_rot.x,
                             rgb_scale * j_rot.y, rgb_scale * j_rot.z},
                            residual, w_rgb);
        }
      }
    }
  }
  return out;
}

}  // namespace

OdometryResult track_rgbd(const std::vector<PyramidLevel>& pyramid,
                          const std::vector<IntensityImage>& intensity_pyramid,
                          const ModelView& model,
                          const std::vector<IntensityImage>& previous_intensity_pyramid,
                          const Intrinsics& level0_intrinsics,
                          const SE3& reference_pose, const SE3& initial_pose,
                          const OdometryConfig& config, KernelStats& stats) {
  OdometryResult result;
  result.pose = initial_pose;
  const SE3 world_to_reference = reference_pose.inverse();

  // Level schedule: full coarse-to-fine, or a single half-resolution level
  // in fast-odometry mode.
  std::vector<std::size_t> levels;
  if (config.fast_odometry) {
    levels.push_back(std::min<std::size_t>(1, pyramid.size() - 1));
  } else {
    for (std::size_t i = pyramid.size(); i-- > 0;) levels.push_back(i);
  }

  std::uint64_t icp_ops = 0;
  std::uint64_t rgb_ops = 0;
  std::uint64_t solves = 0;

  static const IntensityImage kEmptyIntensity;
  for (const std::size_t level_index : levels) {
    const PyramidLevel& level = pyramid[level_index];
    const IntensityImage& level_intensity = intensity_pyramid.empty()
                                                ? kEmptyIntensity
                                                : intensity_pyramid[level_index];
    // RGB reference: the projected model intensity (frame-to-model) or the
    // previous frame's level-0 intensity (frame-to-frame). Both are indexed
    // through the reference camera at level-0 resolution.
    const IntensityImage& rgb_reference =
        config.frame_to_frame_rgb
            ? (previous_intensity_pyramid.empty() ? kEmptyIntensity
                                                  : previous_intensity_pyramid[0])
            : model.intensity;

    const int iterations = config.fast_odometry
                               ? config.iterations[0]
                               : config.iterations[std::min<std::size_t>(
                                     level_index, config.iterations.size() - 1)];
    for (int iteration = 0; iteration < iterations; ++iteration) {
      const JointReduction pass =
          reduce_joint(level, level_intensity, model, rgb_reference,
                       level0_intrinsics, world_to_reference, result.pose,
                       config);
      icp_ops += pass.icp_tested;
      rgb_ops += pass.rgb_tested;
      ++result.iterations_run;

      if (level_index == levels.back() || level_index == 0) {
        result.final_rms =
            pass.icp_count == 0
                ? 0.0
                : std::sqrt(pass.icp_sse / static_cast<double>(pass.icp_count));
        result.inlier_fraction =
            pass.icp_tested == 0
                ? 0.0
                : static_cast<double>(pass.icp_matched) /
                      static_cast<double>(pass.icp_tested);
      }
      if (pass.equations.count() < 6) break;

      const auto update = pass.equations.solve(/*damping=*/1e-9);
      ++solves;
      if (!update) break;
      result.pose = SE3::exp(*update) * result.pose;
      result.pose.rotation = hm::geometry::orthonormalized(result.pose.rotation);

      double norm2 = 0.0;
      for (const double value : *update) norm2 += value * value;
      if (norm2 < config.update_threshold) break;
    }
  }

  stats.add(Kernel::kIcp, icp_ops);
  stats.add(Kernel::kRgbTrack, rgb_ops);
  stats.add(Kernel::kSolve, solves);

  result.tracked = result.inlier_fraction >= config.min_inlier_fraction &&
                   result.final_rms <= config.rms_gate &&
                   result.final_rms > 0.0;
  return result;
}

}  // namespace hm::elasticfusion
