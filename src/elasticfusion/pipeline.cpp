#include "elasticfusion/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "kfusion/preprocess.hpp"

namespace hm::elasticfusion {
namespace {

/// Per-phase duration histograms
/// (`hm_elasticfusion_phase_seconds{phase=...}`), resolved once.
struct PhaseMetrics {
  hm::common::Histogram* preprocess = nullptr;
  hm::common::Histogram* tracking = nullptr;
  hm::common::Histogram* fusion = nullptr;
  hm::common::Histogram* loop_closure = nullptr;
  hm::common::Histogram* maintenance = nullptr;
};

const PhaseMetrics& phase_metrics() {
  static const PhaseMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    const auto resolve = [&registry](std::string_view phase) {
      return &registry.histogram("hm_elasticfusion_phase_seconds", "phase",
                                 phase);
    };
    PhaseMetrics resolved;
    resolved.preprocess = resolve("preprocess");
    resolved.tracking = resolve("tracking");
    resolved.fusion = resolve("fusion");
    resolved.loop_closure = resolve("loop_closure");
    resolved.maintenance = resolve("maintenance");
    return resolved;
  }();
  return metrics;
}

}  // namespace

ElasticFusionPipeline::ElasticFusionPipeline(const EFParams& params,
                                             const Intrinsics& intrinsics,
                                             const SE3& initial_pose)
    : params_(params), intrinsics_(intrinsics), pose_(initial_pose) {
  odometry_config_.icp_rgb_weight = params.icp_rgb_weight;
  odometry_config_.so3_prealign = params.so3_prealign;
  odometry_config_.fast_odometry = params.fast_odometry;
  odometry_config_.frame_to_frame_rgb = params.frame_to_frame_rgb;
}

hm::geometry::DepthImage ElasticFusionPipeline::preprocess(
    const hm::geometry::DepthImage& raw) {
  // Depth cutoff, then a light bilateral filter (EF filters depth before
  // computing vertex/normal maps).
  hm::geometry::DepthImage cut = raw;
  const auto cutoff = static_cast<float>(params_.depth_cutoff);
  for (int v = 0; v < cut.height(); ++v) {
    float* row = cut.row(v);
    for (int u = 0; u < cut.width(); ++u) {
      if (row[u] > cutoff) row[u] = 0.0f;
    }
  }
  hm::kfusion::BilateralConfig filter;
  filter.radius = 1;  // EF's filter window is smaller than KFusion's.
  return hm::kfusion::bilateral_filter(cut, filter, stats_);
}

ElasticFusionPipeline::FrameResult ElasticFusionPipeline::process_frame(
    const hm::geometry::DepthImage& depth,
    const hm::geometry::IntensityImage& intensity) {
  FrameResult result;

  hm::geometry::DepthImage filtered;
  std::vector<PyramidLevel> pyramid;
  std::vector<IntensityImage> intensity_pyramid;
  {
    HM_TRACE_SPAN(span, "preprocess", "elasticfusion",
                  phase_metrics().preprocess);
    filtered = preprocess(depth);
    pyramid = hm::kfusion::build_pyramid(filtered, intrinsics_, 3, stats_);
    intensity_pyramid = build_intensity_pyramid(intensity, 3, stats_);
  }

  if (frame_ == 0) {
    // Bootstrap: fuse the first frame at the initial pose.
    map_.fuse(pyramid[0].vertices, pyramid[0].normals, intensity, pose_, frame_,
              {}, stats_);
    const auto code = ferns_.encode(filtered, intensity, stats_);
    ferns_.maybe_add(code, pose_, frame_, stats_);
  } else {
    // --- Tracking (with fern relocalization as the fallback). ---
    {
      HM_TRACE_SPAN(tracking_span, "tracking", "elasticfusion",
                    phase_metrics().tracking);
      SE3 initial = pose_;
      if (params_.so3_prealign && !previous_intensity_pyramid_.empty()) {
        const std::size_t coarse = pyramid.size() - 1;
        const hm::geometry::Mat3d delta = so3_prealign(
            pyramid[coarse], intensity_pyramid[coarse],
            previous_intensity_pyramid_[coarse], pyramid[coarse].intrinsics,
            stats_);
        // A current-camera point p maps to delta*p in the previous camera:
        // T_cur = T_prev * delta.
        initial.rotation =
            hm::geometry::orthonormalized(initial.rotation * delta);
      }

      const ModelView model =
          map_.project(intrinsics_, pose_, params_.confidence_threshold,
                       frame_, kUnstableWindow, stats_);
      const OdometryResult odom = track_rgbd(
          pyramid, intensity_pyramid, model, previous_intensity_pyramid_,
          intrinsics_, pose_, initial, odometry_config_, stats_);
      result.tracked = odom.tracked;

      if (odom.tracked) {
        pose_ = odom.pose;
      } else if (params_.relocalisation) {
        // --- Fern relocalization: jump to the best-matching keyframe pose
        // and re-track against the model from there. ---
        const auto code = ferns_.encode(filtered, intensity, stats_);
        const auto match = ferns_.best_match(code, stats_);
        if (match && match->similarity > 0.6) {
          const SE3 candidate = ferns_.keyframe(match->keyframe_index).pose;
          const ModelView reloc_model = map_.project(
              intrinsics_, candidate, params_.confidence_threshold, frame_,
              /*unstable_window=*/0, stats_);
          const OdometryResult retry = track_rgbd(
              pyramid, intensity_pyramid, reloc_model, {}, intrinsics_,
              candidate, candidate, odometry_config_, stats_);
          if (retry.tracked) {
            pose_ = retry.pose;
            result.tracked = true;
            result.relocalized = true;
            ++relocalizations_;
          }
        }
      }
    }

    // --- Local loop closure (model-to-keyframe consistency). ---
    if (!params_.open_loop && result.tracked &&
        frame_ % kLoopCheckInterval == 0) {
      HM_TRACE_SPAN(span, "loop_closure", "elasticfusion",
                    phase_metrics().loop_closure);
      attempt_loop_closure(pyramid, intensity_pyramid, result);
    }

    // --- Fusion: only frames with a trusted pose extend the map. ---
    if (result.tracked) {
      HM_TRACE_SPAN(span, "fusion", "elasticfusion", phase_metrics().fusion);
      map_.fuse(pyramid[0].vertices, pyramid[0].normals, intensity, pose_,
                frame_, {}, stats_);
      const auto code = ferns_.encode(filtered, intensity, stats_);
      ferns_.maybe_add(code, pose_, frame_, stats_);
    }

    // --- Map maintenance: drop stale unstable surfels (sensor noise that
    // was never confirmed). ---
    if (frame_ % kLoopCheckInterval == 0) {
      HM_TRACE_SPAN(span, "maintenance", "elasticfusion",
                    phase_metrics().maintenance);
      (void)map_.prune(frame_, 2 * kUnstableWindow,
                       params_.confidence_threshold, stats_);
    }
  }

  previous_intensity_pyramid_ = intensity_pyramid;
  trajectory_.push_back(pose_);
  result.pose = pose_;
  ++frame_;
  return result;
}

void ElasticFusionPipeline::attempt_loop_closure(
    const std::vector<PyramidLevel>& pyramid,
    const std::vector<IntensityImage>& intensity_pyramid, FrameResult& result) {
  // Local loop closure: re-register the current frame against the model
  // seen from the matched keyframe's viewpoint. A consistent solve yields a
  // small pose correction that is blended into the trajectory and (as the
  // simplified stand-in for EF's deformation graph, see DESIGN.md) applied
  // rigidly to the recent map.
  hm::geometry::DepthImage snapshot = pyramid[0].depth;
  const auto code = ferns_.encode(
      snapshot, intensity_pyramid.empty() ? IntensityImage{} : intensity_pyramid[0],
      stats_);
  const auto match = ferns_.best_match(code, stats_);
  if (!match || match->similarity < 0.7) return;
  const Keyframe& keyframe = ferns_.keyframe(match->keyframe_index);
  if (frame_ - keyframe.frame_index < 2 * kLoopCheckInterval) {
    return;  // Too recent to constrain drift.
  }

  const ModelView view =
      map_.project(intrinsics_, keyframe.pose, params_.confidence_threshold,
                   frame_, /*unstable_window=*/0, stats_);
  OdometryConfig strict = odometry_config_;
  strict.min_inlier_fraction = 0.2;
  strict.rms_gate = 0.05;
  const OdometryResult registration =
      track_rgbd(pyramid, intensity_pyramid, view, {}, intrinsics_,
                 keyframe.pose, pose_, strict, stats_);
  if (!registration.tracked) return;

  // Correction from the drifted pose to the loop-consistent one; apply a
  // damped fraction (EF distributes it over the deformation graph).
  const SE3 correction = registration.pose * pose_.inverse();
  const auto twist = correction.log();
  double norm2 = 0.0;
  for (const double value : twist) norm2 += value * value;
  if (norm2 < 1e-10 || norm2 > 0.25) return;  // Negligible or implausible.

  std::array<double, 6> damped{};
  for (std::size_t i = 0; i < 6; ++i) damped[i] = 0.5 * twist[i];
  const SE3 blended = SE3::exp(damped);
  pose_ = blended * pose_;
  pose_.rotation = hm::geometry::orthonormalized(pose_.rotation);
  result.loop_closed = true;
  ++loop_closures_;
  stats_.add(Kernel::kLoopClosure, map_.size());
}

}  // namespace hm::elasticfusion
