#include "elasticfusion/surfel_map.hpp"

#include <algorithm>
#include <cmath>

namespace hm::elasticfusion {

SurfelMap::CellKey SurfelMap::pack(std::int32_t x, std::int32_t y,
                                   std::int32_t z) {
  // 21 bits per axis with an offset; room coordinates are small positives.
  const auto ux = static_cast<std::uint64_t>(x + (1 << 20)) & 0x1fffffULL;
  const auto uy = static_cast<std::uint64_t>(y + (1 << 20)) & 0x1fffffULL;
  const auto uz = static_cast<std::uint64_t>(z + (1 << 20)) & 0x1fffffULL;
  return (ux << 42) | (uy << 21) | uz;
}

SurfelMap::CellKey SurfelMap::cell_of(Vec3f position) const {
  const auto x = static_cast<std::int32_t>(
      std::floor(static_cast<double>(position.x) / cell_size_));
  const auto y = static_cast<std::int32_t>(
      std::floor(static_cast<double>(position.y) / cell_size_));
  const auto z = static_cast<std::int32_t>(
      std::floor(static_cast<double>(position.z) / cell_size_));
  return pack(x, y, z);
}

std::size_t SurfelMap::stable_count(double confidence_threshold) const {
  std::size_t count = 0;
  for (const Surfel& s : surfels_) {
    count += static_cast<double>(s.confidence) >= confidence_threshold ? 1 : 0;
  }
  return count;
}

void SurfelMap::fuse(const hm::geometry::VertexMap& vertices,
                     const hm::geometry::NormalMap& normals,
                     const hm::geometry::IntensityImage& intensity,
                     const SE3& pose, std::uint32_t frame_index,
                     const FusionParams& params, KernelStats& stats) {
  const auto gate2 = static_cast<float>(params.association_distance *
                                        params.association_distance);
  const auto normal_gate = static_cast<float>(params.normal_agreement);
  std::uint64_t ops = 0;

  for (int v = 0; v < vertices.height(); ++v) {
    for (int u = 0; u < vertices.width(); ++u) {
      const Vec3f vertex = vertices.at(u, v);
      const Vec3f normal = normals.at(u, v);
      // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
      if (vertex == Vec3f{} || normal == Vec3f{}) continue;

      const Vec3f p_world = hm::geometry::to_float(
          pose * hm::geometry::to_double(vertex));
      const Vec3f n_world = hm::geometry::to_float(
          pose.rotate(hm::geometry::to_double(normal)));
      const float pixel_intensity =
          intensity.empty() ? 0.0f : intensity.at(u, v);
      // Surfel radius ~ pixel footprint at this depth.
      const float radius = 0.01f * std::max(vertex.z, 0.3f);

      // Search the 3x3x3 neighborhood of the point's cell.
      const auto cx = static_cast<std::int32_t>(
          std::floor(static_cast<double>(p_world.x) / cell_size_));
      const auto cy = static_cast<std::int32_t>(
          std::floor(static_cast<double>(p_world.y) / cell_size_));
      const auto cz = static_cast<std::int32_t>(
          std::floor(static_cast<double>(p_world.z) / cell_size_));

      std::int32_t best = -1;
      float best_distance2 = gate2;
      for (std::int32_t dz = -1; dz <= 1; ++dz) {
        for (std::int32_t dy = -1; dy <= 1; ++dy) {
          for (std::int32_t dx = -1; dx <= 1; ++dx) {
            const auto it = grid_.find(pack(cx + dx, cy + dy, cz + dz));
            if (it == grid_.end()) continue;
            for (const std::uint32_t index : it->second) {
              ++ops;
              const Surfel& s = surfels_[index];
              const float d2 = (s.position - p_world).squared_norm();
              if (d2 < best_distance2 && s.normal.dot(n_world) > normal_gate) {
                best_distance2 = d2;
                best = static_cast<std::int32_t>(index);
              }
            }
          }
        }
      }

      ++ops;  // The update/insert itself.
      if (best >= 0) {
        Surfel& s = surfels_[static_cast<std::uint32_t>(best)];
        const CellKey old_cell = cell_of(s.position);
        const float w = s.confidence;
        const float inv = 1.0f / (w + 1.0f);
        s.position = (s.position * w + p_world) * inv;
        s.normal = ((s.normal * w + n_world) * inv).normalized();
        s.intensity = (s.intensity * w + pixel_intensity) * inv;
        s.radius = std::min(s.radius, radius);
        s.confidence = std::min(w + 1.0f, params.max_confidence);
        s.last_seen = frame_index;
        const CellKey new_cell = cell_of(s.position);
        if (new_cell != old_cell) {
          auto& old_bucket = grid_[old_cell];
          old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(),
                                     static_cast<std::uint32_t>(best)));
          grid_[new_cell].push_back(static_cast<std::uint32_t>(best));
        }
      } else {
        Surfel s;
        s.position = p_world;
        s.normal = n_world;
        s.intensity = pixel_intensity;
        s.radius = radius;
        s.confidence = 1.0f;
        s.last_seen = frame_index;
        surfels_.push_back(s);
        grid_[cell_of(p_world)].push_back(
            static_cast<std::uint32_t>(surfels_.size() - 1));
      }
    }
  }
  stats.add(Kernel::kSurfelFusion, ops);
}

ModelView SurfelMap::project(const Intrinsics& intrinsics, const SE3& pose,
                             double confidence_threshold,
                             std::uint32_t current_frame,
                             std::uint32_t unstable_window,
                             KernelStats& stats) const {
  ModelView view;
  view.vertices =
      hm::geometry::VertexMap(intrinsics.width, intrinsics.height, Vec3f{});
  view.normals =
      hm::geometry::NormalMap(intrinsics.width, intrinsics.height, Vec3f{});
  view.intensity =
      hm::geometry::IntensityImage(intrinsics.width, intrinsics.height, -1.0f);
  hm::geometry::DepthImage zbuffer(intrinsics.width, intrinsics.height, 1e30f);

  const SE3 world_to_camera = pose.inverse();
  std::uint64_t ops = 0;
  for (const Surfel& s : surfels_) {
    ++ops;
    const bool stable = static_cast<double>(s.confidence) >= confidence_threshold;
    const bool recent =
        unstable_window > 0 && current_frame >= s.last_seen &&
        current_frame - s.last_seen <= unstable_window;
    if (!stable && !recent) continue;
    const Vec3d p_camera =
        world_to_camera * hm::geometry::to_double(s.position);
    const auto pixel = intrinsics.project(p_camera);
    if (!pixel) continue;
    const int u = static_cast<int>(std::lround(pixel->x));
    const int v = static_cast<int>(std::lround(pixel->y));
    if (!intrinsics.contains(u, v)) continue;
    const auto z = static_cast<float>(p_camera.z);
    if (z >= zbuffer.at(u, v)) continue;
    zbuffer.at(u, v) = z;
    view.vertices.set(u, v, s.position);
    view.normals.set(u, v, s.normal);
    view.intensity.at(u, v) = s.intensity;
  }
  stats.add(Kernel::kSurfelFusion, ops);
  return view;
}

std::size_t SurfelMap::prune(std::uint32_t current_frame, std::uint32_t max_age,
                             double confidence_threshold, KernelStats& stats) {
  const std::size_t before = surfels_.size();
  std::vector<Surfel> kept;
  kept.reserve(before);
  for (const Surfel& s : surfels_) {
    const bool stable =
        static_cast<double>(s.confidence) >= confidence_threshold;
    const bool fresh = current_frame < s.last_seen ||
                       current_frame - s.last_seen <= max_age;
    if (stable || fresh) kept.push_back(s);
  }
  stats.add(Kernel::kSurfelFusion, before);
  if (kept.size() == before) return 0;
  surfels_ = std::move(kept);
  grid_.clear();
  for (std::uint32_t i = 0; i < surfels_.size(); ++i) {
    grid_[cell_of(surfels_[i].position)].push_back(i);
  }
  return before - surfels_.size();
}

std::string SurfelMap::to_ply(double confidence_threshold) const {
  std::size_t count = 0;
  for (const Surfel& s : surfels_) {
    count += static_cast<double>(s.confidence) >= confidence_threshold ? 1 : 0;
  }
  std::string out;
  char line[256];
  int len = std::snprintf(line, sizeof(line),
                          "ply\nformat ascii 1.0\nelement vertex %zu\n"
                          "property float x\nproperty float y\nproperty float z\n"
                          "property float nx\nproperty float ny\nproperty float nz\n"
                          "property uchar red\nproperty uchar green\n"
                          "property uchar blue\nend_header\n",
                          count);
  out.append(line, static_cast<std::size_t>(len));
  for (const Surfel& s : surfels_) {
    if (static_cast<double>(s.confidence) < confidence_threshold) continue;
    const int gray = static_cast<int>(
        std::clamp(s.intensity, 0.0f, 1.0f) * 255.0f);
    len = std::snprintf(line, sizeof(line), "%g %g %g %g %g %g %d %d %d\n",
                        static_cast<double>(s.position.x),
                        static_cast<double>(s.position.y),
                        static_cast<double>(s.position.z),
                        static_cast<double>(s.normal.x),
                        static_cast<double>(s.normal.y),
                        static_cast<double>(s.normal.z), gray, gray, gray);
    out.append(line, static_cast<std::size_t>(len));
  }
  return out;
}

void SurfelMap::transform(const SE3& correction) {
  grid_.clear();
  for (std::uint32_t i = 0; i < surfels_.size(); ++i) {
    Surfel& s = surfels_[i];
    s.position = hm::geometry::to_float(
        correction * hm::geometry::to_double(s.position));
    s.normal = hm::geometry::to_float(
        correction.rotate(hm::geometry::to_double(s.normal)));
    grid_[cell_of(s.position)].push_back(i);
  }
}

}  // namespace hm::elasticfusion
