#include "elasticfusion/fern_db.hpp"

#include <algorithm>
#include <cassert>

namespace hm::elasticfusion {

FernDatabase::FernDatabase(const FernDbConfig& config) : config_(config) {
  hm::common::Rng rng(config.seed);
  tests_.reserve(config.fern_count);
  for (std::size_t f = 0; f < config.fern_count; ++f) {
    FernTest test;
    test.u = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(config.code_width)));
    test.v = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(config.code_height)));
    test.depth_threshold = static_cast<float>(rng.uniform(0.5, 5.0));
    test.intensity_threshold = static_cast<float>(rng.uniform(0.2, 0.8));
    tests_.push_back(test);
  }
}

std::vector<std::uint8_t> FernDatabase::encode(
    const hm::geometry::DepthImage& depth,
    const hm::geometry::IntensityImage& intensity, KernelStats& stats) const {
  std::vector<std::uint8_t> code(config_.fern_count, 0);
  const bool have_intensity = !intensity.empty();
  // Nearest-pixel sampling positions on the code grid.
  for (std::size_t f = 0; f < tests_.size(); ++f) {
    const FernTest& test = tests_[f];
    const int du = depth.width() * test.u / config_.code_width;
    const int dv = depth.height() * test.v / config_.code_height;
    const float z = depth.at(std::min(du, depth.width() - 1),
                             std::min(dv, depth.height() - 1));
    std::uint8_t bits = z > 0.0f && z < test.depth_threshold ? 1 : 0;
    if (have_intensity) {
      const int iu = intensity.width() * test.u / config_.code_width;
      const int iv = intensity.height() * test.v / config_.code_height;
      const float value = intensity.at(std::min(iu, intensity.width() - 1),
                                       std::min(iv, intensity.height() - 1));
      bits = static_cast<std::uint8_t>(
          bits | (value > test.intensity_threshold ? 2 : 0));
    }
    code[f] = bits;
  }
  stats.add(Kernel::kLoopClosure, tests_.size());
  return code;
}

double FernDatabase::similarity(const std::vector<std::uint8_t>& a,
                                const std::vector<std::uint8_t>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  std::size_t equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i] ? 1 : 0;
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

std::optional<FernDatabase::Match> FernDatabase::best_match(
    const std::vector<std::uint8_t>& code, KernelStats& stats) const {
  if (keyframes_.empty()) return std::nullopt;
  Match best;
  best.similarity = -1.0;
  for (std::size_t i = 0; i < keyframes_.size(); ++i) {
    const double s = similarity(code, keyframes_[i].code);
    if (s > best.similarity) {
      best.similarity = s;
      best.keyframe_index = i;
    }
  }
  stats.add(Kernel::kLoopClosure, keyframes_.size() * config_.fern_count);
  return best;
}

bool FernDatabase::maybe_add(const std::vector<std::uint8_t>& code,
                             const SE3& pose, std::uint32_t frame_index,
                             KernelStats& stats) {
  const auto match = best_match(code, stats);
  if (match && match->similarity >= config_.novelty_threshold) return false;
  Keyframe keyframe;
  keyframe.code = code;
  keyframe.pose = pose;
  keyframe.frame_index = frame_index;
  keyframes_.push_back(std::move(keyframe));
  return true;
}

}  // namespace hm::elasticfusion
