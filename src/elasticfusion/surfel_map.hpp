// Surfel-based map: ElasticFusion's environment representation. Surfels are
// fused with confidence-weighted averaging; association uses a uniform
// spatial hash. Surfels above the confidence threshold form the "stable"
// model used for tracking and loop closure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "geometry/soa.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::elasticfusion {

using hm::geometry::Intrinsics;
using hm::geometry::SE3;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;
using hm::kfusion::Kernel;
using hm::kfusion::KernelStats;

struct Surfel {
  Vec3f position;      ///< World space.
  Vec3f normal;        ///< Unit, world space.
  float intensity = 0.0f;
  float radius = 0.0f;       ///< Disc radius (m), from pixel footprint.
  float confidence = 0.0f;
  std::uint32_t last_seen = 0;  ///< Frame index of the last fusion.
};

/// Model maps produced by projecting the stable surfels into a camera.
struct ModelView {
  hm::geometry::VertexMap vertices;     ///< World space; zero = empty.
  hm::geometry::NormalMap normals;      ///< World space; zero = empty.
  hm::geometry::IntensityImage intensity;  ///< -1 marks empty pixels.
};

class SurfelMap {
 public:
  /// `cell_size`: spatial-hash bucket edge (m); association searches the
  /// 3x3x3 neighborhood of a point's cell.
  explicit SurfelMap(double cell_size = 0.05) : cell_size_(cell_size) {}

  [[nodiscard]] std::size_t size() const noexcept { return surfels_.size(); }
  [[nodiscard]] const std::vector<Surfel>& surfels() const noexcept {
    return surfels_;
  }

  /// Number of surfels at or above the given confidence.
  [[nodiscard]] std::size_t stable_count(double confidence_threshold) const;

  struct FusionParams {
    double association_distance = 0.04;  ///< Max merge distance (m).
    double normal_agreement = 0.7;       ///< Min cosine for merging.
    float max_confidence = 80.0f;
  };

  /// Fuses one frame: for every valid pixel, either updates a matching
  /// surfel or inserts a new one. `vertices`/`normals` are camera-space
  /// maps of the input frame; `intensity` may be empty.
  /// Association and update work is counted as Kernel::kSurfelFusion.
  void fuse(const hm::geometry::VertexMap& vertices,
            const hm::geometry::NormalMap& normals,
            const hm::geometry::IntensityImage& intensity, const SE3& pose,
            std::uint32_t frame_index, const FusionParams& params,
            KernelStats& stats);

  /// Projects the *active* model into the camera with z-buffering: stable
  /// surfels (confidence >= threshold) plus — as in ElasticFusion's
  /// time-windowed active model — unstable surfels observed within
  /// `unstable_window` frames of `current_frame` (0 = stable only).
  /// Projection work is counted as Kernel::kSurfelFusion.
  [[nodiscard]] ModelView project(const Intrinsics& intrinsics, const SE3& pose,
                                  double confidence_threshold,
                                  std::uint32_t current_frame,
                                  std::uint32_t unstable_window,
                                  KernelStats& stats) const;

  /// Rigidly transforms every surfel (the simplified deformation applied on
  /// loop closure; see DESIGN.md).
  void transform(const SE3& correction);

  /// Map maintenance, after ElasticFusion's cleanup: removes surfels that
  /// never reached `confidence_threshold` and have not been observed within
  /// `max_age` frames of `current_frame` (stale unstable points, typically
  /// sensor noise). Returns the number removed. Work is counted as
  /// Kernel::kSurfelFusion.
  std::size_t prune(std::uint32_t current_frame, std::uint32_t max_age,
                    double confidence_threshold, KernelStats& stats);

  /// Serializes surfels at or above `confidence_threshold` as an ASCII PLY
  /// point cloud with per-point normals and grayscale color.
  [[nodiscard]] std::string to_ply(double confidence_threshold = 0.0) const;

 private:
  using CellKey = std::uint64_t;
  [[nodiscard]] CellKey cell_of(Vec3f position) const;
  static CellKey pack(std::int32_t x, std::int32_t y, std::int32_t z);

  double cell_size_;
  std::vector<Surfel> surfels_;
  // Spatial hash: cell -> surfel indices. Unordered by design and only
  // ever *looked up* (association, rebuild after transform/prune) — no
  // export may iterate it. Exports (to_ply) walk the insertion-ordered
  // `surfels_` vector, which keeps PLY output byte-stable across reruns;
  // hm-lint's no-unordered-output-iteration rule guards this invariant.
  std::unordered_map<CellKey, std::vector<std::uint32_t>> grid_;
};

}  // namespace hm::elasticfusion
