#include "kfusion/mesh.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace hm::kfusion {

using hm::geometry::Vec3f;

double Mesh::total_area() const {
  double area = 0.0;
  for (const Triangle& triangle : triangles) {
    area += static_cast<double>(triangle.area());
  }
  return area;
}

Mesh::Bounds Mesh::bounds() const {
  if (triangles.empty()) return {};
  Bounds out{triangles.front().a, triangles.front().a};
  auto extend = [&out](Vec3f v) {
    out.min = {std::min(out.min.x, v.x), std::min(out.min.y, v.y),
               std::min(out.min.z, v.z)};
    out.max = {std::max(out.max.x, v.x), std::max(out.max.y, v.y),
               std::max(out.max.z, v.z)};
  };
  for (const Triangle& triangle : triangles) {
    extend(triangle.a);
    extend(triangle.b);
    extend(triangle.c);
  }
  return out;
}

namespace {

struct Corner {
  Vec3f position;
  float value;
};

/// Linear interpolation of the zero crossing on a tetrahedron edge.
Vec3f zero_crossing(const Corner& a, const Corner& b) {
  const float denom = a.value - b.value;
  // hm-lint: allow(no-float-equality) exact zero guards the interpolation divisor
  const float t = denom == 0.0f ? 0.5f : a.value / denom;
  return a.position + (b.position - a.position) * std::clamp(t, 0.0f, 1.0f);
}

/// Emits 0-2 triangles for one tetrahedron via the marching-tetrahedra
/// cases (inside = value < 0).
void polygonize_tetrahedron(const std::array<Corner, 4>& corners,
                            std::vector<Triangle>& out) {
  int inside_mask = 0;
  for (int i = 0; i < 4; ++i) {
    if (corners[static_cast<std::size_t>(i)].value < 0.0f) inside_mask |= 1 << i;
  }
  if (inside_mask == 0 || inside_mask == 0xF) return;

  // Orient each case so triangles keep a consistent winding (normal toward
  // positive/outside values).
  auto c = [&](int i) -> const Corner& {
    return corners[static_cast<std::size_t>(i)];
  };
  auto emit = [&](Vec3f a, Vec3f b, Vec3f d, Vec3f inside_point) {
    Triangle triangle{a, b, d};
    // Flip if the normal points toward the inside vertex.
    const Vec3f centroid = (a + b + d) / 3.0f;
    if (triangle.normal().dot(inside_point - centroid) > 0.0f) {
      std::swap(triangle.b, triangle.c);
    }
    out.push_back(triangle);
  };

  // One vertex inside (or its complement: one outside).
  auto one_corner_case = [&](int apex, bool apex_inside) {
    const int others[3] = {apex == 0 ? 1 : 0, apex < 2 ? 2 : 1, apex < 3 ? 3 : 2};
    const Vec3f p0 = zero_crossing(c(apex), c(others[0]));
    const Vec3f p1 = zero_crossing(c(apex), c(others[1]));
    const Vec3f p2 = zero_crossing(c(apex), c(others[2]));
    const Vec3f reference = apex_inside
                                ? c(apex).position
                                : (c(others[0]).position + c(others[1]).position +
                                   c(others[2]).position) / 3.0f;
    emit(p0, p1, p2, reference);
  };

  switch (inside_mask) {
    case 0x1: one_corner_case(0, true); break;
    case 0x2: one_corner_case(1, true); break;
    case 0x4: one_corner_case(2, true); break;
    case 0x8: one_corner_case(3, true); break;
    case 0xE: one_corner_case(0, false); break;
    case 0xD: one_corner_case(1, false); break;
    case 0xB: one_corner_case(2, false); break;
    case 0x7: one_corner_case(3, false); break;
    default: {
      // Two inside, two outside: a quad split into two triangles.
      int inside[2], outside[2];
      int ni = 0, no = 0;
      for (int i = 0; i < 4; ++i) {
        if ((inside_mask >> i) & 1) {
          inside[ni++] = i;
        } else {
          outside[no++] = i;
        }
      }
      const Vec3f p00 = zero_crossing(c(inside[0]), c(outside[0]));
      const Vec3f p01 = zero_crossing(c(inside[0]), c(outside[1]));
      const Vec3f p10 = zero_crossing(c(inside[1]), c(outside[0]));
      const Vec3f p11 = zero_crossing(c(inside[1]), c(outside[1]));
      const Vec3f inside_mid =
          (c(inside[0]).position + c(inside[1]).position) * 0.5f;
      emit(p00, p01, p11, inside_mid);
      emit(p00, p11, p10, inside_mid);
      break;
    }
  }
}

/// The six tetrahedra tiling a cube, as corner indices of the cube's
/// standard corner order (x + 2y + 4z bit pattern).
constexpr int kTetrahedra[6][4] = {
    {0, 5, 1, 6}, {0, 1, 3, 6}, {0, 3, 2, 6},
    {0, 2, 7, 6}, {0, 7, 4, 6}, {0, 4, 5, 6},
};
// Corner index bit pattern -> (dx, dy, dz).
constexpr int kCornerOffset[8][3] = {
    {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
    {0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
};

}  // namespace

Mesh extract_mesh(const TsdfVolume& volume, float min_weight) {
  Mesh mesh;
  const int n = volume.resolution();
  const auto voxel = static_cast<float>(volume.voxel_size());

  std::array<Corner, 8> cube;
  for (int z = 0; z + 1 < n; ++z) {
    for (int y = 0; y + 1 < n; ++y) {
      for (int x = 0; x + 1 < n; ++x) {
        bool observed = true;
        bool any_negative = false, any_positive = false;
        for (int corner = 0; corner < 8 && observed; ++corner) {
          const int cx = x + kCornerOffset[corner][0];
          const int cy = y + kCornerOffset[corner][1];
          const int cz = z + kCornerOffset[corner][2];
          if (volume.weight_at(cx, cy, cz) < min_weight) {
            observed = false;
            break;
          }
          const float value = volume.tsdf_at(cx, cy, cz);
          any_negative |= value < 0.0f;
          any_positive |= value >= 0.0f;
          cube[static_cast<std::size_t>(corner)] = Corner{
              Vec3f{(static_cast<float>(cx) + 0.5f) * voxel,
                    (static_cast<float>(cy) + 0.5f) * voxel,
                    (static_cast<float>(cz) + 0.5f) * voxel},
              value};
        }
        if (!observed || !any_negative || !any_positive) continue;
        for (const auto& tetra : kTetrahedra) {
          polygonize_tetrahedron({cube[static_cast<std::size_t>(tetra[0])],
                                  cube[static_cast<std::size_t>(tetra[1])],
                                  cube[static_cast<std::size_t>(tetra[2])],
                                  cube[static_cast<std::size_t>(tetra[3])]},
                                 mesh.triangles);
        }
      }
    }
  }
  return mesh;
}

std::string to_obj(const Mesh& mesh) {
  std::string out;
  out.reserve(mesh.triangles.size() * 120);
  char line[128];
  for (const Triangle& triangle : mesh.triangles) {
    for (const Vec3f v : {triangle.a, triangle.b, triangle.c}) {
      const int len = std::snprintf(line, sizeof(line), "v %g %g %g\n",
                                    static_cast<double>(v.x),
                                    static_cast<double>(v.y),
                                    static_cast<double>(v.z));
      out.append(line, static_cast<std::size_t>(len));
    }
  }
  for (std::size_t i = 0; i < mesh.triangles.size(); ++i) {
    const auto base = static_cast<unsigned long>(3 * i + 1);
    const int len = std::snprintf(line, sizeof(line), "f %lu %lu %lu\n", base,
                                  base + 1, base + 2);
    out.append(line, static_cast<std::size_t>(len));
  }
  return out;
}

}  // namespace hm::kfusion
