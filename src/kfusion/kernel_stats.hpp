// Per-kernel work counters. Every kernel in both SLAM pipelines counts the
// elementary operations it performs (pixels filtered, correspondences
// tested, voxels touched, ray steps marched, surfels fused). The device
// cost model (slambench/device.hpp) converts these counts into seconds,
// which is how the experiments obtain deterministic, device-differentiated
// runtimes from a single host execution (see DESIGN.md, substitutions).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hm::kfusion {

/// Which implementation of a vectorizable kernel to run. kAuto resolves to
/// the SIMD path when the build has a vector backend (hm::simd::kEnabled)
/// and to the scalar reference otherwise; the explicit values exist for the
/// scalar-vs-SIMD equivalence tests and the micro-benchmarks.
enum class KernelPath {
  kAuto = 0,
  kScalar,
  kSimd,
};

/// Kernel classes across both pipelines. Keep in sync with kKernelNames.
enum class Kernel : std::size_t {
  kDownsample = 0,    ///< Compute-size-ratio block averaging (per input pixel).
  kBilateral,         ///< Bilateral filter (per filter tap).
  kPyramid,           ///< Pyramid block averaging (per output pixel tap).
  kVertexNormal,      ///< Depth -> vertex/normal map (per pixel).
  kIcp,               ///< ICP data association + reduction (per pixel test).
  kSolve,             ///< 6x6 normal-equation solve (per solve).
  kIntegrate,         ///< TSDF voxel update (per voxel visited).
  kRaycast,           ///< TSDF ray marching (per step).
  kSurfelFusion,      ///< Surfel association/update (per surfel op).
  kRgbTrack,          ///< Photometric residual evaluation (per pixel test).
  kSo3Prealign,       ///< Rotation pre-alignment (per pixel test).
  kLoopClosure,       ///< Fern encoding/matching + deformation (per op).
  kCount,
};

inline constexpr std::array<std::string_view, static_cast<std::size_t>(Kernel::kCount)>
    kKernelNames = {
        "downsample", "bilateral", "pyramid",       "vertex_normal",
        "icp",        "solve",     "integrate",     "raycast",
        "surfel_fusion", "rgb_track", "so3_prealign", "loop_closure",
};

/// Plain accumulator. Not thread-safe; parallel kernels accumulate into
/// per-worker instances and merge (operator+=).
class KernelStats {
 public:
  void add(Kernel kernel, std::uint64_t ops) noexcept {
    counts_[static_cast<std::size_t>(kernel)] += ops;
  }

  [[nodiscard]] std::uint64_t count(Kernel kernel) const noexcept {
    return counts_[static_cast<std::size_t>(kernel)];
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : counts_) sum += c;
    return sum;
  }

  KernelStats& operator+=(const KernelStats& other) noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    return *this;
  }

  void reset() noexcept { counts_.fill(0); }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Kernel::kCount)> counts_{};
};

}  // namespace hm::kfusion
