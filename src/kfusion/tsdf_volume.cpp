#include "kfusion/tsdf_volume.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hm::kfusion {

TsdfVolume::TsdfVolume(int resolution, double size)
    : resolution_(resolution),
      size_(size),
      voxel_size_(size / resolution),
      tsdf_(static_cast<std::size_t>(resolution) * resolution * resolution, 1.0f),
      weight_(static_cast<std::size_t>(resolution) * resolution * resolution, 0.0f) {
  assert(resolution > 0 && size > 0.0);
}

void TsdfVolume::clear() {
  std::fill(tsdf_.begin(), tsdf_.end(), 1.0f);
  std::fill(weight_.begin(), weight_.end(), 0.0f);
}

void TsdfVolume::integrate(const DepthImage& depth, const Intrinsics& intrinsics,
                           const SE3& camera_to_world, double mu,
                           KernelStats& stats, hm::common::ThreadPool* pool) {
  const SE3 world_to_camera = camera_to_world.inverse();
  const float max_weight = 100.0f;
  const auto mu_f = static_cast<float>(std::max(mu, voxel_size_));

  // Frustum bounding box in voxel coordinates: the camera position plus the
  // four far-plane corners at the maximum valid depth.
  float max_depth = 0.0f;
  for (const float z : depth) max_depth = std::max(max_depth, z);
  if (max_depth <= 0.0f) return;
  const double far = static_cast<double>(max_depth) + mu;

  Vec3d box_min = camera_to_world.translation;
  Vec3d box_max = camera_to_world.translation;
  const int corners[4][2] = {{0, 0},
                             {intrinsics.width - 1, 0},
                             {0, intrinsics.height - 1},
                             {intrinsics.width - 1, intrinsics.height - 1}};
  for (const auto& corner : corners) {
    const Vec3d p =
        camera_to_world * (intrinsics.ray_direction(corner[0], corner[1]) * far);
    box_min = {std::min(box_min.x, p.x), std::min(box_min.y, p.y),
               std::min(box_min.z, p.z)};
    box_max = {std::max(box_max.x, p.x), std::max(box_max.y, p.y),
               std::max(box_max.z, p.z)};
  }
  const auto clamp_voxel = [&](double w) {
    return std::clamp(static_cast<int>(std::floor(w / voxel_size_)), 0,
                      resolution_ - 1);
  };
  const int x0 = clamp_voxel(box_min.x), x1 = clamp_voxel(box_max.x);
  const int y0 = clamp_voxel(box_min.y), y1 = clamp_voxel(box_max.y);
  const int z0 = clamp_voxel(box_min.z), z1 = clamp_voxel(box_max.z);

  // Row-major world axes of the camera rotation for incremental transforms.
  const auto& r = world_to_camera.rotation;
  const Vec3d t = world_to_camera.translation;

  // Single-precision camera constants for the hot loop; the incremental
  // per-x step uses doubles for the running point to avoid drift across a
  // 256-voxel row, but projection and the TSDF update run in float.
  const auto fx = static_cast<float>(intrinsics.fx);
  const auto fy = static_cast<float>(intrinsics.fy);
  const auto cx0 = static_cast<float>(intrinsics.cx);
  const auto cy0 = static_cast<float>(intrinsics.cy);
  const float width_f = static_cast<float>(intrinsics.width);
  const float height_f = static_cast<float>(intrinsics.height);
  const float inv_mu = 1.0f / mu_f;
  const float* depth_data = depth.data();
  const int depth_width = intrinsics.width;

  auto integrate_slices = [&](std::size_t z_begin, std::size_t z_end,
                              std::uint64_t local_visited) {
    for (std::size_t zi = z_begin; zi < z_end; ++zi) {
      const double wz = (static_cast<double>(zi) + 0.5) * voxel_size_;
      for (int yi = y0; yi <= y1; ++yi) {
        const double wy = (static_cast<double>(yi) + 0.5) * voxel_size_;
        // Camera-space point for (x0, yi, zi); stepping x adds one column of R.
        double cxd = r(0, 0) * ((x0 + 0.5) * voxel_size_) + r(0, 1) * wy +
                     r(0, 2) * wz + t.x;
        double cyd = r(1, 0) * ((x0 + 0.5) * voxel_size_) + r(1, 1) * wy +
                     r(1, 2) * wz + t.y;
        double czd = r(2, 0) * ((x0 + 0.5) * voxel_size_) + r(2, 1) * wy +
                     r(2, 2) * wz + t.z;
        const double step_x = r(0, 0) * voxel_size_;
        const double step_y = r(1, 0) * voxel_size_;
        const double step_z = r(2, 0) * voxel_size_;
        std::size_t base = index(x0, yi, static_cast<int>(zi));
        for (int xi = x0; xi <= x1;
             ++xi, cxd += step_x, cyd += step_y, czd += step_z, ++base) {
          ++local_visited;
          const auto cz = static_cast<float>(czd);
          if (cz <= 1e-6f) continue;  // Behind the camera.
          // Project; nearest-neighbor depth lookup as in KFusion.
          const float uf = fx * static_cast<float>(cxd) / cz + cx0;
          const float vf = fy * static_cast<float>(cyd) / cz + cy0;
          if (uf < 0.0f || vf < 0.0f || uf >= width_f || vf >= height_f) {
            continue;
          }
          const int u = static_cast<int>(uf);
          const int v = static_cast<int>(vf);
          const float measured =
              depth_data[static_cast<std::size_t>(v) *
                             static_cast<std::size_t>(depth_width) +
                         static_cast<std::size_t>(u)];
          if (measured <= 0.0f) continue;
          // Signed distance along the ray, point-to-plane approximation.
          const float sdf = measured - cz;
          if (sdf < -mu_f) continue;  // Occluded beyond truncation.
          const float truncated = std::min(1.0f, sdf * inv_mu);
          float& tsdf_value = tsdf_[base];
          float& weight_value = weight_[base];
          tsdf_value = (tsdf_value * weight_value + truncated) /
                       (weight_value + 1.0f);
          weight_value = std::min(weight_value + 1.0f, max_weight);
        }
      }
    }
    return local_visited;
  };

  // Writes go to disjoint z-slices per chunk; only the visited counter needs
  // reducing, so the atomic accumulator is gone.
  const std::uint64_t visited = hm::common::parallel_reduce(
      pool, static_cast<std::size_t>(z0), static_cast<std::size_t>(z1) + 1,
      std::uint64_t{0}, integrate_slices,
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      /*grain=*/2);
  stats.add(Kernel::kIntegrate, visited);
}

std::optional<float> TsdfVolume::sample(Vec3d world) const {
  // Convert to continuous voxel coordinates (voxel centers at +0.5).
  const double gx = world.x / voxel_size_ - 0.5;
  const double gy = world.y / voxel_size_ - 0.5;
  const double gz = world.z / voxel_size_ - 0.5;
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const int z0 = static_cast<int>(std::floor(gz));
  if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
      y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
    return std::nullopt;
  }
  const double fx = gx - x0, fy = gy - y0, fz = gz - z0;
  double value = 0.0;
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const std::size_t i = index(x0 + dx, y0 + dy, z0 + dz);
        if (weight_[i] <= 0.0f) return std::nullopt;
        const double w = (dx != 0 ? fx : 1.0 - fx) * (dy != 0 ? fy : 1.0 - fy) *
                         (dz != 0 ? fz : 1.0 - fz);
        value += w * static_cast<double>(tsdf_[i]);
      }
    }
  }
  return static_cast<float>(value);
}

std::optional<Vec3f> TsdfVolume::gradient(Vec3d world) const {
  const double h = voxel_size_;
  const auto xp = sample({world.x + h, world.y, world.z});
  const auto xm = sample({world.x - h, world.y, world.z});
  const auto yp = sample({world.x, world.y + h, world.z});
  const auto ym = sample({world.x, world.y - h, world.z});
  const auto zp = sample({world.x, world.y, world.z + h});
  const auto zm = sample({world.x, world.y, world.z - h});
  if (!xp || !xm || !yp || !ym || !zp || !zm) return std::nullopt;
  return Vec3f{*xp - *xm, *yp - *ym, *zp - *zm};
}

float TsdfVolume::tsdf_at(int x, int y, int z) const {
  assert(x >= 0 && y >= 0 && z >= 0 && x < resolution_ && y < resolution_ &&
         z < resolution_);
  return tsdf_[index(x, y, z)];
}

float TsdfVolume::weight_at(int x, int y, int z) const {
  assert(x >= 0 && y >= 0 && z >= 0 && x < resolution_ && y < resolution_ &&
         z < resolution_);
  return weight_[index(x, y, z)];
}

double TsdfVolume::occupancy() const {
  std::size_t occupied = 0;
  for (const float w : weight_) occupied += w > 0.0f ? 1 : 0;
  return static_cast<double>(occupied) / static_cast<double>(weight_.size());
}

}  // namespace hm::kfusion
