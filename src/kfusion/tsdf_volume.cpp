#include "kfusion/tsdf_volume.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "common/simd.hpp"

namespace hm::kfusion {

namespace s = hm::simd;

TsdfVolume::TsdfVolume(int resolution, double size)
    : resolution_(resolution),
      size_(size),
      voxel_size_(size / resolution),
      tsdf_(static_cast<std::size_t>(resolution) * resolution * resolution, 1.0f),
      weight_(static_cast<std::size_t>(resolution) * resolution * resolution, 0.0f) {
  assert(resolution > 0 && size > 0.0);
  // resolution^3 must fit in the int32 gather indices of the SIMD sample.
  assert(resolution <= 1024);
  const std::int32_t res = resolution;
  const std::int32_t res2 = res * res;
  // Lane order lane = dz*4 + dy*2 + dx, dx fastest.
  corner_offsets_ = {0,    1,        res,        res + 1,
                     res2, res2 + 1, res2 + res, res2 + res + 1};
}

void TsdfVolume::clear() {
  std::fill(tsdf_.begin(), tsdf_.end(), 1.0f);
  std::fill(weight_.begin(), weight_.end(), 0.0f);
}

void TsdfVolume::integrate(const DepthImage& depth, const Intrinsics& intrinsics,
                           const SE3& camera_to_world, double mu,
                           KernelStats& stats, hm::common::ThreadPool* pool,
                           KernelPath path) {
  const SE3 world_to_camera = camera_to_world.inverse();
  const float max_weight = 100.0f;
  const auto mu_f = static_cast<float>(std::max(mu, voxel_size_));

  // Frustum bounding box in voxel coordinates: the camera position plus the
  // four far-plane corners at the maximum valid depth.
  float max_depth = 0.0f;
  for (int v = 0; v < depth.height(); ++v) {
    const float* row = depth.row(v);
    for (int u = 0; u < depth.width(); ++u) {
      max_depth = std::max(max_depth, row[u]);
    }
  }
  if (max_depth <= 0.0f) return;
  const double far = static_cast<double>(max_depth) + mu;

  Vec3d box_min = camera_to_world.translation;
  Vec3d box_max = camera_to_world.translation;
  const int corners[4][2] = {{0, 0},
                             {intrinsics.width - 1, 0},
                             {0, intrinsics.height - 1},
                             {intrinsics.width - 1, intrinsics.height - 1}};
  for (const auto& corner : corners) {
    const Vec3d p =
        camera_to_world * (intrinsics.ray_direction(corner[0], corner[1]) * far);
    box_min = {std::min(box_min.x, p.x), std::min(box_min.y, p.y),
               std::min(box_min.z, p.z)};
    box_max = {std::max(box_max.x, p.x), std::max(box_max.y, p.y),
               std::max(box_max.z, p.z)};
  }
  const auto clamp_voxel = [&](double w) {
    return std::clamp(static_cast<int>(std::floor(w / voxel_size_)), 0,
                      resolution_ - 1);
  };
  const int x0 = clamp_voxel(box_min.x), x1 = clamp_voxel(box_max.x);
  const int y0 = clamp_voxel(box_min.y), y1 = clamp_voxel(box_max.y);
  const int z0 = clamp_voxel(box_min.z), z1 = clamp_voxel(box_max.z);

  // Single-precision pose and camera constants. The whole per-voxel chain
  // (world point -> camera point -> projection -> TSDF update) runs in
  // float with explicit fmadd_s/vfma shapes so the scalar reference and the
  // SIMD lanes are bit-identical (DESIGN.md §9).
  const auto& r = world_to_camera.rotation;
  const Vec3d t = world_to_camera.translation;
  const auto r00 = static_cast<float>(r(0, 0)), r01 = static_cast<float>(r(0, 1)),
             r02 = static_cast<float>(r(0, 2));
  const auto r10 = static_cast<float>(r(1, 0)), r11 = static_cast<float>(r(1, 1)),
             r12 = static_cast<float>(r(1, 2));
  const auto r20 = static_cast<float>(r(2, 0)), r21 = static_cast<float>(r(2, 1)),
             r22 = static_cast<float>(r(2, 2));
  const auto tx = static_cast<float>(t.x), ty = static_cast<float>(t.y),
             tz = static_cast<float>(t.z);
  const auto fx = static_cast<float>(intrinsics.fx);
  const auto fy = static_cast<float>(intrinsics.fy);
  const auto cx0 = static_cast<float>(intrinsics.cx);
  const auto cy0 = static_cast<float>(intrinsics.cy);
  const float width_f = static_cast<float>(intrinsics.width);
  const float height_f = static_cast<float>(intrinsics.height);
  const float inv_mu = 1.0f / mu_f;
  const float voxel_f = static_cast<float>(voxel_size_);
  const float* depth_data = depth.data();
  const int depth_pitch = depth.pitch();

  const bool use_simd =
      path == KernelPath::kSimd || (path == KernelPath::kAuto && s::kEnabled);

  // Scalar mirror of one SIMD lane: same fmadd/min shapes, same truncating
  // float->int conversion. Used by the scalar path and the ragged row tail.
  const auto update_voxel = [&](int xi, float Kx, float Ky, float Kz,
                                std::size_t base) {
    const float wx = (static_cast<float>(xi) + 0.5f) * voxel_f;
    const float cx = s::fmadd_s(r00, wx, Kx);
    const float cy = s::fmadd_s(r10, wx, Ky);
    const float cz = s::fmadd_s(r20, wx, Kz);
    if (cz <= 1e-6f) return;  // Behind the camera.
    // Project; nearest-neighbor depth lookup as in KFusion.
    const float uf = s::fmadd_s(fx, cx / cz, cx0);
    const float vf = s::fmadd_s(fy, cy / cz, cy0);
    if (uf < 0.0f || vf < 0.0f || uf >= width_f || vf >= height_f) return;
    const int u = static_cast<int>(uf);
    const int v = static_cast<int>(vf);
    const float measured =
        depth_data[static_cast<std::size_t>(v) *
                       static_cast<std::size_t>(depth_pitch) +
                   static_cast<std::size_t>(u)];
    if (measured <= 0.0f) return;
    // Signed distance along the ray, point-to-plane approximation.
    const float sdf = measured - cz;
    if (sdf < -mu_f) return;  // Occluded beyond truncation.
    const float truncated = s::min_s(1.0f, sdf * inv_mu);
    const float t_old = tsdf_[base];
    const float w_old = weight_[base];
    tsdf_[base] = s::fmadd_s(t_old, w_old, truncated) / (w_old + 1.0f);
    weight_[base] = s::min_s(w_old + 1.0f, max_weight);
  };

  const s::vfloat r00B = s::vbroadcast(r00), r10B = s::vbroadcast(r10),
                  r20B = s::vbroadcast(r20);
  const s::vfloat fxB = s::vbroadcast(fx), fyB = s::vbroadcast(fy);
  const s::vfloat cx0B = s::vbroadcast(cx0), cy0B = s::vbroadcast(cy0);
  const s::vfloat widthB = s::vbroadcast(width_f), heightB = s::vbroadcast(height_f);
  const s::vfloat zeroB = s::vzero(), oneB = s::vbroadcast(1.0f);
  const s::vfloat halfB = s::vbroadcast(0.5f), voxelB = s::vbroadcast(voxel_f);
  const s::vfloat epsB = s::vbroadcast(1e-6f), neg_muB = s::vbroadcast(-mu_f);
  const s::vfloat inv_muB = s::vbroadcast(inv_mu), maxwB = s::vbroadcast(max_weight);
  const s::vint pitchB = s::vbroadcast_i(depth_pitch);
  const s::vfloat iota = s::viota();

  // kWidth voxels along x per iteration. Invalid lanes are masked out of
  // the depth gather and blended back to their old voxel values; stores are
  // full-width but stay inside the row (x1 bounds the group) and each
  // parallel chunk owns whole z-slices, so no write crosses a chunk.
  const auto integrate_row_simd = [&](float Kx, float Ky, float Kz,
                                      std::size_t row_base) {
    const s::vfloat KxB = s::vbroadcast(Kx);
    const s::vfloat KyB = s::vbroadcast(Ky);
    const s::vfloat KzB = s::vbroadcast(Kz);
    int xi = x0;
    std::size_t base = row_base;
    for (; xi + s::kWidth <= x1 + 1; xi += s::kWidth, base += s::kWidth) {
      const s::vfloat xi_f = iota + s::vbroadcast(static_cast<float>(xi));
      const s::vfloat wx = (xi_f + halfB) * voxelB;
      const s::vfloat cx = s::vfma(r00B, wx, KxB);
      const s::vfloat cy = s::vfma(r10B, wx, KyB);
      const s::vfloat cz = s::vfma(r20B, wx, KzB);
      s::vmask valid = s::cmp_gt(cz, epsB);
      if (s::mask_none(valid)) continue;
      // Lanes with cz ~ 0 produce inf/NaN here; the bounds compares reject
      // them (NaN compares false), and the gather never dereferences them.
      const s::vfloat uf = s::vfma(fxB, cx / cz, cx0B);
      const s::vfloat vf = s::vfma(fyB, cy / cz, cy0B);
      valid = s::mask_and(valid, s::cmp_ge(uf, zeroB));
      valid = s::mask_and(valid, s::cmp_ge(vf, zeroB));
      valid = s::mask_and(valid, s::cmp_lt(uf, widthB));
      valid = s::mask_and(valid, s::cmp_lt(vf, heightB));
      const s::vint u_i = s::vtrunc_i(uf);
      const s::vint v_i = s::vtrunc_i(vf);
      const s::vint idx = s::vadd_i(s::vmul_i(v_i, pitchB), u_i);
      const s::vfloat measured = s::vgather_masked(depth_data, idx, valid);
      valid = s::mask_and(valid, s::cmp_gt(measured, zeroB));
      const s::vfloat sdf = measured - cz;
      valid = s::mask_and(valid, s::cmp_ge(sdf, neg_muB));
      if (s::mask_none(valid)) continue;
      const s::vfloat truncated = s::vmin(oneB, sdf * inv_muB);
      float* tsdf_ptr = tsdf_.data() + base;
      float* weight_ptr = weight_.data() + base;
      const s::vfloat t_old = s::vload(tsdf_ptr);
      const s::vfloat w_old = s::vload(weight_ptr);
      const s::vfloat t_new = s::vfma(t_old, w_old, truncated) / (w_old + oneB);
      const s::vfloat w_new = s::vmin(w_old + oneB, maxwB);
      s::vstore(tsdf_ptr, s::vselect(valid, t_new, t_old));
      s::vstore(weight_ptr, s::vselect(valid, w_new, w_old));
    }
    for (; xi <= x1; ++xi, ++base) {
      update_voxel(xi, Kx, Ky, Kz, base);
    }
  };

  auto integrate_slices = [&](std::size_t z_begin, std::size_t z_end,
                              std::uint64_t local_visited) {
    const auto row_len = static_cast<std::uint64_t>(x1 - x0 + 1);
    for (std::size_t zi = z_begin; zi < z_end; ++zi) {
      const float wz = (static_cast<float>(zi) + 0.5f) * voxel_f;
      for (int yi = y0; yi <= y1; ++yi) {
        const float wy = (static_cast<float>(yi) + 0.5f) * voxel_f;
        // Per-row camera-space constants: c = R*(wx, wy, wz) + t with the
        // wx term left for the inner loop. Computed once in scalar float,
        // broadcast into the vector path.
        const float Kx = s::fmadd_s(r01, wy, s::fmadd_s(r02, wz, tx));
        const float Ky = s::fmadd_s(r11, wy, s::fmadd_s(r12, wz, ty));
        const float Kz = s::fmadd_s(r21, wy, s::fmadd_s(r22, wz, tz));
        const std::size_t row_base = index(x0, yi, static_cast<int>(zi));
        if (use_simd) {
          integrate_row_simd(Kx, Ky, Kz, row_base);
        } else {
          std::size_t base = row_base;
          for (int xi = x0; xi <= x1; ++xi, ++base) {
            update_voxel(xi, Kx, Ky, Kz, base);
          }
        }
        local_visited += row_len;
      }
    }
    return local_visited;
  };

  // Writes go to disjoint z-slices per chunk; only the visited counter needs
  // reducing. Fixed grain: chunk boundaries must not depend on thread count.
  const std::uint64_t visited = hm::common::parallel_reduce(
      pool, static_cast<std::size_t>(z0), static_cast<std::size_t>(z1) + 1,
      std::uint64_t{0}, integrate_slices,
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      /*grain=*/2);
  stats.add(Kernel::kIntegrate, visited);
}

std::optional<float> TsdfVolume::sample(Vec3d world) const {
  // Convert to continuous voxel coordinates (voxel centers at +0.5).
  const double gx = world.x / voxel_size_ - 0.5;
  const double gy = world.y / voxel_size_ - 0.5;
  const double gz = world.z / voxel_size_ - 0.5;
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const int z0 = static_cast<int>(std::floor(gz));
  if (x0 < 0 || y0 < 0 || z0 < 0 || x0 + 1 >= resolution_ ||
      y0 + 1 >= resolution_ || z0 + 1 >= resolution_) {
    return std::nullopt;
  }
  const double fx = gx - x0, fy = gy - y0, fz = gz - z0;
  double value = 0.0;
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const std::size_t i = index(x0 + dx, y0 + dy, z0 + dz);
        if (weight_[i] <= 0.0f) return std::nullopt;
        const double w = (dx != 0 ? fx : 1.0 - fx) * (dy != 0 ? fy : 1.0 - fy) *
                         (dz != 0 ? fz : 1.0 - fz);
        value += w * static_cast<double>(tsdf_[i]);
      }
    }
  }
  return static_cast<float>(value);
}

namespace {

/// Continuous voxel coordinates plus the integer cell, shared by both
/// sample_f paths so their setup is identical by construction.
struct SampleSetup {
  bool inside = false;
  int x0 = 0, y0 = 0, z0 = 0;
  float fx = 0.0f, fy = 0.0f, fz = 0.0f;
};

SampleSetup sample_setup(Vec3f world, float voxel_f, int resolution) {
  SampleSetup out;
  const float gx = world.x / voxel_f - 0.5f;
  const float gy = world.y / voxel_f - 0.5f;
  const float gz = world.z / voxel_f - 0.5f;
  const float fgx = std::floor(gx);
  const float fgy = std::floor(gy);
  const float fgz = std::floor(gz);
  // Bounds-check in float before any int conversion (NaN compares false).
  const float max_cell = static_cast<float>(resolution - 2);
  if (!(fgx >= 0.0f && fgx <= max_cell && fgy >= 0.0f && fgy <= max_cell &&
        fgz >= 0.0f && fgz <= max_cell)) {
    return out;
  }
  out.inside = true;
  out.x0 = static_cast<int>(fgx);
  out.y0 = static_cast<int>(fgy);
  out.z0 = static_cast<int>(fgz);
  out.fx = gx - fgx;
  out.fy = gy - fgy;
  out.fz = gz - fgz;
  return out;
}

// Corner parity tables in lane order (dx fastest): 1.0 where the corner is
// on the +1 side of the axis. Loaded as vectors to build the weight selects.
alignas(64) constexpr float kCornerDx[8] = {0, 1, 0, 1, 0, 1, 0, 1};
alignas(64) constexpr float kCornerDy[8] = {0, 0, 1, 1, 0, 0, 1, 1};
alignas(64) constexpr float kCornerDz[8] = {0, 0, 0, 0, 1, 1, 1, 1};

}  // namespace

std::optional<float> TsdfVolume::sample_f_scalar(Vec3f world) const {
  const SampleSetup c =
      sample_setup(world, static_cast<float>(voxel_size_), resolution_);
  if (!c.inside) return std::nullopt;
  const std::size_t base = index(c.x0, c.y0, c.z0);
  // LOCKSTEP MIRROR of sample_f_simd's corner loop: same corner order, same
  // (wx*wy)*wz product shape, same sequential sum over lane-order products.
  float value = 0.0f;
  for (int lane = 0; lane < 8; ++lane) {
    const std::size_t i = base + static_cast<std::size_t>(corner_offsets_[lane]);
    if (weight_[i] <= 0.0f) return std::nullopt;
    const float wx = (lane & 1) != 0 ? c.fx : 1.0f - c.fx;
    const float wy = (lane & 2) != 0 ? c.fy : 1.0f - c.fy;
    const float wz = (lane & 4) != 0 ? c.fz : 1.0f - c.fz;
    const float w = (wx * wy) * wz;
    value = value + w * tsdf_[i];
  }
  return value;
}

std::optional<float> TsdfVolume::sample_f_simd(Vec3f world) const {
  const SampleSetup c =
      sample_setup(world, static_cast<float>(voxel_size_), resolution_);
  if (!c.inside) return std::nullopt;
  const auto base = static_cast<std::int32_t>(index(c.x0, c.y0, c.z0));
  const s::vfloat zero = s::vzero();
  const s::vfloat one = s::vbroadcast(1.0f);
  const s::vfloat fxB = s::vbroadcast(c.fx);
  const s::vfloat fyB = s::vbroadcast(c.fy);
  const s::vfloat fzB = s::vbroadcast(c.fz);
  const s::vmask all = s::mask_first_n(s::kWidth);
  const s::vint baseB = s::vbroadcast_i(base);
  // The 8 trilinear corners in groups of kWidth lanes (1 group on AVX2,
  // 2 on the 4-wide backends). Zero-weight support voxels abort the sample,
  // exactly like the scalar reference.
  float value = 0.0f;
  for (int g = 0; g < 8; g += s::kWidth) {
    const s::vint idx = s::vadd_i(baseB, s::vload_i(corner_offsets_.data() + g));
    const s::vfloat wv = s::vgather_masked(weight_.data(), idx, all);
    if (!s::mask_all(s::cmp_gt(wv, zero))) return std::nullopt;
    const s::vfloat tv = s::vgather_masked(tsdf_.data(), idx, all);
    const s::vfloat wx =
        s::vselect(s::cmp_gt(s::vload(kCornerDx + g), zero), fxB, one - fxB);
    const s::vfloat wy =
        s::vselect(s::cmp_gt(s::vload(kCornerDy + g), zero), fyB, one - fyB);
    const s::vfloat wz =
        s::vselect(s::cmp_gt(s::vload(kCornerDz + g), zero), fzB, one - fzB);
    const s::vfloat prod = ((wx * wy) * wz) * tv;
    // Sequential lane-order sum so the result is bit-identical to the
    // scalar mirror (vreduce_add starts at 0; chain through `value`).
    float lanes[s::kWidth];
    s::vstore(lanes, prod);
    for (int lane = 0; lane < s::kWidth; ++lane) {
      value = value + lanes[lane];
    }
  }
  return value;
}

std::optional<float> TsdfVolume::sample_f(Vec3f world, KernelPath path) const {
  const bool use_simd =
      path == KernelPath::kSimd || (path == KernelPath::kAuto && s::kEnabled);
  return use_simd ? sample_f_simd(world) : sample_f_scalar(world);
}

std::optional<Vec3f> TsdfVolume::gradient(Vec3d world) const {
  const double h = voxel_size_;
  const auto xp = sample({world.x + h, world.y, world.z});
  const auto xm = sample({world.x - h, world.y, world.z});
  const auto yp = sample({world.x, world.y + h, world.z});
  const auto ym = sample({world.x, world.y - h, world.z});
  const auto zp = sample({world.x, world.y, world.z + h});
  const auto zm = sample({world.x, world.y, world.z - h});
  if (!xp || !xm || !yp || !ym || !zp || !zm) return std::nullopt;
  return Vec3f{*xp - *xm, *yp - *ym, *zp - *zm};
}

std::optional<Vec3f> TsdfVolume::gradient_f(Vec3f world, KernelPath path) const {
  const float h = voxel_size_f();
  const auto xp = sample_f({world.x + h, world.y, world.z}, path);
  const auto xm = sample_f({world.x - h, world.y, world.z}, path);
  const auto yp = sample_f({world.x, world.y + h, world.z}, path);
  const auto ym = sample_f({world.x, world.y - h, world.z}, path);
  const auto zp = sample_f({world.x, world.y, world.z + h}, path);
  const auto zm = sample_f({world.x, world.y, world.z - h}, path);
  if (!xp || !xm || !yp || !ym || !zp || !zm) return std::nullopt;
  return Vec3f{*xp - *xm, *yp - *ym, *zp - *zm};
}

float TsdfVolume::tsdf_at(int x, int y, int z) const {
  assert(x >= 0 && y >= 0 && z >= 0 && x < resolution_ && y < resolution_ &&
         z < resolution_);
  return tsdf_[index(x, y, z)];
}

float TsdfVolume::weight_at(int x, int y, int z) const {
  assert(x >= 0 && y >= 0 && z >= 0 && x < resolution_ && y < resolution_ &&
         z < resolution_);
  return weight_[index(x, y, z)];
}

double TsdfVolume::occupancy() const {
  std::size_t occupied = 0;
  for (const float w : weight_) occupied += w > 0.0f ? 1 : 0;
  return static_cast<double>(occupied) / static_cast<double>(weight_.size());
}

}  // namespace hm::kfusion
