#include "kfusion/pyramid.hpp"

#include "kfusion/preprocess.hpp"

namespace hm::kfusion {

VertexMap depth_to_vertices(const DepthImage& depth, const Intrinsics& intrinsics,
                            KernelStats& stats) {
  VertexMap vertices(depth.width(), depth.height(), Vec3f{});
  for (int v = 0; v < depth.height(); ++v) {
    for (int u = 0; u < depth.width(); ++u) {
      const float z = depth.at(u, v);
      if (z <= 0.0f) continue;
      vertices.set(u, v, hm::geometry::to_float(
                             intrinsics.unproject(u, v, static_cast<double>(z))));
    }
  }
  stats.add(Kernel::kVertexNormal, depth.size());
  return vertices;
}

NormalMap vertices_to_normals(const VertexMap& vertices, KernelStats& stats) {
  NormalMap normals(vertices.width(), vertices.height(), Vec3f{});
  for (int v = 1; v + 1 < vertices.height(); ++v) {
    for (int u = 1; u + 1 < vertices.width(); ++u) {
      const Vec3f center = vertices.at(u, v);
      const Vec3f left = vertices.at(u - 1, v);
      const Vec3f right = vertices.at(u + 1, v);
      const Vec3f up = vertices.at(u, v - 1);
      const Vec3f down = vertices.at(u, v + 1);
      // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
      if (center == Vec3f{} || left == Vec3f{} || right == Vec3f{} ||
          // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
          up == Vec3f{} || down == Vec3f{}) {
        continue;
      }
      const Vec3f du = right - left;
      const Vec3f dv = down - up;
      Vec3f n = du.cross(dv);
      const float norm = n.norm();
      if (norm < 1e-12f) continue;
      n = n / norm;
      // Orient toward the camera (camera-space origin): n . p must be < 0.
      if (n.dot(center) > 0.0f) n = -n;
      normals.set(u, v, n);
    }
  }
  stats.add(Kernel::kVertexNormal, vertices.size());
  return normals;
}

std::vector<PyramidLevel> build_pyramid(const DepthImage& filtered,
                                        const Intrinsics& intrinsics,
                                        int level_count, KernelStats& stats) {
  std::vector<PyramidLevel> pyramid;
  pyramid.reserve(static_cast<std::size_t>(level_count));
  DepthImage depth = filtered;
  Intrinsics level_intrinsics = intrinsics;
  for (int level = 0; level < level_count; ++level) {
    PyramidLevel entry;
    entry.intrinsics = level_intrinsics;
    entry.vertices = depth_to_vertices(depth, level_intrinsics, stats);
    entry.normals = vertices_to_normals(entry.vertices, stats);
    entry.depth = depth;
    pyramid.push_back(std::move(entry));
    if (level + 1 < level_count) {
      depth = halve_depth(depth, stats);
      level_intrinsics = level_intrinsics.scaled(2);
    }
  }
  return pyramid;
}

}  // namespace hm::kfusion
