#include "kfusion/icp.hpp"

#include <algorithm>
#include <cmath>

#include "common/simd.hpp"
#include "geometry/solve.hpp"

namespace hm::kfusion {

using hm::geometry::NormalEquations;
using hm::geometry::SE3;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

namespace s = hm::simd;

namespace {

struct Reduction {
  NormalEquations<6> equations;
  std::uint64_t tested = 0;        ///< Pixels with valid vertex+normal.
  std::uint64_t matched = 0;       ///< Pixels passing all gates.

  Reduction& operator+=(const Reduction& other) {
    equations += other.equations;
    tested += other.tested;
    matched += other.matched;
    return *this;
  }
};

/// Single-precision per-call constants for the association/residual math.
/// The transform, projection and gate arithmetic runs in float on both
/// paths with explicit fmadd_s/vfma shapes so the scalar reference and the
/// SIMD lanes make bit-identical gate decisions (DESIGN.md §9). Association
/// rounds to nearest-even (cvtps2dq semantics) rather than lround's
/// half-away-from-zero; at half-pixel ties this picks the even neighbor.
struct IcpConstants {
  float r00, r01, r02, r10, r11, r12, r20, r21, r22;  ///< pose rotation
  float tx, ty, tz;                                   ///< pose translation
  float w00, w01, w02, w10, w11, w12, w20, w21, w22;  ///< world->reference
  float wtx, wty, wtz;
  float fx, fy, cxm, cym;  ///< cxm/cym absorb the -0.5 pixel-center shift.
  float zmin;              ///< Minimum reference-camera depth (project()).
  float gate2;             ///< Squared correspondence distance gate.
  float ngate;             ///< Minimum normal cosine.
  int ref_width, ref_height, ref_pitch;
};

IcpConstants make_constants(const SE3& pose, const SE3& world_to_reference,
                            const Intrinsics& reference_intrinsics,
                            const RaycastResult& reference,
                            const IcpConfig& config) {
  IcpConstants k{};
  const auto& r = pose.rotation;
  k.r00 = static_cast<float>(r(0, 0)), k.r01 = static_cast<float>(r(0, 1));
  k.r02 = static_cast<float>(r(0, 2)), k.r10 = static_cast<float>(r(1, 0));
  k.r11 = static_cast<float>(r(1, 1)), k.r12 = static_cast<float>(r(1, 2));
  k.r20 = static_cast<float>(r(2, 0)), k.r21 = static_cast<float>(r(2, 1));
  k.r22 = static_cast<float>(r(2, 2));
  k.tx = static_cast<float>(pose.translation.x);
  k.ty = static_cast<float>(pose.translation.y);
  k.tz = static_cast<float>(pose.translation.z);
  const auto& w = world_to_reference.rotation;
  k.w00 = static_cast<float>(w(0, 0)), k.w01 = static_cast<float>(w(0, 1));
  k.w02 = static_cast<float>(w(0, 2)), k.w10 = static_cast<float>(w(1, 0));
  k.w11 = static_cast<float>(w(1, 1)), k.w12 = static_cast<float>(w(1, 2));
  k.w20 = static_cast<float>(w(2, 0)), k.w21 = static_cast<float>(w(2, 1));
  k.w22 = static_cast<float>(w(2, 2));
  k.wtx = static_cast<float>(world_to_reference.translation.x);
  k.wty = static_cast<float>(world_to_reference.translation.y);
  k.wtz = static_cast<float>(world_to_reference.translation.z);
  k.fx = static_cast<float>(reference_intrinsics.fx);
  k.fy = static_cast<float>(reference_intrinsics.fy);
  k.cxm = static_cast<float>(reference_intrinsics.cx - 0.5);
  k.cym = static_cast<float>(reference_intrinsics.cy - 0.5);
  k.zmin = 1e-9f;
  k.gate2 = static_cast<float>(config.distance_gate * config.distance_gate);
  k.ngate = static_cast<float>(config.normal_gate);
  k.ref_width = reference_intrinsics.width;
  k.ref_height = reference_intrinsics.height;
  k.ref_pitch = reference.vertices.pitch();
  return k;
}

/// One pixel of the scalar reference — the LOCKSTEP MIRROR of an icp_row_simd
/// lane: same fmadd shapes, same nearest-even association, same gate order.
/// Also serves the ragged row tail of the SIMD path, which keeps the
/// tested/matched counts bit-identical across paths.
struct PixelContribution {
  bool tested = false;
  bool matched = false;
  std::array<float, 6> jacobian{};
  float residual = 0.0f;
};

PixelContribution icp_pixel(const IcpConstants& k, const PyramidLevel& level,
                            const RaycastResult& reference, int u, int v) {
  PixelContribution out;
  const Vec3f vert = level.vertices.at(u, v);
  const Vec3f norm = level.normals.at(u, v);
  // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
  if (vert == Vec3f{} || norm == Vec3f{}) return out;
  out.tested = true;

  const float px =
      s::fmadd_s(k.r00, vert.x, s::fmadd_s(k.r01, vert.y, s::fmadd_s(k.r02, vert.z, k.tx)));
  const float py =
      s::fmadd_s(k.r10, vert.x, s::fmadd_s(k.r11, vert.y, s::fmadd_s(k.r12, vert.z, k.ty)));
  const float pz =
      s::fmadd_s(k.r20, vert.x, s::fmadd_s(k.r21, vert.y, s::fmadd_s(k.r22, vert.z, k.tz)));
  // Associate through the fixed reference camera.
  const float qx =
      s::fmadd_s(k.w00, px, s::fmadd_s(k.w01, py, s::fmadd_s(k.w02, pz, k.wtx)));
  const float qy =
      s::fmadd_s(k.w10, px, s::fmadd_s(k.w11, py, s::fmadd_s(k.w12, pz, k.wty)));
  const float qz =
      s::fmadd_s(k.w20, px, s::fmadd_s(k.w21, py, s::fmadd_s(k.w22, pz, k.wtz)));
  if (!(qz > k.zmin)) return out;
  const float pu = s::fmadd_s(k.fx, qx / qz, k.cxm);
  const float pv = s::fmadd_s(k.fy, qy / qz, k.cym);
  const int ru = s::nearest_i_s(pu);
  const int rv = s::nearest_i_s(pv);
  if (ru < 0 || rv < 0 || ru >= k.ref_width || rv >= k.ref_height) return out;

  const Vec3f rvert = reference.vertices.at(ru, rv);
  const Vec3f rnorm = reference.normals.at(ru, rv);
  // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
  if (rvert == Vec3f{} || rnorm == Vec3f{}) return out;

  const float dx = rvert.x - px;
  const float dy = rvert.y - py;
  const float dz = rvert.z - pz;
  const float dist2 = s::fmadd_s(dx, dx, s::fmadd_s(dy, dy, dz * dz));
  if (!(dist2 <= k.gate2)) return out;
  const float ncx = s::fmadd_s(k.r00, norm.x, s::fmadd_s(k.r01, norm.y, k.r02 * norm.z));
  const float ncy = s::fmadd_s(k.r10, norm.x, s::fmadd_s(k.r11, norm.y, k.r12 * norm.z));
  const float ncz = s::fmadd_s(k.r20, norm.x, s::fmadd_s(k.r21, norm.y, k.r22 * norm.z));
  const float ndot = s::fmadd_s(rnorm.x, ncx, s::fmadd_s(rnorm.y, ncy, rnorm.z * ncz));
  if (!(ndot >= k.ngate)) return out;

  // Point-to-plane residual r = n_ref . (v_ref - p_world); the
  // left-multiplied twist update gives J = [n_ref; p_world x n_ref].
  out.matched = true;
  out.residual = s::fmadd_s(rnorm.x, dx, s::fmadd_s(rnorm.y, dy, rnorm.z * dz));
  out.jacobian = {rnorm.x,
                  rnorm.y,
                  rnorm.z,
                  py * rnorm.z - pz * rnorm.y,
                  pz * rnorm.x - px * rnorm.z,
                  px * rnorm.y - py * rnorm.x};
  return out;
}

void icp_row_scalar(const IcpConstants& k, const PyramidLevel& level,
                    const RaycastResult& reference, int v, Reduction& local) {
  const int width = level.vertices.width();
  for (int u = 0; u < width; ++u) {
    const PixelContribution pc = icp_pixel(k, level, reference, u, v);
    local.tested += pc.tested ? 1 : 0;
    if (!pc.matched) continue;
    ++local.matched;
    local.equations.add({pc.jacobian[0], pc.jacobian[1], pc.jacobian[2],
                         pc.jacobian[3], pc.jacobian[4], pc.jacobian[5]},
                        pc.residual);
  }
}

/// Number of float lane accumulators per row: 21 upper-triangle J^T J terms,
/// 6 J^T r terms, 1 squared error.
constexpr int kIcpAccumulators = 28;

/// SIMD lanes run across u; the six SoA planes of the current level load as
/// contiguous vectors and the reference maps are gathered at the associated
/// pixels. Per-lane products accumulate in float vectors and flush into the
/// double NormalEquations once per row (lane-order reduction), so equations
/// agree with the scalar path to a documented tolerance while the gate
/// decisions — and therefore tested/matched — are bit-identical.
void icp_row_simd(const IcpConstants& k, const PyramidLevel& level,
                  const RaycastResult& reference, int v, Reduction& local) {
  const int width = level.vertices.width();
  const float* vx_row = level.vertices.x().row(v);
  const float* vy_row = level.vertices.y().row(v);
  const float* vz_row = level.vertices.z().row(v);
  const float* nx_row = level.normals.x().row(v);
  const float* ny_row = level.normals.y().row(v);
  const float* nz_row = level.normals.z().row(v);
  const float* ref_vx = reference.vertices.x().data();
  const float* ref_vy = reference.vertices.y().data();
  const float* ref_vz = reference.vertices.z().data();
  const float* ref_nx = reference.normals.x().data();
  const float* ref_ny = reference.normals.y().data();
  const float* ref_nz = reference.normals.z().data();

  const s::vfloat zero = s::vzero();
  const s::vmask full = s::mask_first_n(s::kWidth);
  const s::vfloat R00 = s::vbroadcast(k.r00), R01 = s::vbroadcast(k.r01),
                  R02 = s::vbroadcast(k.r02), R10 = s::vbroadcast(k.r10),
                  R11 = s::vbroadcast(k.r11), R12 = s::vbroadcast(k.r12),
                  R20 = s::vbroadcast(k.r20), R21 = s::vbroadcast(k.r21),
                  R22 = s::vbroadcast(k.r22);
  const s::vfloat TX = s::vbroadcast(k.tx), TY = s::vbroadcast(k.ty),
                  TZ = s::vbroadcast(k.tz);
  const s::vfloat W00 = s::vbroadcast(k.w00), W01 = s::vbroadcast(k.w01),
                  W02 = s::vbroadcast(k.w02), W10 = s::vbroadcast(k.w10),
                  W11 = s::vbroadcast(k.w11), W12 = s::vbroadcast(k.w12),
                  W20 = s::vbroadcast(k.w20), W21 = s::vbroadcast(k.w21),
                  W22 = s::vbroadcast(k.w22);
  const s::vfloat WTX = s::vbroadcast(k.wtx), WTY = s::vbroadcast(k.wty),
                  WTZ = s::vbroadcast(k.wtz);
  const s::vfloat FX = s::vbroadcast(k.fx), FY = s::vbroadcast(k.fy),
                  CXM = s::vbroadcast(k.cxm), CYM = s::vbroadcast(k.cym);
  const s::vfloat ZMIN = s::vbroadcast(k.zmin), GATE2 = s::vbroadcast(k.gate2),
                  NGATE = s::vbroadcast(k.ngate);
  const s::vfloat REFW = s::vbroadcast(static_cast<float>(k.ref_width));
  const s::vfloat REFH = s::vbroadcast(static_cast<float>(k.ref_height));
  const s::vint PITCH = s::vbroadcast_i(k.ref_pitch);

  s::vfloat acc[kIcpAccumulators];
  for (auto& a : acc) a = zero;
  std::uint64_t vec_matched = 0;

  int u = 0;
  for (; u + s::kWidth <= width; u += s::kWidth) {
    const s::vfloat vx = s::vload(vx_row + u);
    const s::vfloat vy = s::vload(vy_row + u);
    const s::vfloat vz = s::vload(vz_row + u);
    const s::vfloat nx = s::vload(nx_row + u);
    const s::vfloat ny = s::vload(ny_row + u);
    const s::vfloat nz = s::vload(nz_row + u);
    const s::vmask vert_zero = s::mask_and(
        s::mask_and(s::cmp_eq(vx, zero), s::cmp_eq(vy, zero)), s::cmp_eq(vz, zero));
    const s::vmask norm_zero = s::mask_and(
        s::mask_and(s::cmp_eq(nx, zero), s::cmp_eq(ny, zero)), s::cmp_eq(nz, zero));
    const s::vmask active = s::mask_andnot(full, s::mask_or(vert_zero, norm_zero));
    local.tested += static_cast<std::uint64_t>(s::mask_popcount(active));
    if (s::mask_none(active)) continue;

    const s::vfloat px = s::vfma(R00, vx, s::vfma(R01, vy, s::vfma(R02, vz, TX)));
    const s::vfloat py = s::vfma(R10, vx, s::vfma(R11, vy, s::vfma(R12, vz, TY)));
    const s::vfloat pz = s::vfma(R20, vx, s::vfma(R21, vy, s::vfma(R22, vz, TZ)));
    const s::vfloat qx = s::vfma(W00, px, s::vfma(W01, py, s::vfma(W02, pz, WTX)));
    const s::vfloat qy = s::vfma(W10, px, s::vfma(W11, py, s::vfma(W12, pz, WTY)));
    const s::vfloat qz = s::vfma(W20, px, s::vfma(W21, py, s::vfma(W22, pz, WTZ)));
    s::vmask assoc = s::mask_and(active, s::cmp_gt(qz, ZMIN));
    // Rejected lanes may divide by ~0 here; inf/NaN fails the bounds
    // compares below and the gather never touches those lanes.
    const s::vfloat pu = s::vfma(FX, qx / qz, CXM);
    const s::vfloat pv = s::vfma(FY, qy / qz, CYM);
    const s::vint ru_i = s::vnearest_i(pu);
    const s::vint rv_i = s::vnearest_i(pv);
    const s::vfloat ruf = s::vto_float(ru_i);
    const s::vfloat rvf = s::vto_float(rv_i);
    assoc = s::mask_and(assoc, s::cmp_ge(ruf, zero));
    assoc = s::mask_and(assoc, s::cmp_ge(rvf, zero));
    assoc = s::mask_and(assoc, s::cmp_lt(ruf, REFW));
    assoc = s::mask_and(assoc, s::cmp_lt(rvf, REFH));
    if (s::mask_none(assoc)) continue;
    const s::vint idx = s::vadd_i(s::vmul_i(rv_i, PITCH), ru_i);

    const s::vfloat rvx = s::vgather_masked(ref_vx, idx, assoc);
    const s::vfloat rvy = s::vgather_masked(ref_vy, idx, assoc);
    const s::vfloat rvz = s::vgather_masked(ref_vz, idx, assoc);
    const s::vfloat rnx = s::vgather_masked(ref_nx, idx, assoc);
    const s::vfloat rny = s::vgather_masked(ref_ny, idx, assoc);
    const s::vfloat rnz = s::vgather_masked(ref_nz, idx, assoc);
    // Reference sentinel: gathered zeros on masked lanes also land here.
    const s::vmask rvert_zero = s::mask_and(
        s::mask_and(s::cmp_eq(rvx, zero), s::cmp_eq(rvy, zero)), s::cmp_eq(rvz, zero));
    const s::vmask rnorm_zero = s::mask_and(
        s::mask_and(s::cmp_eq(rnx, zero), s::cmp_eq(rny, zero)), s::cmp_eq(rnz, zero));
    assoc = s::mask_andnot(assoc, s::mask_or(rvert_zero, rnorm_zero));

    const s::vfloat dx = rvx - px;
    const s::vfloat dy = rvy - py;
    const s::vfloat dz = rvz - pz;
    const s::vfloat dist2 = s::vfma(dx, dx, s::vfma(dy, dy, dz * dz));
    assoc = s::mask_and(assoc, s::cmp_le(dist2, GATE2));
    const s::vfloat ncx = s::vfma(R00, nx, s::vfma(R01, ny, R02 * nz));
    const s::vfloat ncy = s::vfma(R10, nx, s::vfma(R11, ny, R12 * nz));
    const s::vfloat ncz = s::vfma(R20, nx, s::vfma(R21, ny, R22 * nz));
    const s::vfloat ndot = s::vfma(rnx, ncx, s::vfma(rny, ncy, rnz * ncz));
    assoc = s::mask_and(assoc, s::cmp_ge(ndot, NGATE));
    const int match_bits = s::mask_popcount(assoc);
    if (match_bits == 0) continue;
    vec_matched += static_cast<std::uint64_t>(match_bits);

    const s::vfloat residual =
        s::vfma(rnx, dx, s::vfma(rny, dy, rnz * dz));
    const s::vfloat j[6] = {
        s::vselect(assoc, rnx, zero),
        s::vselect(assoc, rny, zero),
        s::vselect(assoc, rnz, zero),
        s::vselect(assoc, py * rnz - pz * rny, zero),
        s::vselect(assoc, pz * rnx - px * rnz, zero),
        s::vselect(assoc, px * rny - py * rnx, zero),
    };
    const s::vfloat r_sel = s::vselect(assoc, residual, zero);
    int a = 0;
    for (int row = 0; row < 6; ++row) {
      for (int col = row; col < 6; ++col, ++a) {
        acc[a] = s::vfma(j[row], j[col], acc[a]);
      }
    }
    for (int i = 0; i < 6; ++i) {
      acc[21 + i] = s::vfma(j[i], r_sel, acc[21 + i]);
    }
    acc[27] = s::vfma(r_sel, r_sel, acc[27]);
  }

  // Ragged tail: the scalar mirror produces the same per-pixel values; its
  // contributions go straight into the double accumulator.
  for (; u < width; ++u) {
    const PixelContribution pc = icp_pixel(k, level, reference, u, v);
    local.tested += pc.tested ? 1 : 0;
    if (!pc.matched) continue;
    ++local.matched;
    local.equations.add({pc.jacobian[0], pc.jacobian[1], pc.jacobian[2],
                         pc.jacobian[3], pc.jacobian[4], pc.jacobian[5]},
                        pc.residual);
  }

  if (vec_matched == 0) return;
  local.matched += vec_matched;
  std::array<double, 21> jtj{};
  std::array<double, 6> jtr{};
  for (int i = 0; i < 21; ++i) jtj[static_cast<std::size_t>(i)] = s::vreduce_add_d(acc[i]);
  for (int i = 0; i < 6; ++i) jtr[static_cast<std::size_t>(i)] = s::vreduce_add_d(acc[21 + i]);
  local.equations.add_normal_system(jtj, jtr, s::vreduce_add_d(acc[27]),
                                    static_cast<std::size_t>(vec_matched));
}

/// Rows per parallel chunk (grain table in DESIGN.md §9). Fixed constant —
/// chunk boundaries must not depend on the thread count.
constexpr std::size_t kIcpGrain = 8;

/// One projective data-association + point-to-plane reduction pass over a
/// pyramid level under the pose estimate `pose`.
Reduction reduce_level(const PyramidLevel& level, const RaycastResult& reference,
                       const Intrinsics& reference_intrinsics,
                       const SE3& world_to_reference, const SE3& pose,
                       const IcpConfig& config, hm::common::ThreadPool* pool,
                       KernelPath path) {
  const IcpConstants constants =
      make_constants(pose, world_to_reference, reference_intrinsics, reference,
                     config);
  const int height = level.vertices.height();
  const bool use_simd =
      path == KernelPath::kSimd || (path == KernelPath::kAuto && s::kEnabled);

  // Deterministic chunked reduction: row chunks depend only on the image
  // height and the grain, and partials combine in chunk order, so the
  // accumulated normal equations — and therefore the solved pose — are
  // bitwise identical across thread counts (and match the pool-less path).
  auto process_rows = [&](std::size_t row_begin, std::size_t row_end,
                          Reduction local) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      if (use_simd) {
        icp_row_simd(constants, level, reference, static_cast<int>(v), local);
      } else {
        icp_row_scalar(constants, level, reference, static_cast<int>(v), local);
      }
    }
    return local;
  };

  return hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(height), Reduction{}, process_rows,
      [](Reduction a, const Reduction& b) {
        a += b;
        return a;
      },
      kIcpGrain);
}

}  // namespace

IcpResult icp_track(const std::vector<PyramidLevel>& pyramid,
                    const RaycastResult& reference,
                    const Intrinsics& reference_intrinsics,
                    const SE3& reference_pose, const SE3& initial_pose,
                    const IcpConfig& config, KernelStats& stats,
                    hm::common::ThreadPool* pool, KernelPath path) {
  IcpResult result;
  result.pose = initial_pose;

  const SE3 world_to_reference = reference_pose.inverse();
  std::uint64_t icp_ops = 0;
  std::uint64_t solves = 0;

  // Coarse-to-fine: highest pyramid index first.
  for (std::size_t level_index = pyramid.size(); level_index-- > 0;) {
    const PyramidLevel& level = pyramid[level_index];
    const int iterations =
        level_index < config.iterations.size()
            ? config.iterations[level_index]
            : config.iterations.back();
    for (int iteration = 0; iteration < iterations; ++iteration) {
      const Reduction pass =
          reduce_level(level, reference, reference_intrinsics,
                       world_to_reference, result.pose, config, pool, path);
      icp_ops += pass.tested;
      ++result.iterations_run;

      if (level_index == 0) {
        result.final_rms = std::sqrt(pass.equations.mean_squared_error());
        result.inlier_fraction =
            pass.tested == 0
                ? 0.0
                : static_cast<double>(pass.matched) /
                      static_cast<double>(pass.tested);
      }
      if (pass.matched < 6) break;  // Not enough constraints at this level.

      const auto update = pass.equations.solve(/*damping=*/1e-9);
      ++solves;
      if (!update) break;  // Degenerate geometry.

      result.pose = SE3::exp(*update) * result.pose;
      result.pose.rotation = hm::geometry::orthonormalized(result.pose.rotation);

      double update_norm2 = 0.0;
      for (const double value : *update) update_norm2 += value * value;
      if (update_norm2 < config.update_threshold) {
        result.converged = true;
        break;  // Early exit for this level.
      }
    }
  }

  stats.add(Kernel::kIcp, icp_ops);
  stats.add(Kernel::kSolve, solves);

  // Failure detection on the finest level's last pass.
  result.tracked = result.inlier_fraction >= config.min_inlier_fraction &&
                   result.final_rms <= config.rms_gate &&
                   result.final_rms > 0.0;
  return result;
}

}  // namespace hm::kfusion
