#include "kfusion/icp.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/solve.hpp"

namespace hm::kfusion {

using hm::geometry::NormalEquations;
using hm::geometry::SE3;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

namespace {

struct Reduction {
  NormalEquations<6> equations;
  std::uint64_t tested = 0;        ///< Pixels with valid vertex+normal.
  std::uint64_t matched = 0;       ///< Pixels passing all gates.

  Reduction& operator+=(const Reduction& other) {
    equations += other.equations;
    tested += other.tested;
    matched += other.matched;
    return *this;
  }
};

/// One projective data-association + point-to-plane reduction pass over a
/// pyramid level under the pose estimate `pose`.
Reduction reduce_level(const PyramidLevel& level, const RaycastResult& reference,
                       const Intrinsics& reference_intrinsics,
                       const SE3& world_to_reference, const SE3& pose,
                       const IcpConfig& config, hm::common::ThreadPool* pool) {
  const double distance_gate2 = config.distance_gate * config.distance_gate;
  const int height = level.vertices.height();

  // Deterministic chunked reduction: row chunks depend only on the image
  // height and the grain, and partials combine in chunk order, so the
  // accumulated normal equations — and therefore the solved pose — are
  // bitwise identical across thread counts (and match the pool-less path).
  auto process_rows = [&](std::size_t row_begin, std::size_t row_end,
                          Reduction local) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      for (int u = 0; u < level.vertices.width(); ++u) {
        const Vec3f vertex = level.vertices.at(u, static_cast<int>(v));
        const Vec3f normal = level.normals.at(u, static_cast<int>(v));
        // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
        if (vertex == Vec3f{} || normal == Vec3f{}) continue;
        ++local.tested;

        const Vec3d p_world = pose * hm::geometry::to_double(vertex);
        // Associate through the fixed reference camera.
        const auto pixel =
            reference_intrinsics.project(world_to_reference * p_world);
        if (!pixel) continue;
        const int ru = static_cast<int>(std::lround(pixel->x));
        const int rv = static_cast<int>(std::lround(pixel->y));
        if (!reference_intrinsics.contains(ru, rv)) continue;

        const Vec3f ref_vertex = reference.vertices.at(ru, rv);
        const Vec3f ref_normal = reference.normals.at(ru, rv);
        // hm-lint: allow(no-float-equality) exact zero is the empty-pixel sentinel
        if (ref_vertex == Vec3f{} || ref_normal == Vec3f{}) continue;

        const Vec3d v_ref = hm::geometry::to_double(ref_vertex);
        const Vec3d n_ref = hm::geometry::to_double(ref_normal);
        const Vec3d diff = v_ref - p_world;
        if (diff.squared_norm() > distance_gate2) continue;
        const Vec3d n_cur_world = pose.rotate(hm::geometry::to_double(normal));
        if (n_ref.dot(n_cur_world) < config.normal_gate) continue;

        // Point-to-plane residual r = n_ref . (v_ref - p_world); the
        // left-multiplied twist update gives J = [n_ref; p_world x n_ref].
        const double residual = n_ref.dot(diff);
        const Vec3d moment = p_world.cross(n_ref);
        local.equations.add(
            {n_ref.x, n_ref.y, n_ref.z, moment.x, moment.y, moment.z}, residual);
        ++local.matched;
      }
    }
    return local;
  };

  return hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(height), Reduction{}, process_rows,
      [](Reduction a, const Reduction& b) {
        a += b;
        return a;
      },
      /*grain=*/8);
}

}  // namespace

IcpResult icp_track(const std::vector<PyramidLevel>& pyramid,
                    const RaycastResult& reference,
                    const Intrinsics& reference_intrinsics,
                    const SE3& reference_pose, const SE3& initial_pose,
                    const IcpConfig& config, KernelStats& stats,
                    hm::common::ThreadPool* pool) {
  IcpResult result;
  result.pose = initial_pose;

  const SE3 world_to_reference = reference_pose.inverse();
  std::uint64_t icp_ops = 0;
  std::uint64_t solves = 0;

  // Coarse-to-fine: highest pyramid index first.
  for (std::size_t level_index = pyramid.size(); level_index-- > 0;) {
    const PyramidLevel& level = pyramid[level_index];
    const int iterations =
        level_index < config.iterations.size()
            ? config.iterations[level_index]
            : config.iterations.back();
    for (int iteration = 0; iteration < iterations; ++iteration) {
      const Reduction pass =
          reduce_level(level, reference, reference_intrinsics,
                       world_to_reference, result.pose, config, pool);
      icp_ops += pass.tested;
      ++result.iterations_run;

      if (level_index == 0) {
        result.final_rms = std::sqrt(pass.equations.mean_squared_error());
        result.inlier_fraction =
            pass.tested == 0
                ? 0.0
                : static_cast<double>(pass.matched) /
                      static_cast<double>(pass.tested);
      }
      if (pass.matched < 6) break;  // Not enough constraints at this level.

      const auto update = pass.equations.solve(/*damping=*/1e-9);
      ++solves;
      if (!update) break;  // Degenerate geometry.

      result.pose = SE3::exp(*update) * result.pose;
      result.pose.rotation = hm::geometry::orthonormalized(result.pose.rotation);

      double update_norm2 = 0.0;
      for (const double value : *update) update_norm2 += value * value;
      if (update_norm2 < config.update_threshold) {
        result.converged = true;
        break;  // Early exit for this level.
      }
    }
  }

  stats.add(Kernel::kIcp, icp_ops);
  stats.add(Kernel::kSolve, solves);

  // Failure detection on the finest level's last pass.
  result.tracked = result.inlier_fraction >= config.min_inlier_fraction &&
                   result.final_rms <= config.rms_gate &&
                   result.final_rms > 0.0;
  return result;
}

}  // namespace hm::kfusion
