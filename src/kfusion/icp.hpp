// Point-to-plane ICP with projective data association against raycasted
// model maps — the KFusion tracking step.
#pragma once

#include <array>
#include <vector>

#include "common/thread_pool.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"
#include "kfusion/pyramid.hpp"
#include "kfusion/raycast.hpp"

namespace hm::kfusion {

struct IcpConfig {
  /// Iterations per pyramid level, finest (level 0) first.
  std::array<int, 3> iterations{10, 5, 4};
  /// Early exit when the squared norm of the twist update drops below this.
  double update_threshold = 1e-5;
  double distance_gate = 0.15;  ///< Correspondence distance gate (m).
  double normal_gate = 0.7;     ///< Min cosine between matched normals.
  /// Track is declared failed when fewer than this fraction of pixels found
  /// correspondences, or the residual RMS exceeds rms_gate.
  double min_inlier_fraction = 0.10;
  double rms_gate = 0.08;       ///< Residual RMS gate (m).
};

struct IcpResult {
  hm::geometry::SE3 pose;  ///< Refined camera-to-world.
  bool converged = false;  ///< Early-exited below update_threshold.
  bool tracked = true;     ///< Passed the inlier/RMS gates.
  double final_rms = 0.0;
  double inlier_fraction = 0.0;
  int iterations_run = 0;
};

/// Aligns the current frame's pyramid to the raycasted reference maps.
/// `reference` holds world-space vertex/normal maps raycast from
/// `reference_pose` at `reference_intrinsics` (pyramid level 0) resolution;
/// data association projects through the fixed reference camera while the
/// pose estimate (initialized to `initial_pose`, normally == reference_pose)
/// is refined coarse-to-fine.
///
/// `path` selects the reduction implementation. Gate decisions (and hence
/// tested/matched counts) are bit-identical across paths; the accumulated
/// normal equations differ only in summation order (SIMD flushes float lane
/// accumulators per row), so poses agree to a documented tolerance
/// (DESIGN.md §9).
[[nodiscard]] IcpResult icp_track(
    const std::vector<PyramidLevel>& pyramid, const RaycastResult& reference,
    const Intrinsics& reference_intrinsics,
    const hm::geometry::SE3& reference_pose,
    const hm::geometry::SE3& initial_pose, const IcpConfig& config,
    KernelStats& stats, hm::common::ThreadPool* pool = nullptr,
    KernelPath path = KernelPath::kAuto);

}  // namespace hm::kfusion
