#include "kfusion/preprocess.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"

namespace hm::kfusion {

DepthImage downsample_depth(const DepthImage& input, int ratio,
                            KernelStats& stats) {
  if (ratio <= 1) {
    stats.add(Kernel::kDownsample, input.size());
    return input;
  }
  const int out_width = input.width() / ratio;
  const int out_height = input.height() / ratio;
  DepthImage output(out_width, out_height, 0.0f);
  for (int v = 0; v < out_height; ++v) {
    for (int u = 0; u < out_width; ++u) {
      float sum = 0.0f;
      int valid = 0;
      for (int dv = 0; dv < ratio; ++dv) {
        for (int du = 0; du < ratio; ++du) {
          const float z = input.at(u * ratio + du, v * ratio + dv);
          if (z > 0.0f) {
            sum += z;
            ++valid;
          }
        }
      }
      if (valid > 0) output.at(u, v) = sum / static_cast<float>(valid);
    }
  }
  // Every input pixel inside the covered region is read once.
  stats.add(Kernel::kDownsample,
            static_cast<std::uint64_t>(out_width) * out_height *
                static_cast<std::uint64_t>(ratio) * static_cast<std::uint64_t>(ratio));
  return output;
}

namespace {

/// Shared per-call constants; the float spatial table and range coefficient
/// are used verbatim by both the scalar and the SIMD path.
struct BilateralParams {
  int radius = 0;
  int window = 0;
  std::vector<float> spatial;  ///< (2r+1)^2 float spatial weights.
  float neg_inv_2_sigma_depth2 = 0.0f;
};

BilateralParams make_bilateral_params(const BilateralConfig& config) {
  BilateralParams params;
  params.radius = config.radius;
  params.window = 2 * config.radius + 1;
  params.spatial.resize(static_cast<std::size_t>(params.window) * params.window);
  for (int dv = -params.radius; dv <= params.radius; ++dv) {
    for (int du = -params.radius; du <= params.radius; ++du) {
      const double d2 = static_cast<double>(du * du + dv * dv);
      params.spatial[static_cast<std::size_t>(
          (dv + params.radius) * params.window + (du + params.radius))] =
          static_cast<float>(
              std::exp(-d2 / (2.0 * config.sigma_space * config.sigma_space)));
    }
  }
  params.neg_inv_2_sigma_depth2 = static_cast<float>(
      -1.0 / (2.0 * config.sigma_depth * config.sigma_depth));
  return params;
}

/// One output pixel of the scalar reference. LOCKSTEP MIRROR of the lane
/// arithmetic in bilateral_row_simd: same float spatial table, same
/// exp_s/vexp polynomial, same multiply-add shapes — a SIMD lane computing
/// pixel (u, v) produces this value bit-for-bit.
float bilateral_pixel_scalar(const DepthImage& input, const BilateralParams& p,
                             int u, int v, std::uint64_t& taps) {
  const float center = input.at(u, v);
  if (center <= 0.0f) return 0.0f;
  const int width = input.width();
  const int height = input.height();
  float weight_sum = 0.0f;
  float value_sum = 0.0f;
  for (int dv = -p.radius; dv <= p.radius; ++dv) {
    const int vv = v + dv;
    if (vv < 0 || vv >= height) continue;
    const float* in_row = input.row(vv);
    const float* spatial_row =
        p.spatial.data() + static_cast<std::size_t>((dv + p.radius) * p.window);
    for (int du = -p.radius; du <= p.radius; ++du) {
      const int uu = u + du;
      if (uu < 0 || uu >= width) continue;
      ++taps;
      const float z = in_row[uu];
      if (z <= 0.0f) continue;
      const float dz = z - center;
      const float w = spatial_row[du + p.radius] *
                      hm::simd::exp_s((dz * dz) * p.neg_inv_2_sigma_depth2);
      weight_sum = weight_sum + w;
      value_sum = hm::simd::fmadd_s(w, z, value_sum);
    }
  }
  return weight_sum > 0.0f ? value_sum / weight_sum : 0.0f;
}

void bilateral_row_scalar(const DepthImage& input, DepthImage& output,
                          const BilateralParams& p, int v, std::uint64_t& taps) {
  float* out_row = output.row(v);
  for (int u = 0; u < input.width(); ++u) {
    out_row[u] = bilateral_pixel_scalar(input, p, u, v, taps);
  }
}

/// Vector path: kWidth consecutive output pixels per iteration, full
/// vectors only — the ragged tail falls back to the (bit-identical) scalar
/// pixel. Neighbor loads may overhang the row into the guard/slack bands
/// (value 0, masked out), which is what the padded pitch is for.
void bilateral_row_simd(const DepthImage& input, DepthImage& output,
                        const BilateralParams& p, int v, std::uint64_t& taps) {
  namespace s = hm::simd;
  const int width = input.width();
  const int height = input.height();
  const float* in_row_v = input.row(v);
  float* out_row = output.row(v);
  const s::vfloat zero = s::vzero();
  const s::vfloat width_f = s::vbroadcast(static_cast<float>(width));
  const s::vfloat neg_inv = s::vbroadcast(p.neg_inv_2_sigma_depth2);
  const s::vfloat iota = s::viota();

  int u = 0;
  for (; u + s::kWidth <= width; u += s::kWidth) {
    const s::vfloat center = s::vload(in_row_v + u);
    const s::vmask active = s::cmp_gt(center, zero);
    if (s::mask_none(active)) continue;  // Output stays 0 for the whole group.
    s::vfloat weight_sum = zero;
    s::vfloat value_sum = zero;
    for (int dv = -p.radius; dv <= p.radius; ++dv) {
      const int vv = v + dv;
      if (vv < 0 || vv >= height) continue;
      const float* in_row = input.row(vv);
      const float* spatial_row = p.spatial.data() +
                                 static_cast<std::size_t>(
                                     (dv + p.radius) * p.window);
      for (int du = -p.radius; du <= p.radius; ++du) {
        // Per-lane column bounds: uu = u + lane + du must be in [0, width).
        const s::vfloat uu_f =
            iota + s::vbroadcast(static_cast<float>(u + du));
        const s::vmask bounds =
            s::mask_and(s::cmp_ge(uu_f, zero), s::cmp_lt(uu_f, width_f));
        const s::vmask counted = s::mask_and(active, bounds);
        taps += static_cast<std::uint64_t>(s::mask_popcount(counted));
        const s::vfloat z = s::vload(in_row + u + du);
        const s::vmask valid = s::mask_and(counted, s::cmp_gt(z, zero));
        const s::vfloat dz = z - center;
        const s::vfloat e = s::vexp((dz * dz) * neg_inv);
        s::vfloat w = s::vbroadcast(spatial_row[du + p.radius]) * e;
        w = s::vselect(valid, w, zero);
        weight_sum = weight_sum + w;
        value_sum = s::vfma(w, z, value_sum);
      }
    }
    const s::vmask has_weight = s::mask_and(active, s::cmp_gt(weight_sum, zero));
    const s::vfloat out = s::vselect(has_weight, value_sum / weight_sum, zero);
    s::vstore(out_row + u, out);
  }
  for (; u < width; ++u) {
    out_row[u] = bilateral_pixel_scalar(input, p, u, v, taps);
  }
}

/// Rows per parallel chunk. SIMD rows are ~6x cheaper than the old scalar
/// rows, so chunks stay coarse to keep scheduling overhead negligible
/// (grain table in DESIGN.md §9). Fixed constant — chunk boundaries must
/// not depend on the thread count or results stop being reproducible.
constexpr std::size_t kBilateralGrain = 16;

}  // namespace

DepthImage bilateral_filter(const DepthImage& input, const BilateralConfig& config,
                            KernelStats& stats, hm::common::ThreadPool* pool,
                            KernelPath path) {
  const int width = input.width();
  const int height = input.height();
  DepthImage output(width, height, 0.0f);
  const BilateralParams params = make_bilateral_params(config);
  const bool use_simd =
      path == KernelPath::kSimd ||
      (path == KernelPath::kAuto && hm::simd::kEnabled);

  // Output rows are independent; only the tap counter needs reducing.
  const std::uint64_t taps = hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(height), std::uint64_t{0},
      [&](std::size_t row_begin, std::size_t row_end, std::uint64_t local_taps) {
        for (std::size_t row = row_begin; row < row_end; ++row) {
          if (use_simd) {
            bilateral_row_simd(input, output, params, static_cast<int>(row),
                               local_taps);
          } else {
            bilateral_row_scalar(input, output, params, static_cast<int>(row),
                                 local_taps);
          }
        }
        return local_taps;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      kBilateralGrain);
  stats.add(Kernel::kBilateral, taps);
  return output;
}

DepthImage halve_depth(const DepthImage& input, KernelStats& stats) {
  const int out_width = input.width() / 2;
  const int out_height = input.height() / 2;
  DepthImage output(out_width, out_height, 0.0f);
  for (int v = 0; v < out_height; ++v) {
    for (int u = 0; u < out_width; ++u) {
      float sum = 0.0f;
      int valid = 0;
      for (int dv = 0; dv < 2; ++dv) {
        for (int du = 0; du < 2; ++du) {
          const float z = input.at(2 * u + du, 2 * v + dv);
          if (z > 0.0f) {
            sum += z;
            ++valid;
          }
        }
      }
      if (valid > 0) output.at(u, v) = sum / static_cast<float>(valid);
    }
  }
  stats.add(Kernel::kPyramid,
            static_cast<std::uint64_t>(out_width) * out_height * 4);
  return output;
}

}  // namespace hm::kfusion
