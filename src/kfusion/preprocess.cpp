#include "kfusion/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hm::kfusion {

DepthImage downsample_depth(const DepthImage& input, int ratio,
                            KernelStats& stats) {
  if (ratio <= 1) {
    stats.add(Kernel::kDownsample, input.size());
    return input;
  }
  const int out_width = input.width() / ratio;
  const int out_height = input.height() / ratio;
  DepthImage output(out_width, out_height, 0.0f);
  for (int v = 0; v < out_height; ++v) {
    for (int u = 0; u < out_width; ++u) {
      float sum = 0.0f;
      int valid = 0;
      for (int dv = 0; dv < ratio; ++dv) {
        for (int du = 0; du < ratio; ++du) {
          const float z = input.at(u * ratio + du, v * ratio + dv);
          if (z > 0.0f) {
            sum += z;
            ++valid;
          }
        }
      }
      if (valid > 0) output.at(u, v) = sum / static_cast<float>(valid);
    }
  }
  // Every input pixel inside the covered region is read once.
  stats.add(Kernel::kDownsample,
            static_cast<std::uint64_t>(out_width) * out_height *
                static_cast<std::uint64_t>(ratio) * static_cast<std::uint64_t>(ratio));
  return output;
}

DepthImage bilateral_filter(const DepthImage& input, const BilateralConfig& config,
                            KernelStats& stats, hm::common::ThreadPool* pool) {
  const int width = input.width();
  const int height = input.height();
  DepthImage output(width, height, 0.0f);

  // Precomputed spatial weights for the window.
  const int radius = config.radius;
  const int window = 2 * radius + 1;
  std::vector<double> spatial(static_cast<std::size_t>(window) * window);
  for (int dv = -radius; dv <= radius; ++dv) {
    for (int du = -radius; du <= radius; ++du) {
      const double d2 = static_cast<double>(du * du + dv * dv);
      spatial[static_cast<std::size_t>((dv + radius) * window + (du + radius))] =
          std::exp(-d2 / (2.0 * config.sigma_space * config.sigma_space));
    }
  }
  const double inv_2_sigma_depth2 =
      1.0 / (2.0 * config.sigma_depth * config.sigma_depth);

  // Output rows are independent; only the tap counter needs reducing.
  const std::uint64_t taps = hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(height), std::uint64_t{0},
      [&](std::size_t row_begin, std::size_t row_end, std::uint64_t local_taps) {
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const int v = static_cast<int>(row);
          for (int u = 0; u < width; ++u) {
            const float center = input.at(u, v);
            if (center <= 0.0f) continue;
            double weight_sum = 0.0;
            double value_sum = 0.0;
            for (int dv = -radius; dv <= radius; ++dv) {
              const int vv = v + dv;
              if (vv < 0 || vv >= height) continue;
              for (int du = -radius; du <= radius; ++du) {
                const int uu = u + du;
                if (uu < 0 || uu >= width) continue;
                const float z = input.at(uu, vv);
                ++local_taps;
                if (z <= 0.0f) continue;
                const double dz = static_cast<double>(z - center);
                const double w =
                    spatial[static_cast<std::size_t>((dv + radius) * window +
                                                     (du + radius))] *
                    std::exp(-dz * dz * inv_2_sigma_depth2);
                weight_sum += w;
                value_sum += w * static_cast<double>(z);
              }
            }
            if (weight_sum > 0.0) {
              output.at(u, v) = static_cast<float>(value_sum / weight_sum);
            }
          }
        }
        return local_taps;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      /*grain=*/16);
  stats.add(Kernel::kBilateral, taps);
  return output;
}

DepthImage halve_depth(const DepthImage& input, KernelStats& stats) {
  const int out_width = input.width() / 2;
  const int out_height = input.height() / 2;
  DepthImage output(out_width, out_height, 0.0f);
  for (int v = 0; v < out_height; ++v) {
    for (int u = 0; u < out_width; ++u) {
      float sum = 0.0f;
      int valid = 0;
      for (int dv = 0; dv < 2; ++dv) {
        for (int du = 0; du < 2; ++du) {
          const float z = input.at(2 * u + du, 2 * v + dv);
          if (z > 0.0f) {
            sum += z;
            ++valid;
          }
        }
      }
      if (valid > 0) output.at(u, v) = sum / static_cast<float>(valid);
    }
  }
  stats.add(Kernel::kPyramid,
            static_cast<std::uint64_t>(out_width) * out_height * 4);
  return output;
}

}  // namespace hm::kfusion
