#include "kfusion/pipeline.hpp"

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "kfusion/preprocess.hpp"
#include "kfusion/pyramid.hpp"

namespace hm::kfusion {
namespace {

/// Per-phase duration histograms (`hm_kfusion_phase_seconds{phase=...}`),
/// resolved once from the global registry.
struct PhaseMetrics {
  hm::common::Histogram* preprocess = nullptr;
  hm::common::Histogram* tracking = nullptr;
  hm::common::Histogram* integration = nullptr;
};

const PhaseMetrics& phase_metrics() {
  static const PhaseMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    PhaseMetrics resolved;
    resolved.preprocess =
        &registry.histogram("hm_kfusion_phase_seconds", "phase", "preprocess");
    resolved.tracking =
        &registry.histogram("hm_kfusion_phase_seconds", "phase", "tracking");
    resolved.integration =
        &registry.histogram("hm_kfusion_phase_seconds", "phase", "integration");
    return resolved;
  }();
  return metrics;
}

}  // namespace

KFusionPipeline::KFusionPipeline(const KFusionParams& params,
                                 const Intrinsics& raw_intrinsics,
                                 const SE3& initial_pose,
                                 hm::common::ThreadPool* pool)
    : params_(params),
      raw_intrinsics_(raw_intrinsics),
      computed_intrinsics_(raw_intrinsics.scaled(params.compute_size_ratio)),
      pool_(pool),
      volume_(std::make_unique<TsdfVolume>(params.volume_resolution,
                                           params.volume_size)),
      pose_(initial_pose) {
  icp_config_.iterations = params.icp_iterations;
  icp_config_.update_threshold = params.icp_threshold;
  icp_config_.distance_gate = params.icp_distance_gate;
  icp_config_.normal_gate = params.icp_normal_gate;
}

KFusionPipeline::FrameResult KFusionPipeline::process_frame(
    const hm::geometry::DepthImage& raw_depth) {
  FrameResult result;

  // --- Preprocessing: compute-size-ratio downsample + bilateral filter. ---
  DepthImage filtered;
  {
    HM_TRACE_SPAN(span, "preprocess", "kfusion", phase_metrics().preprocess);
    const DepthImage scaled =
        downsample_depth(raw_depth, params_.compute_size_ratio, stats_);
    filtered = bilateral_filter(scaled, BilateralConfig{}, stats_, pool_);
  }

  // --- Tracking. ---
  const bool do_track =
      frame_ > 0 &&
      (frame_ % static_cast<std::size_t>(params_.tracking_rate)) == 0;
  if (do_track) {
    HM_TRACE_SPAN(span, "tracking", "kfusion", phase_metrics().tracking);
    result.tracking_attempted = true;
    const std::vector<PyramidLevel> pyramid =
        build_pyramid(filtered, computed_intrinsics_, 3, stats_);
    // Reference maps: raycast the model from the current pose estimate.
    const RaycastResult reference =
        raycast(*volume_, computed_intrinsics_, pose_, params_.mu,
                raycast_config_, stats_, pool_);
    const IcpResult icp = icp_track(pyramid, reference, computed_intrinsics_,
                                    pose_, pose_, icp_config_, stats_, pool_);
    result.tracked = icp.tracked;
    if (icp.tracked) {
      pose_ = icp.pose;
    }
    // On failure the pose estimate stays at the previous frame's value,
    // exactly like SLAMBench's KFusion (no relocalization).
  } else if (frame_ > 0) {
    // Non-tracked frames keep the previous pose (constant-position model).
    result.tracked = true;
  }

  // --- Integration. ---
  const bool do_integrate =
      (frame_ % static_cast<std::size_t>(params_.integration_rate)) == 0;
  if (do_integrate) {
    HM_TRACE_SPAN(span, "integration", "kfusion", phase_metrics().integration);
    // Fuse the filtered (not raw) depth, as KFusion does.
    volume_->integrate(filtered, computed_intrinsics_, pose_, params_.mu,
                       stats_, pool_);
    result.integrated = true;
  }

  result.pose = pose_;
  trajectory_.push_back(pose_);
  ++frame_;
  return result;
}

}  // namespace hm::kfusion
