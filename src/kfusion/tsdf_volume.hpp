// Truncated signed distance function volume: the KFusion map representation.
// Dense voxel grid over a cube [0, size]^3, each voxel holding a truncated
// signed distance (normalized to [-1, 1] by mu) and an integration weight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::kfusion {

using hm::geometry::DepthImage;
using hm::geometry::Intrinsics;
using hm::geometry::SE3;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

class TsdfVolume {
 public:
  /// `resolution` voxels per axis over a cube of edge `size` meters.
  TsdfVolume(int resolution, double size);

  [[nodiscard]] int resolution() const noexcept { return resolution_; }
  [[nodiscard]] double size() const noexcept { return size_; }
  [[nodiscard]] double voxel_size() const noexcept { return voxel_size_; }

  /// Fuses a depth map taken from `camera_to_world` into the volume using
  /// the standard weighted-average TSDF update with truncation `mu`.
  /// Only voxels inside the camera frustum's bounding box are visited; the
  /// visit count is recorded in `stats` (Kernel::kIntegrate).
  void integrate(const DepthImage& depth, const Intrinsics& intrinsics,
                 const SE3& camera_to_world, double mu, KernelStats& stats,
                 hm::common::ThreadPool* pool = nullptr);

  /// Trilinear TSDF interpolation at a world point; nullopt outside the
  /// volume or where any support voxel has zero weight.
  [[nodiscard]] std::optional<float> sample(Vec3d world) const;

  /// TSDF gradient (unnormalized surface normal) by central differences of
  /// trilinear samples.
  [[nodiscard]] std::optional<Vec3f> gradient(Vec3d world) const;

  /// Raw voxel access for tests (no bounds clamping; asserts in debug).
  [[nodiscard]] float tsdf_at(int x, int y, int z) const;
  [[nodiscard]] float weight_at(int x, int y, int z) const;

  /// Fraction of voxels with non-zero weight (diagnostics).
  [[nodiscard]] double occupancy() const;

  void clear();

 private:
  [[nodiscard]] std::size_t index(int x, int y, int z) const noexcept {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(resolution_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(resolution_) +
           static_cast<std::size_t>(x);
  }

  int resolution_;
  double size_;
  double voxel_size_;
  std::vector<float> tsdf_;    ///< Normalized distance in [-1, 1].
  std::vector<float> weight_;
};

}  // namespace hm::kfusion
