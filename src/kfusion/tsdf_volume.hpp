// Truncated signed distance function volume: the KFusion map representation.
// Dense voxel grid over a cube [0, size]^3, each voxel holding a truncated
// signed distance (normalized to [-1, 1] by mu) and an integration weight.
// Storage is 64-byte aligned and x-contiguous so the SIMD integrate path
// can load/store runs of voxels directly (resolutions are multiples of the
// vector width in practice; ragged tails fall back to the scalar mirror).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::kfusion {

using hm::geometry::DepthImage;
using hm::geometry::Intrinsics;
using hm::geometry::SE3;
using hm::geometry::Vec3d;
using hm::geometry::Vec3f;

class TsdfVolume {
 public:
  /// `resolution` voxels per axis over a cube of edge `size` meters.
  TsdfVolume(int resolution, double size);

  [[nodiscard]] int resolution() const noexcept { return resolution_; }
  [[nodiscard]] double size() const noexcept { return size_; }
  [[nodiscard]] double voxel_size() const noexcept { return voxel_size_; }
  [[nodiscard]] float voxel_size_f() const noexcept {
    return static_cast<float>(voxel_size_);
  }

  /// Fuses a depth map taken from `camera_to_world` into the volume using
  /// the standard weighted-average TSDF update with truncation `mu`.
  /// Only voxels inside the camera frustum's bounding box are visited; the
  /// visit count is recorded in `stats` (Kernel::kIntegrate). The scalar
  /// and SIMD paths are bit-exact against each other (DESIGN.md §9).
  void integrate(const DepthImage& depth, const Intrinsics& intrinsics,
                 const SE3& camera_to_world, double mu, KernelStats& stats,
                 hm::common::ThreadPool* pool = nullptr,
                 KernelPath path = KernelPath::kAuto);

  /// Trilinear TSDF interpolation at a world point; nullopt outside the
  /// volume or where any support voxel has zero weight. Double-precision
  /// reference used by tests and diagnostics.
  [[nodiscard]] std::optional<float> sample(Vec3d world) const;

  /// Single-precision trilinear sample used by the raycaster. The scalar
  /// mirror and the SIMD (8-corner gather) path are bit-exact against each
  /// other; `path` selects between them.
  [[nodiscard]] std::optional<float> sample_f(
      Vec3f world, KernelPath path = KernelPath::kAuto) const;

  /// TSDF gradient (unnormalized surface normal) by central differences of
  /// trilinear samples.
  [[nodiscard]] std::optional<Vec3f> gradient(Vec3d world) const;

  /// Single-precision gradient by central differences of sample_f.
  [[nodiscard]] std::optional<Vec3f> gradient_f(
      Vec3f world, KernelPath path = KernelPath::kAuto) const;

  /// Raw voxel access for tests (no bounds clamping; asserts in debug).
  [[nodiscard]] float tsdf_at(int x, int y, int z) const;
  [[nodiscard]] float weight_at(int x, int y, int z) const;

  /// Fraction of voxels with non-zero weight (diagnostics).
  [[nodiscard]] double occupancy() const;

  void clear();

 private:
  [[nodiscard]] std::size_t index(int x, int y, int z) const noexcept {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(resolution_) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(resolution_) +
           static_cast<std::size_t>(x);
  }

  [[nodiscard]] std::optional<float> sample_f_scalar(Vec3f world) const;
  [[nodiscard]] std::optional<float> sample_f_simd(Vec3f world) const;

  int resolution_;
  double size_;
  double voxel_size_;
  /// Linear offsets of the 8 trilinear corners in lane order
  /// (lane = dz*4 + dy*2 + dx): {0, 1, res, res+1, res^2, ...}.
  std::array<std::int32_t, 8> corner_offsets_{};
  std::vector<float, hm::geometry::AlignedAllocator<float, 64>> tsdf_;
  std::vector<float, hm::geometry::AlignedAllocator<float, 64>> weight_;
};

}  // namespace hm::kfusion
