// Multi-scale depth pyramid with per-level vertex and normal maps, the
// input representation of the ICP tracker.
#pragma once

#include <vector>

#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/soa.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::kfusion {

using hm::geometry::DepthImage;
using hm::geometry::Intrinsics;
using hm::geometry::NormalMap;
using hm::geometry::Vec3f;
using hm::geometry::VertexMap;

struct PyramidLevel {
  Intrinsics intrinsics;
  DepthImage depth;
  VertexMap vertices;  ///< Camera-space points; zero for invalid pixels.
  NormalMap normals;   ///< Unit normals; zero for invalid pixels.
};

/// Back-projects a depth map into a camera-space vertex map.
[[nodiscard]] VertexMap depth_to_vertices(const DepthImage& depth,
                                          const Intrinsics& intrinsics,
                                          KernelStats& stats);

/// Normals from central differences of the vertex map (cross product of the
/// image-space tangents). Pixels whose neighborhood is incomplete get a
/// zero normal.
[[nodiscard]] NormalMap vertices_to_normals(const VertexMap& vertices,
                                            KernelStats& stats);

/// Builds `level_count` levels: level 0 is the (already filtered) input,
/// each further level halves resolution.
[[nodiscard]] std::vector<PyramidLevel> build_pyramid(const DepthImage& filtered,
                                                      const Intrinsics& intrinsics,
                                                      int level_count,
                                                      KernelStats& stats);

}  // namespace hm::kfusion
