// The full KFusion per-frame pipeline: preprocess -> track -> integrate ->
// raycast, wired to the seven algorithmic parameters of the design space.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "geometry/camera.hpp"
#include "geometry/image.hpp"
#include "geometry/se3.hpp"
#include "kfusion/icp.hpp"
#include "kfusion/kernel_stats.hpp"
#include "kfusion/params.hpp"
#include "kfusion/raycast.hpp"
#include "kfusion/tsdf_volume.hpp"

namespace hm::kfusion {

using hm::geometry::SE3;

/// Stateful pipeline: feed frames in order with process_frame(). The first
/// frame initializes the pose (SLAMBench seeds tracking with the dataset's
/// first ground-truth pose) and the volume.
class KFusionPipeline {
 public:
  KFusionPipeline(const KFusionParams& params, const Intrinsics& raw_intrinsics,
                  const SE3& initial_pose,
                  hm::common::ThreadPool* pool = nullptr);

  struct FrameResult {
    SE3 pose;                ///< Camera-to-world estimate after this frame.
    bool tracked = true;     ///< False when ICP rejected the update.
    bool tracking_attempted = false;
    bool integrated = false;
  };

  /// Processes the next depth frame (raw sensor resolution).
  [[nodiscard]] FrameResult process_frame(const hm::geometry::DepthImage& raw_depth);

  [[nodiscard]] const SE3& pose() const noexcept { return pose_; }
  [[nodiscard]] const TsdfVolume& volume() const noexcept { return *volume_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const KFusionParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t frames_processed() const noexcept { return frame_; }
  /// Estimated poses of all processed frames, in order.
  [[nodiscard]] const std::vector<SE3>& trajectory() const noexcept {
    return trajectory_;
  }

 private:
  KFusionParams params_;
  Intrinsics raw_intrinsics_;
  Intrinsics computed_intrinsics_;  ///< After compute-size-ratio downsampling.
  hm::common::ThreadPool* pool_;
  std::unique_ptr<TsdfVolume> volume_;
  SE3 pose_;
  std::size_t frame_ = 0;
  KernelStats stats_;
  std::vector<SE3> trajectory_;
  IcpConfig icp_config_;
  RaycastConfig raycast_config_;
};

}  // namespace hm::kfusion
