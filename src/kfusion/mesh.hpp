// Triangle-mesh extraction from the TSDF volume and reconstruction-quality
// measurement. KFusion papers visualize the zero level set; here the mesh
// additionally serves as a map-quality metric: vertex distance to the
// ground-truth scene SDF (possible because the dataset substrate knows the
// true geometry — see DESIGN.md).
//
// The extractor uses marching tetrahedra (each voxel cell split into six
// tetrahedra): topologically robust like marching cubes but without the
// 256-entry case tables.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "geometry/vec.hpp"
#include "kfusion/tsdf_volume.hpp"

namespace hm::kfusion {

struct Triangle {
  hm::geometry::Vec3f a, b, c;

  [[nodiscard]] hm::geometry::Vec3f normal() const {
    return (b - a).cross(c - a).normalized();
  }
  [[nodiscard]] float area() const {
    return 0.5f * (b - a).cross(c - a).norm();
  }
};

struct Mesh {
  std::vector<Triangle> triangles;

  [[nodiscard]] std::size_t size() const noexcept { return triangles.size(); }
  [[nodiscard]] bool empty() const noexcept { return triangles.empty(); }
  [[nodiscard]] double total_area() const;
  /// Axis-aligned bounds of all vertices; zeros for an empty mesh.
  struct Bounds {
    hm::geometry::Vec3f min, max;
  };
  [[nodiscard]] Bounds bounds() const;
};

/// Extracts the TSDF zero level set. Only cells whose eight corners all
/// carry integration weight participate (unobserved space produces no
/// spurious geometry). `min_weight` filters barely-observed voxels.
[[nodiscard]] Mesh extract_mesh(const TsdfVolume& volume, float min_weight = 1.0f);

/// Serializes to Wavefront OBJ text (one `v` line per vertex, `f` per
/// triangle).
[[nodiscard]] std::string to_obj(const Mesh& mesh);

/// Mean / max absolute distance (m) of mesh vertices to a reference signed
/// distance function — the reconstruction-error metric. The callable takes
/// a Vec3d and returns the signed distance.
struct SurfaceError {
  double mean = 0.0;
  double max = 0.0;
  std::size_t vertices = 0;
};

template <typename DistanceFn>
[[nodiscard]] SurfaceError surface_error(const Mesh& mesh, DistanceFn&& distance) {
  SurfaceError error;
  double sum = 0.0;
  for (const Triangle& triangle : mesh.triangles) {
    for (const hm::geometry::Vec3f vertex : {triangle.a, triangle.b, triangle.c}) {
      const double d =
          std::abs(distance(hm::geometry::to_double(vertex)));
      sum += d;
      error.max = std::max(error.max, d);
      ++error.vertices;
    }
  }
  if (error.vertices > 0) sum /= static_cast<double>(error.vertices);
  error.mean = sum;
  return error;
}

}  // namespace hm::kfusion
