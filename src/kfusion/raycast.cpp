#include "kfusion/raycast.hpp"

#include <algorithm>
#include <cmath>

namespace hm::kfusion {

RaycastResult raycast(const TsdfVolume& volume, const Intrinsics& intrinsics,
                      const SE3& camera_to_world, double mu,
                      const RaycastConfig& config, KernelStats& stats,
                      hm::common::ThreadPool* pool) {
  RaycastResult result;
  result.vertices = VertexMap(intrinsics.width, intrinsics.height, Vec3f{});
  result.normals = NormalMap(intrinsics.width, intrinsics.height, Vec3f{});

  const double coarse_step =
      std::max(config.step_fraction * mu, volume.voxel_size() * 0.5);

  auto march_rows = [&](std::size_t row_begin, std::size_t row_end,
                        std::uint64_t steps) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      for (int u = 0; u < intrinsics.width; ++u) {
        const Vec3d dir_camera = intrinsics.ray_direction(u, static_cast<int>(v));
        const double dir_norm = dir_camera.norm();
        const Vec3d dir = camera_to_world.rotate(dir_camera / dir_norm);
        const Vec3d origin = camera_to_world.translation;

        double t = config.near_plane;
        double previous_t = t;
        float previous_value = 1.0f;
        bool have_previous = false;
        while (t < config.far_plane) {
          ++steps;
          const auto value = volume.sample(origin + dir * t);
          if (!value) {
            // Unobserved space: step a voxel at a time until re-entering
            // known space.
            have_previous = false;
            t += volume.voxel_size();
            continue;
          }
          if (have_previous && previous_value > 0.0f && *value <= 0.0f) {
            // Zero crossing between previous_t and t: linear interpolation.
            const double alpha =
                static_cast<double>(previous_value) /
                (static_cast<double>(previous_value) - static_cast<double>(*value));
            const double t_hit = previous_t + alpha * (t - previous_t);
            const Vec3d hit = origin + dir * t_hit;
            const auto grad = volume.gradient(hit);
            if (grad && grad->squared_norm() > 1e-12f) {
              result.vertices.at(u, static_cast<int>(v)) =
                  hm::geometry::to_float(hit);
              Vec3f n = grad->normalized();
              // TSDF increases toward free space, so the gradient already
              // points out of the surface; orient toward the camera.
              if (n.dot(hm::geometry::to_float(hit - origin)) > 0.0f) n = -n;
              result.normals.at(u, static_cast<int>(v)) = n;
            }
            break;
          }
          if (have_previous && previous_value <= 0.0f) {
            break;  // Started inside the surface; no reliable crossing.
          }
          previous_value = *value;
          previous_t = t;
          have_previous = true;
          // Adaptive stepping: far from the surface (tsdf ~ 1) take the full
          // coarse step; near the surface slow down for a precise crossing.
          const double scale =
              std::max(0.25, static_cast<double>(std::abs(*value)));
          t += std::max(coarse_step * scale, volume.voxel_size() * 0.25);
        }
      }
    }
    return steps;
  };

  // Rows write disjoint result pixels; the step counter reduces without an
  // atomic accumulator.
  const std::uint64_t total_steps = hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(intrinsics.height), std::uint64_t{0},
      march_rows, [](std::uint64_t a, std::uint64_t b) { return a + b; },
      /*grain=*/4);
  stats.add(Kernel::kRaycast, total_steps);
  return result;
}

}  // namespace hm::kfusion
