#include "kfusion/raycast.hpp"

#include <algorithm>
#include <cmath>

#include "common/simd.hpp"

namespace hm::kfusion {

RaycastResult raycast(const TsdfVolume& volume, const Intrinsics& intrinsics,
                      const SE3& camera_to_world, double mu,
                      const RaycastConfig& config, KernelStats& stats,
                      hm::common::ThreadPool* pool, KernelPath path) {
  RaycastResult result;
  result.vertices = VertexMap(intrinsics.width, intrinsics.height, Vec3f{});
  result.normals = NormalMap(intrinsics.width, intrinsics.height, Vec3f{});

  // Per-ray setup (direction, normalization) stays double; the march and
  // the trilinear samples run in float. min/max via the simd scalar mirrors
  // so the march arithmetic is the same whichever path computes it.
  const auto coarse_step = static_cast<float>(
      std::max(config.step_fraction * mu, volume.voxel_size() * 0.5));
  const float voxel_f = volume.voxel_size_f();
  const auto near_f = static_cast<float>(config.near_plane);
  const auto far_f = static_cast<float>(config.far_plane);
  const Vec3f origin = hm::geometry::to_float(camera_to_world.translation);

  auto march_rows = [&](std::size_t row_begin, std::size_t row_end,
                        std::uint64_t steps) {
    for (std::size_t v = row_begin; v < row_end; ++v) {
      for (int u = 0; u < intrinsics.width; ++u) {
        const Vec3d dir_camera = intrinsics.ray_direction(u, static_cast<int>(v));
        const double dir_norm = dir_camera.norm();
        const Vec3f dir =
            hm::geometry::to_float(camera_to_world.rotate(dir_camera / dir_norm));

        float t = near_f;
        float previous_t = t;
        float previous_value = 1.0f;
        bool have_previous = false;
        while (t < far_f) {
          ++steps;
          const Vec3f p{origin.x + dir.x * t, origin.y + dir.y * t,
                        origin.z + dir.z * t};
          const auto value = volume.sample_f(p, path);
          if (!value) {
            // Unobserved space: step a voxel at a time until re-entering
            // known space.
            have_previous = false;
            t += voxel_f;
            continue;
          }
          if (have_previous && previous_value > 0.0f && *value <= 0.0f) {
            // Zero crossing between previous_t and t: linear interpolation.
            const float alpha = previous_value / (previous_value - *value);
            const float t_hit = previous_t + alpha * (t - previous_t);
            const Vec3f hit{origin.x + dir.x * t_hit, origin.y + dir.y * t_hit,
                            origin.z + dir.z * t_hit};
            const auto grad = volume.gradient_f(hit, path);
            if (grad && grad->squared_norm() > 1e-12f) {
              result.vertices.set(u, static_cast<int>(v), hit);
              Vec3f n = grad->normalized();
              // TSDF increases toward free space, so the gradient already
              // points out of the surface; orient toward the camera.
              if (n.dot(hit - origin) > 0.0f) n = -n;
              result.normals.set(u, static_cast<int>(v), n);
            }
            break;
          }
          if (have_previous && previous_value <= 0.0f) {
            break;  // Started inside the surface; no reliable crossing.
          }
          previous_value = *value;
          previous_t = t;
          have_previous = true;
          // Adaptive stepping: far from the surface (tsdf ~ 1) take the full
          // coarse step; near the surface slow down for a precise crossing.
          const float scale = hm::simd::max_s(0.25f, std::fabs(*value));
          t += hm::simd::max_s(coarse_step * scale, voxel_f * 0.25f);
        }
      }
    }
    return steps;
  };

  // Rows write disjoint result pixels; the step counter reduces without an
  // atomic accumulator. Fixed grain (DESIGN.md §9 grain table).
  const std::uint64_t total_steps = hm::common::parallel_reduce(
      pool, 0, static_cast<std::size_t>(intrinsics.height), std::uint64_t{0},
      march_rows, [](std::uint64_t a, std::uint64_t b) { return a + b; },
      /*grain=*/4);
  stats.add(Kernel::kRaycast, total_steps);
  return result;
}

}  // namespace hm::kfusion
