// The seven algorithmic parameters of the KFusion design space
// (Section III-B of the paper), with the SLAMBench defaults.
#pragma once

#include <array>
#include <cstdint>

namespace hm::kfusion {

struct KFusionParams {
  /// Voxel grid resolution per axis (the paper explores 64..256).
  int volume_resolution = 256;
  /// Physical edge length of the cubic reconstruction volume (m). Fixed in
  /// the SLAMBench living-room setup.
  double volume_size = 4.8;
  /// TSDF truncation distance mu (m).
  double mu = 0.1;
  /// ICP iterations per pyramid level, finest first (SLAMBench -y 10,5,4).
  std::array<int, 3> icp_iterations{10, 5, 4};
  /// Input depth is block-averaged down by this factor before processing.
  int compute_size_ratio = 1;
  /// Localization is attempted every `tracking_rate` frames.
  int tracking_rate = 1;
  /// A frame is fused into the volume every `integration_rate` frames.
  int integration_rate = 1;
  /// ICP early-exit threshold on the squared norm of the twist update.
  double icp_threshold = 1e-5;

  /// ICP robustness gates (not part of the explored space; SLAMBench fixes
  /// them).
  double icp_distance_gate = 0.15;  ///< Max point-to-point distance (m).
  double icp_normal_gate = 0.7;     ///< Min cosine between normals.

  [[nodiscard]] static KFusionParams defaults() { return {}; }
};

}  // namespace hm::kfusion
