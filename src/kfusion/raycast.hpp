// TSDF raycasting: extracts vertex and normal maps of the implicit surface
// as seen from a camera pose. Used both as the ICP reference ("model"
// tracking) and for visualization.
#pragma once

#include "common/thread_pool.hpp"
#include "geometry/camera.hpp"
#include "geometry/se3.hpp"
#include "geometry/soa.hpp"
#include "kfusion/kernel_stats.hpp"
#include "kfusion/tsdf_volume.hpp"

namespace hm::kfusion {

using hm::geometry::NormalMap;
using hm::geometry::VertexMap;

struct RaycastResult {
  VertexMap vertices;  ///< World-space surface points; zero = miss.
  NormalMap normals;   ///< World-space unit normals; zero = miss.
};

struct RaycastConfig {
  double near_plane = 0.3;
  double far_plane = 8.0;
  /// Coarse step as a fraction of mu (KFusion steps ~0.75 * mu until close
  /// to the surface, then refines).
  double step_fraction = 0.75;
};

/// Marches every pixel's ray through the volume from `camera_to_world`,
/// finds the positive-to-negative zero crossing, refines it by linear
/// interpolation, and reports world-space position and normal.
/// Total ray steps are recorded as Kernel::kRaycast. The march itself is
/// shared code; `path` selects the trilinear-sample implementation
/// (TsdfVolume::sample_f), whose scalar and SIMD variants are bit-exact —
/// so the whole raycast is bit-exact across paths, step counts included.
[[nodiscard]] RaycastResult raycast(const TsdfVolume& volume,
                                    const Intrinsics& intrinsics,
                                    const SE3& camera_to_world, double mu,
                                    const RaycastConfig& config, KernelStats& stats,
                                    hm::common::ThreadPool* pool = nullptr,
                                    KernelPath path = KernelPath::kAuto);

}  // namespace hm::kfusion
