// KFusion preprocessing: compute-size-ratio block downsampling and the
// depth bilateral filter.
#pragma once

#include "common/thread_pool.hpp"
#include "geometry/image.hpp"
#include "kfusion/kernel_stats.hpp"

namespace hm::kfusion {

using hm::geometry::DepthImage;

/// Block-averages the depth image down by `ratio` (1 returns a copy).
/// Invalid input pixels (<= 0) are excluded from each block's average; a
/// block with no valid pixel yields an invalid output pixel.
[[nodiscard]] DepthImage downsample_depth(const DepthImage& input, int ratio,
                                          KernelStats& stats);

struct BilateralConfig {
  int radius = 2;               ///< 5x5 window, as in KFusion.
  double sigma_space = 1.75;    ///< Spatial Gaussian sigma (pixels).
  double sigma_depth = 0.05;    ///< Range Gaussian sigma (meters).
};

/// Edge-preserving depth smoothing. Invalid pixels stay invalid and do not
/// contribute to their neighbors. Rows are independent, so the filter
/// parallelizes over `pool` when one is provided. The scalar and SIMD paths
/// (`path`) are bit-exact against each other, including the tap counts
/// (DESIGN.md §9).
[[nodiscard]] DepthImage bilateral_filter(const DepthImage& input,
                                          const BilateralConfig& config,
                                          KernelStats& stats,
                                          hm::common::ThreadPool* pool = nullptr,
                                          KernelPath path = KernelPath::kAuto);

/// Halves the resolution with a validity-aware 2x2 block average (the
/// pyramid construction step).
[[nodiscard]] DepthImage halve_depth(const DepthImage& input, KernelStats& stats);

}  // namespace hm::kfusion
