// The hm_serve daemon core: one poll()-driven event loop hosting many
// concurrent campaigns, with the evaluations fanned out on a ThreadPool and
// funneled back through a self-pipe-woken completion queue — so every
// Campaign/Optimizer call happens on the loop thread and the only shared
// state is the queue itself.
//
// Robustness contract (ISSUE/DESIGN.md §11):
//   - admission control: more than `max_campaigns` active campaigns (or
//     `max_connections` sockets) answers with a *typed* `busy` frame —
//     overload is shed loudly, never by dropping bytes;
//   - liveness: a client that stops talking for `client_idle_seconds`
//     (heartbeats count) has its campaign parked, not leaked; a stalled
//     writer mid-frame hits the per-frame read deadline and is treated the
//     same way;
//   - drain: SIGTERM/SIGINT closes the listener, parks or finishes every
//     in-flight campaign, then exits 130 (the repo-wide cooperative
//     shutdown code);
//   - recovery: on start the journal directory is scanned and every
//     campaign with a scenario sidecar but no completed run is re-openable;
//     a client `resume` (or --auto-resume) continues it from the journal to
//     a byte-identical report.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "sandbox/protocol.hpp"
#include "serve/campaign.hpp"

namespace hm::serve {

struct ServerConfig {
  /// UNIX-domain rendezvous path; empty selects loopback TCP.
  std::string socket_path;
  /// Loopback TCP port when socket_path is empty (0 = ephemeral).
  std::uint16_t tcp_port = 0;
  /// Directory for campaign journals + scenario sidecars.
  std::string journal_dir = ".";
  /// Admission limits: active (running/parking) campaigns and open sockets.
  std::size_t max_campaigns = 4;
  std::size_t max_connections = 32;
  /// Liveness: park an attached campaign when its client has been silent
  /// this long (any frame, including ping, resets the clock). 0 disables.
  double client_idle_seconds = 30.0;
  /// Per-frame read deadline once poll() reports the socket readable; a
  /// writer that stalls mid-frame is treated as dead.
  double frame_read_seconds = 5.0;
  /// SO_SNDTIMEO on every connection (stalled readers).
  double send_timeout_seconds = 5.0;
  /// Event-loop tick; bounds signal/deadline reaction latency.
  double tick_seconds = 0.05;
  /// ThreadPool workers for evaluation fan-out (0 = hardware).
  std::size_t pool_threads = 0;
  /// Re-open every unfinished recovered campaign at start and run it to
  /// completion without waiting for a client `resume`.
  bool auto_resume = false;
  /// Observability endpoint: a second loopback-TCP listener answering
  /// HTTP/1.0 `GET /metrics` (Prometheus text with per-campaign labels),
  /// `GET /status` (JSON campaign table) and `GET /events` (flight-recorder
  /// dump). Negative disables it; 0 binds an ephemeral port reported via
  /// http_port().
  int http_port = -1;
  /// Per-scrape-connection lifetime cap: a scraper that has neither
  /// finished its request nor drained its response by then is closed
  /// (slow-loris / stalled-reader bound).
  double http_deadline_seconds = 5.0;
  /// When non-empty, the flight recorder is dumped here (JSON, atomic
  /// rename) at the end of every drain.
  std::string flight_dump_path;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, scans the journal directory for recoverable
  /// campaigns, and (with auto_resume) re-opens them. Returns false with
  /// `error` set on failure.
  [[nodiscard]] bool start(std::string* error);

  /// Runs the event loop until a shutdown signal or stop(). Returns the
  /// process exit code: 130 after a signal-initiated drain, 0 after stop().
  [[nodiscard]] int run();

  /// Requests an orderly drain from another thread (tests).
  void stop();

  /// The bound TCP port (valid after start() when socket_path is empty).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// The bound observability port (valid after start() when
  /// config.http_port >= 0).
  [[nodiscard]] std::uint16_t http_port() const noexcept {
    return http_bound_port_;
  }

  /// Counters for tests and the drain log line.
  [[nodiscard]] std::size_t shed_count() const noexcept { return sheds_; }
  [[nodiscard]] std::size_t parked_count() const noexcept { return parks_; }
  [[nodiscard]] std::size_t done_count() const noexcept { return dones_; }

 private:
  struct Connection {
    int fd = -1;
    std::shared_ptr<Campaign> campaign;  ///< At most one per connection.
    double last_activity = 0.0;          ///< Server-clock stamp.
    bool greeted = false;
  };

  struct Completion {
    std::shared_ptr<Campaign> campaign;
    std::size_t slot = 0;
    hm::hypermapper::EvaluationOutcome outcome;
  };

  /// One HTTP/1.0 scrape in flight. The socket is non-blocking; the loop
  /// reads the request until the blank line, then drains the buffered
  /// response under POLLOUT — a slow or half-closed scraper can only cost
  /// its own connection (closed at http_deadline_seconds), never block the
  /// frame path.
  struct HttpConnection {
    int fd = -1;
    std::string request;    ///< Bytes received so far (capped).
    std::string response;   ///< Rendered reply, filled once.
    std::size_t sent = 0;   ///< Response bytes already written.
    bool responding = false;
    double opened = 0.0;    ///< Server-clock stamp (deadline base).
  };

  [[nodiscard]] std::size_t active_campaigns() const;
  void accept_new_connection();
  /// Handles one readable connection; returns false when it must close.
  [[nodiscard]] bool service_connection(Connection& conn);
  [[nodiscard]] bool handle_frame(Connection& conn,
                                  const hm::sandbox::ServeFrame& frame);
  [[nodiscard]] bool handle_submit(Connection& conn,
                                   const std::string& scenario_json,
                                   std::uint64_t trace_id);
  [[nodiscard]] bool handle_resume(Connection& conn, const std::string& id,
                                   std::uint64_t trace_id);
  /// Attaches a freshly opened/recovered campaign and starts its batches.
  [[nodiscard]] bool attach_and_pump(Connection& conn,
                                     std::shared_ptr<Campaign> campaign);
  /// Dispatches a campaign's next pending evaluations onto the pool.
  void pump_campaign(const std::shared_ptr<Campaign>& campaign);
  /// Applies queued completions; reports progress/report/parked frames to
  /// the attached client, if any.
  void drain_completions();
  void on_campaign_settled(const std::shared_ptr<Campaign>& campaign);
  /// Parks the campaign attached to a dead/idle connection.
  void abandon_connection(Connection& conn, const std::string& reason);
  void enforce_deadlines();
  void drain(bool from_signal);

  /// Turns span recording on for a traced submit/resume. When the daemon
  /// itself was started with tracing enabled (--trace), this is a no-op:
  /// the operator owns the toggle and every span, request-scoped or not.
  void begin_request_tracing();
  /// Releases a finished campaign's trace state: drops its spans (the
  /// bundle, if a client was attached, has already been shipped) and turns
  /// recording back off once no unfinished traced campaign remains. No-op
  /// under operator-owned (--trace) tracing.
  void end_request_tracing(std::uint64_t trace_id);

  void accept_http_connection();
  /// Advances one scrape; returns false when the socket must close.
  [[nodiscard]] bool service_http_connection(HttpConnection& conn,
                                             short revents);
  /// Routes a complete request line to a rendered HTTP/1.0 response.
  [[nodiscard]] std::string render_http_response(const std::string& request);
  [[nodiscard]] std::string render_metrics_body();
  [[nodiscard]] std::string render_status_body();

  [[nodiscard]] bool send(int fd, const hm::sandbox::ServeFrame& frame);
  [[nodiscard]] Connection* connection_for(const Campaign* campaign);

  ServerConfig config_;
  hm::common::Timer clock_;
  std::unique_ptr<hm::common::ThreadPool> pool_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t bound_port_ = 0;
  std::vector<Connection> connections_;
  int http_listen_fd_ = -1;
  std::uint16_t http_bound_port_ = 0;
  std::vector<HttpConnection> http_connections_;
  /// Every known campaign by id: running, parked, or done (report cache).
  std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
  /// Ids with a sidecar on disk awaiting a client `resume` (restart scan).
  std::vector<std::string> recoverable_;

  std::mutex completion_mutex_;
  std::deque<Completion> completions_;  // hm-guarded-by(completion_mutex_)

  /// Tracing was already on when the daemon started (--trace): the server
  /// never toggles it or drops spans — the whole process timeline belongs
  /// to the operator's trace file.
  bool trace_sticky_ = false;

  std::atomic<bool> stop_requested_{false};  ///< stop() -> loop.
  std::size_t sheds_ = 0;
  std::size_t parks_ = 0;
  std::size_t dones_ = 0;
};

}  // namespace hm::serve
