#include "serve/net.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/timer.hpp"

namespace hm::serve {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// connect() with EINTR restart; on EINTR after the SYN is in flight the
/// socket keeps connecting, so a second connect() reporting EISCONN is
/// success, not an error.
[[nodiscard]] bool connect_once(int fd, const struct sockaddr* addr,
                                socklen_t len) {
  while (::connect(fd, addr, len) != 0) {
    if (errno == EINTR) {
      struct pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      if (poll_retry(&pfd, 1, -1) < 0) return false;
      int soerr = 0;
      socklen_t soerr_len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0) {
        return false;
      }
      if (soerr != 0) {
        errno = soerr;
        return false;
      }
      return true;
    }
    if (errno == EISCONN) return true;
    return false;
  }
  return true;
}

/// Retries a connect attempt while the daemon may still be binding: the
/// socket file may not exist yet (ENOENT) or the listener backlog may not
/// be up (ECONNREFUSED). Each attempt uses a fresh socket — a failed
/// connect leaves an fd in an undefined state.
template <typename MakeAttempt>
[[nodiscard]] int connect_with_retry(MakeAttempt&& attempt,
                                     double wait_seconds,
                                     std::string* error) {
  const hm::common::Timer timer;
  while (true) {
    const int fd = attempt(error);
    if (fd >= 0) return fd;
    const bool transient = errno == ECONNREFUSED || errno == ENOENT;
    if (!transient || timer.seconds() >= wait_seconds) return -1;
    struct timespec nap{};
    nap.tv_nsec = 20L * 1000L * 1000L;  // 20ms between attempts.
    ::nanosleep(&nap, nullptr);
  }
}

}  // namespace

int listen_unix(const std::string& path, int backlog, std::string* error) {
  struct sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return -1;
  }
  ::unlink(path.c_str());  // The daemon owns its rendezvous path.
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    if (error != nullptr) *error = errno_message("bind/listen");
    close_socket(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
               std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    if (error != nullptr) *error = errno_message("bind/listen");
    close_socket(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    struct sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual), &len) !=
        0) {
      if (error != nullptr) *error = errno_message("getsockname");
      close_socket(fd);
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path, double wait_seconds,
                 std::string* error) {
  struct sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_with_retry(
      [&](std::string* attempt_error) -> int {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
          if (attempt_error != nullptr) *attempt_error = errno_message("socket");
          return -1;
        }
        if (!connect_once(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                          sizeof(addr))) {
          const int saved = errno;
          if (attempt_error != nullptr) {
            *attempt_error = errno_message("connect");
          }
          close_socket(fd);
          errno = saved;
          return -1;
        }
        return fd;
      },
      wait_seconds, error);
}

int connect_tcp(std::uint16_t port, double wait_seconds, std::string* error) {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return connect_with_retry(
      [&](std::string* attempt_error) -> int {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
          if (attempt_error != nullptr) *attempt_error = errno_message("socket");
          return -1;
        }
        if (!connect_once(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                          sizeof(addr))) {
          const int saved = errno;
          if (attempt_error != nullptr) {
            *attempt_error = errno_message("connect");
          }
          close_socket(fd);
          errno = saved;
          return -1;
        }
        return fd;
      },
      wait_seconds, error);
}

int accept_retry(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    // ECONNABORTED: the peer gave up while queued — not a listener fault;
    // report it like a spurious wakeup and let the event loop re-poll.
    if (errno == ECONNABORTED) errno = EAGAIN;
    return -1;
  }
}

int poll_retry(struct pollfd* fds, unsigned long count, int timeout_ms) {
  const hm::common::Timer timer;
  while (true) {
    int remaining = timeout_ms;
    if (timeout_ms >= 0) {
      const double elapsed_ms = timer.seconds() * 1e3;
      remaining = timeout_ms - static_cast<int>(elapsed_ms);
      if (remaining < 0) remaining = 0;
    }
    const int ready = ::poll(fds, static_cast<nfds_t>(count), remaining);
    if (ready >= 0) return ready;
    if (errno != EINTR) return -1;
    if (timeout_ms >= 0 && timer.seconds() * 1e3 >= timeout_ms) return 0;
  }
}

bool set_send_timeout(int fd, double seconds) {
  struct timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  return ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

long read_some(int fd, char* out, std::size_t capacity) {
  while (true) {
    const ssize_t got = ::read(fd, out, capacity);
    if (got >= 0) return static_cast<long>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

long write_some(int fd, const char* data, std::size_t len) {
  while (true) {
    const ssize_t put = ::write(fd, data, len);
    if (put >= 0) return static_cast<long>(put);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

void ignore_sigpipe() {
  struct sigaction action{};
  action.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &action, nullptr);
}

void close_socket(int fd) {
  if (fd >= 0) hm::common::close_relaxed(fd);
}

bool make_wake_pipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  // Non-blocking on both ends: a full pipe must not block a pool thread,
  // and draining must not block the loop.
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    if (flags >= 0) ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
  }
  return true;
}

void wake(int write_fd) {
  const char byte = 'w';
  while (::write(write_fd, &byte, 1) < 0) {
    if (errno != EINTR) return;  // EAGAIN: pipe full, loop wakes anyway.
  }
}

void drain_wake(int read_fd) {
  char buffer[256];
  while (true) {
    const ssize_t got = ::read(read_fd, buffer, sizeof(buffer));
    if (got > 0) continue;
    if (got < 0 && errno == EINTR) continue;
    return;  // EAGAIN (drained) or EOF.
  }
}

}  // namespace hm::serve
