// One hosted tuning campaign: a journaled batch-async optimizer run plus
// the durable state that makes it survivable. On admission the submitted
// scenario text is persisted atomically as `<dir>/<id>.scenario.json` and
// the run journals into `<dir>/<id>.wal`; from those two files alone a
// campaign can be re-opened after a daemon crash, a park, or a client
// death, and — because the optimizer merges outcomes in journal seq order —
// the recovered run's final report is byte-identical to an uninterrupted
// one.
//
// Lifecycle (DESIGN.md §11):
//
//   admitted -> running -> done
//                  |
//                  +-> parked  (drain, dead client, campaign deadline,
//                  |     |      daemon restart)
//                  |     +-> running  (client `resume` re-opens the journal)
//                  +-> shed happens before admission (typed `busy` reply)
//
// Threading: every method except evaluate() is driver-thread-only (the
// server's event loop). evaluate() is the pool-thread entry point; it only
// touches the supervision wrapper, which is thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/journal.hpp"
#include "common/timer.hpp"
#include "hypermapper/optimizer.hpp"
#include "sandbox/sandbox.hpp"
#include "serve/scenario.hpp"

namespace hm::serve {

class Campaign {
 public:
  enum class State : std::uint8_t {
    kAdmitted,  ///< Persisted, not yet proposing.
    kRunning,   ///< Proposing batches / evaluations in flight.
    kParking,   ///< Park requested; draining in-flight evaluations.
    kParked,    ///< Journal closed, resumable; no session live.
    kDone,      ///< Finished; final report rendered.
  };

  /// One evaluation the server must dispatch: a slot of the current batch.
  struct Dispatch {
    std::size_t slot = 0;
    hm::hypermapper::Configuration config;
  };

  /// Admits a fresh campaign: persists the scenario sidecar, opens a new
  /// journal, and starts the batch-async session. Returns nullptr with
  /// `error` set on any failure (the journal directory is left clean).
  [[nodiscard]] static std::unique_ptr<Campaign> open(
      const std::string& journal_dir, Scenario scenario, std::string* error);

  /// Re-opens a parked or crashed campaign from its sidecar + journal.
  /// The campaign resumes running immediately. A campaign whose journal
  /// already holds a completed run comes back in the done state with its
  /// report rendered — byte-identical to the uninterrupted one.
  [[nodiscard]] static std::unique_ptr<Campaign> recover(
      const std::string& journal_dir, const std::string& id,
      std::string* error);

  ~Campaign();
  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  [[nodiscard]] const std::string& id() const noexcept {
    return scenario_->name;
  }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] static const char* to_string(State state);

  /// Drives the session forward: commits a resolved batch and proposes the
  /// next one. Returns the evaluations to dispatch (possibly none: waiting
  /// on in-flight slots, parked, or done). Transitions to kDone/kParked
  /// internally. Driver thread only.
  [[nodiscard]] std::vector<Dispatch> pump();

  /// Pool-thread entry point: one supervised evaluation (never throws).
  [[nodiscard]] hm::hypermapper::EvaluationOutcome evaluate(
      const hm::hypermapper::Configuration& config);

  /// Folds a completed evaluation back in. Driver thread only (the server
  /// funnels pool completions through its queue).
  void deliver(std::size_t slot, hm::hypermapper::EvaluationOutcome outcome);

  /// Requests a park: stop proposing, drain in-flight evaluations, close
  /// the journal resumably. Takes effect immediately when nothing is in
  /// flight. `reason` is reported to the client and logged.
  void park(const std::string& reason);

  /// Request-scoped trace id propagated from the submitting client's
  /// frames; evaluations for this campaign (and their sandbox workers)
  /// record spans under it. 0 = untraced.
  void set_trace_id(std::uint64_t trace_id) noexcept { trace_id_ = trace_id; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }

  /// Evaluations dispatched but not yet delivered.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_;
  }
  /// True once the campaign's wall-clock deadline (if any) has expired.
  [[nodiscard]] bool deadline_expired() const;
  [[nodiscard]] const std::string& park_reason() const noexcept {
    return park_reason_;
  }

  /// Progress counters for `progress` frames.
  [[nodiscard]] std::size_t iteration() const;
  [[nodiscard]] std::size_t sample_count() const;
  [[nodiscard]] std::size_t front_size() const;

  /// Delivered-evaluation counters for the per-campaign metric labels:
  /// outcomes folded in, and retry attempts consumed beyond each first try.
  [[nodiscard]] std::size_t evals_delivered() const noexcept {
    return evals_delivered_;
  }
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }

  /// The final rendered report (valid once state() == kDone): samples CSV +
  /// front CSV + quarantine CSV + random-phase front indices + per-iteration
  /// stat records — the same rendering the crash harness compares
  /// byte-for-byte.
  [[nodiscard]] const std::string& report() const noexcept { return report_; }
  [[nodiscard]] bool interrupted() const noexcept { return interrupted_; }

  /// Renders a result the way Campaign does (shared with tests).
  [[nodiscard]] static std::string render_report(
      const hm::hypermapper::DesignSpace& space,
      const hm::hypermapper::OptimizationResult& result,
      const std::vector<std::string>& objective_names);

  [[nodiscard]] static std::string journal_path(const std::string& dir,
                                                const std::string& id);
  [[nodiscard]] static std::string sidecar_path(const std::string& dir,
                                                const std::string& id);
  /// Campaign ids with a scenario sidecar in `dir` (restart recovery scan).
  [[nodiscard]] static std::vector<std::string> scan(const std::string& dir);

 private:
  Campaign() = default;

  /// Builds the evaluator chain + optimizer and opens the journal; shared
  /// by open() and recover().
  [[nodiscard]] bool build(const std::string& journal_dir, bool fresh,
                           std::string* error);
  void finalize_done();
  void finalize_parked();

  std::unique_ptr<Scenario> scenario_;  ///< Stable address for evaluator_.
  std::unique_ptr<hm::hypermapper::Evaluator> evaluator_;
  std::unique_ptr<hm::sandbox::SandboxedEvaluator> sandboxed_;
  std::unique_ptr<hm::common::JournalWriter> writer_;
  std::unique_ptr<hm::hypermapper::Optimizer> optimizer_;
  std::unique_ptr<hm::hypermapper::Optimizer::AsyncRun> session_;
  hm::common::Timer clock_;  ///< Started at open/recover (deadline base).

  State state_ = State::kAdmitted;
  std::size_t outstanding_ = 0;
  std::uint64_t trace_id_ = 0;
  std::size_t evals_delivered_ = 0;
  std::size_t retries_ = 0;
  std::string park_reason_;
  std::string report_;
  bool interrupted_ = false;
};

}  // namespace hm::serve
