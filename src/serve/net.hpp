// Socket shim for the hm_serve daemon: the single serve-layer file allowed
// to touch raw descriptors (enforced by hm_lint's no-unguarded-syscall
// allowlist). Everything here is EINTR-hardened the same way
// common/atomic_file hardens file I/O:
//
//   - accept_retry / poll_retry restart on EINTR (poll with the remaining
//     timeout recomputed from a monotonic timer, so a signal storm cannot
//     stretch a tick);
//   - connect_with_retry handles the transient refusals of a daemon that
//     is still binding its socket (serve.sh races client against daemon);
//   - SIGPIPE is ignored process-wide by the daemon and client so a peer
//     that vanished surfaces as EPIPE from write_fd_all, not a kill.
//
// Both UNIX-domain and loopback TCP listeners are supported; a connected
// socket is just an fd, and the framed protocol (sandbox/protocol.hpp)
// reads and writes it with the same code that drives the sandbox pipes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <poll.h>

namespace hm::serve {

/// Binds and listens on a UNIX-domain socket at `path` (an existing socket
/// file is unlinked first — the daemon owns its rendezvous path). Returns
/// the listening fd or -1 with `error` set.
[[nodiscard]] int listen_unix(const std::string& path, int backlog,
                              std::string* error);

/// Binds and listens on loopback TCP `port` (0 picks an ephemeral port,
/// reported via `bound_port`). Returns the listening fd or -1.
[[nodiscard]] int listen_tcp(std::uint16_t port, int backlog,
                             std::uint16_t* bound_port, std::string* error);

/// Connects to a UNIX-domain socket, retrying ECONNREFUSED/ENOENT for up
/// to `wait_seconds` (a client racing the daemon's bind). Returns the
/// connected fd or -1.
[[nodiscard]] int connect_unix(const std::string& path, double wait_seconds,
                               std::string* error);

/// Connects to loopback TCP `port` with the same retry policy.
[[nodiscard]] int connect_tcp(std::uint16_t port, double wait_seconds,
                              std::string* error);

/// accept() restarted on EINTR. Returns the connection fd, or -1 with
/// errno preserved for the caller (EAGAIN when the listener was spurious).
[[nodiscard]] int accept_retry(int listen_fd);

/// poll() restarted on EINTR with the remaining timeout recomputed, so the
/// daemon's tick length is signal-independent. `timeout_ms < 0` blocks.
/// Returns poll's result (0 on timeout, -1 only on a non-EINTR error).
[[nodiscard]] int poll_retry(struct pollfd* fds, unsigned long count,
                             int timeout_ms);

/// Bounds blocking send() time on a connected socket so one stalled reader
/// cannot wedge the daemon's event loop mid-reply. Returns false on error.
[[nodiscard]] bool set_send_timeout(int fd, double seconds);

/// Marks the fd non-blocking (the HTTP scrape sockets: the event loop must
/// never block on a slow or hostile scraper). Returns false on error.
[[nodiscard]] bool set_nonblocking(int fd);

/// One read(), EINTR-restarted. Returns bytes read (> 0), 0 on EOF, -1 on
/// a hard error, or kWouldBlock when a non-blocking fd has nothing yet.
inline constexpr long kWouldBlock = -2;
[[nodiscard]] long read_some(int fd, char* out, std::size_t capacity);

/// One write(), EINTR-restarted, same return convention as read_some (0 is
/// never returned for len > 0; a gone peer is a hard error via EPIPE).
[[nodiscard]] long write_some(int fd, const char* data, std::size_t len);

/// Ignores SIGPIPE process-wide (idempotent). Call before any socket write.
void ignore_sigpipe();

/// Closes a socket fd (EINTR-safe, idempotent on -1).
void close_socket(int fd);

/// Creates the event loop's self-wake pipe (pool threads nudge the poll
/// loop by writing one byte). Returns false on failure.
[[nodiscard]] bool make_wake_pipe(int fds[2]);

/// Writes one wake byte (best-effort; a full pipe already wakes the loop).
void wake(int write_fd);

/// Drains all pending wake bytes (called by the loop after POLLIN).
void drain_wake(int read_fd);

}  // namespace hm::serve
