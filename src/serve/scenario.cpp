#include "serve/scenario.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "hypermapper/resilient_evaluator.hpp"

namespace hm::serve {

namespace {

using hm::hypermapper::Configuration;
using hm::hypermapper::DesignSpace;
using hm::hypermapper::EvaluationError;
using hm::hypermapper::Evaluator;
using hm::hypermapper::Parameter;

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  [[nodiscard]] std::optional<JsonValue> parse() {
    skip_whitespace();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing bytes after JSON document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " (at byte " + std::to_string(pos_) + ")";
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    fail(std::string("expected '") + expected + "'");
    return false;
  }

  [[nodiscard]] bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = parse_string(out.string);
        break;
      case 't':
      case 'f': ok = parse_literal(out); break;
      case 'n': ok = parse_literal(out); break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  [[nodiscard]] bool parse_literal(JsonValue& out) {
    const auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    fail("invalid literal");
    return false;
  }

  [[nodiscard]] bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid number");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      fail("invalid number '" + token + "'");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return true;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return false;
            }
          }
          if (code > 0x7F) {
            fail("\\u escape beyond ASCII is not supported");
            return false;
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("invalid escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  [[nodiscard]] bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  [[nodiscard]] bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object[std::move(key)] = std::move(value);
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  static constexpr int kMaxDepth = 32;
  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

/// Scenario-decode helpers: every failure path sets `error` exactly once.
[[nodiscard]] bool get_number(const JsonValue& object, const std::string& key,
                              double* out, std::string* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) return true;  // Optional key; keep the default.
  if (value->kind != JsonValue::Kind::kNumber) {
    *error = "'" + key + "' must be a number";
    return false;
  }
  *out = value->number;
  return true;
}

[[nodiscard]] bool get_count(const JsonValue& object, const std::string& key,
                             std::size_t* out, std::string* error) {
  double number = static_cast<double>(*out);
  if (!get_number(object, key, &number, error)) return false;
  if (number < 0.0 || number != std::floor(number) || number > 1e9) {
    *error = "'" + key + "' must be a small non-negative integer";
    return false;
  }
  *out = static_cast<std::size_t>(number);
  return true;
}

[[nodiscard]] bool get_u64(const JsonValue& object, const std::string& key,
                           std::uint64_t* out, std::string* error) {
  double number = static_cast<double>(*out);
  if (!get_number(object, key, &number, error)) return false;
  if (number < 0.0 || number != std::floor(number) || number > 1e15) {
    *error = "'" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(number);
  return true;
}

[[nodiscard]] bool valid_campaign_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

[[nodiscard]] bool parse_parameter(const JsonValue& spec, DesignSpace* space,
                                   std::string* error) {
  if (spec.kind != JsonValue::Kind::kObject) {
    *error = "space entries must be objects";
    return false;
  }
  const JsonValue* kind = spec.find("kind");
  const JsonValue* name = spec.find("name");
  if (kind == nullptr || kind->kind != JsonValue::Kind::kString ||
      name == nullptr || name->kind != JsonValue::Kind::kString ||
      name->string.empty()) {
    *error = "parameter needs string 'kind' and 'name'";
    return false;
  }
  if (space->index_of(name->string).has_value()) {
    *error = "duplicate parameter name '" + name->string + "'";
    return false;
  }
  const JsonValue* log = spec.find("log");
  const bool log_feature =
      log != nullptr && log->kind == JsonValue::Kind::kBool && log->boolean;
  if (kind->string == "integer") {
    double lo = 0.0;
    double hi = -1.0;
    if (!get_number(spec, "lo", &lo, error) ||
        !get_number(spec, "hi", &hi, error)) {
      return false;
    }
    if (lo != std::floor(lo) || hi != std::floor(hi) || hi < lo) {
      *error = "integer parameter '" + name->string + "' needs lo <= hi";
      return false;
    }
    space->add(Parameter::integer_range(name->string,
                                        static_cast<std::int64_t>(lo),
                                        static_cast<std::int64_t>(hi)));
    return true;
  }
  if (kind->string == "ordinal") {
    const JsonValue* values = spec.find("values");
    if (values == nullptr || values->kind != JsonValue::Kind::kArray ||
        values->array.empty()) {
      *error = "ordinal parameter '" + name->string + "' needs 'values'";
      return false;
    }
    std::vector<double> list;
    list.reserve(values->array.size());
    for (const JsonValue& entry : values->array) {
      if (entry.kind != JsonValue::Kind::kNumber) {
        *error = "ordinal values must be numbers";
        return false;
      }
      list.push_back(entry.number);
    }
    space->add(Parameter::ordinal(name->string, std::move(list), log_feature));
    return true;
  }
  if (kind->string == "boolean") {
    space->add(Parameter::boolean(name->string));
    return true;
  }
  if (kind->string == "categorical") {
    const JsonValue* labels = spec.find("labels");
    if (labels == nullptr || labels->kind != JsonValue::Kind::kArray ||
        labels->array.empty()) {
      *error = "categorical parameter '" + name->string + "' needs 'labels'";
      return false;
    }
    std::vector<std::string> list;
    list.reserve(labels->array.size());
    for (const JsonValue& entry : labels->array) {
      if (entry.kind != JsonValue::Kind::kString) {
        *error = "categorical labels must be strings";
        return false;
      }
      list.push_back(entry.string);
    }
    space->add(Parameter::categorical(name->string, std::move(list)));
    return true;
  }
  if (kind->string == "real") {
    double lo = 0.0;
    double hi = -1.0;
    if (!get_number(spec, "lo", &lo, error) ||
        !get_number(spec, "hi", &hi, error)) {
      return false;
    }
    if (!(lo < hi)) {
      *error = "real parameter '" + name->string + "' needs lo < hi";
      return false;
    }
    space->add(Parameter::real(name->string, lo, hi, log_feature));
    return true;
  }
  *error = "unknown parameter kind '" + kind->string + "'";
  return false;
}

/// The "grid" evaluator: the crash_test problem, generalized to any space.
/// Objectives are smooth functions of the first two features, with a
/// deterministic permanent-failure band keyed by configuration (and an
/// optional hang band for chaos tests). Deterministic and thread-safe.
class GridEvaluator final : public Evaluator {
 public:
  GridEvaluator(const DesignSpace& space, const Scenario& scenario)
      : space_(space),
        objective_count_(scenario.objective_names.size()),
        fail_modulo_(scenario.fail_modulo),
        fail_remainder_(scenario.fail_remainder),
        hang_modulo_(scenario.hang_modulo),
        hang_remainder_(scenario.hang_remainder),
        hang_seconds_(scenario.hang_seconds) {}

  [[nodiscard]] std::size_t objective_count() const override {
    return objective_count_;
  }
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] std::vector<double> evaluate(
      const Configuration& config) override {
    const std::uint64_t key = space_.cardinality() > 0
                                  ? space_.key(config)
                                  : hm::hypermapper::config_hash(config);
    if (hang_modulo_ != 0 && key % hang_modulo_ == hang_remainder_) {
      std::this_thread::sleep_for(std::chrono::duration<double>(hang_seconds_));
    }
    if (fail_modulo_ != 0 && key % fail_modulo_ == fail_remainder_) {
      throw EvaluationError(
          "deterministic failure for key " + std::to_string(key),
          /*transient=*/false);
    }
    const std::vector<double> features = space_.features(config);
    const double x = features[0];
    const double y = features.size() > 1 ? features[1] : 0.0;
    std::vector<double> objectives;
    objectives.push_back(x + 0.01 * y);
    if (objective_count_ > 1) {
      objectives.push_back((1.0 - x) * (1.0 - x) +
                           0.4 * (y - 0.3) * (y - 0.3));
    }
    return objectives;
  }

 private:
  const DesignSpace& space_;
  std::size_t objective_count_;
  std::uint64_t fail_modulo_;
  std::uint64_t fail_remainder_;
  std::uint64_t hang_modulo_;
  std::uint64_t hang_remainder_;
  double hang_seconds_;
};

/// The "synthetic" evaluator: a smooth multimodal surface over all features
/// (no failure injection unless requested). Deterministic and thread-safe.
class SyntheticEvaluator final : public Evaluator {
 public:
  SyntheticEvaluator(const DesignSpace& space, const Scenario& scenario)
      : space_(space),
        objective_count_(scenario.objective_names.size()),
        fail_modulo_(scenario.fail_modulo),
        fail_remainder_(scenario.fail_remainder) {}

  [[nodiscard]] std::size_t objective_count() const override {
    return objective_count_;
  }
  [[nodiscard]] bool thread_safe() const override { return true; }

  [[nodiscard]] std::vector<double> evaluate(
      const Configuration& config) override {
    const std::uint64_t key = space_.cardinality() > 0
                                  ? space_.key(config)
                                  : hm::hypermapper::config_hash(config);
    if (fail_modulo_ != 0 && key % fail_modulo_ == fail_remainder_) {
      throw EvaluationError(
          "deterministic failure for key " + std::to_string(key),
          /*transient=*/false);
    }
    const std::vector<double> features = space_.features(config);
    double sum = 0.0;
    double ripple = 0.0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      const double f = features[i];
      sum += f;
      ripple += 0.5 * (1.0 + std::sin(6.28318 * f * double(i + 1))) /
                double(features.size());
    }
    const double mean = sum / double(features.size());
    std::vector<double> objectives;
    objectives.push_back(mean + 0.1 * ripple);
    if (objective_count_ > 1) {
      objectives.push_back((1.0 - mean) * (1.0 - mean) + 0.1 * ripple);
    }
    return objectives;
  }

 private:
  const DesignSpace& space_;
  std::size_t objective_count_;
  std::uint64_t fail_modulo_;
  std::uint64_t fail_remainder_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  JsonParser parser(text, error);
  return parser.parse();
}

std::optional<Scenario> parse_scenario(std::string_view text,
                                       std::string* error) {
  std::string parse_error;
  const auto document = parse_json(text, &parse_error);
  if (!document) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  if (document->kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "scenario must be a JSON object";
    return std::nullopt;
  }
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;

  Scenario scenario;
  scenario.raw.assign(text);

  const JsonValue* name = document->find("name");
  if (name == nullptr || name->kind != JsonValue::Kind::kString ||
      !valid_campaign_name(name->string)) {
    *err = "scenario needs a 'name' matching [A-Za-z0-9._-]{1,64}";
    return std::nullopt;
  }
  scenario.name = name->string;

  const JsonValue* space = document->find("space");
  if (space == nullptr || space->kind != JsonValue::Kind::kArray ||
      space->array.empty()) {
    *err = "scenario needs a non-empty 'space' array";
    return std::nullopt;
  }
  for (const JsonValue& spec : space->array) {
    if (!parse_parameter(spec, &scenario.space, err)) return std::nullopt;
  }

  scenario.objective_names = {"f0", "f1"};
  if (const JsonValue* objectives = document->find("objectives")) {
    if (objectives->kind != JsonValue::Kind::kArray ||
        objectives->array.empty() || objectives->array.size() > 2) {
      *err = "'objectives' must list 1 or 2 names";
      return std::nullopt;
    }
    scenario.objective_names.clear();
    for (const JsonValue& entry : objectives->array) {
      if (entry.kind != JsonValue::Kind::kString || entry.string.empty()) {
        *err = "objective names must be non-empty strings";
        return std::nullopt;
      }
      scenario.objective_names.push_back(entry.string);
    }
  }

  // Small-by-default budget: a served smoke campaign should finish in
  // seconds; clients opt into larger budgets explicitly.
  scenario.config.random_samples = 40;
  scenario.config.max_iterations = 4;
  scenario.config.max_samples_per_iteration = 15;
  scenario.config.pool_size = 200;
  scenario.config.forest.tree_count = 8;
  if (!get_u64(*document, "seed", &scenario.config.seed, err)) {
    return std::nullopt;
  }
  if (const JsonValue* budget = document->find("budget")) {
    if (budget->kind != JsonValue::Kind::kObject) {
      *err = "'budget' must be an object";
      return std::nullopt;
    }
    if (!get_count(*budget, "random_samples", &scenario.config.random_samples,
                   err) ||
        !get_count(*budget, "max_iterations", &scenario.config.max_iterations,
                   err) ||
        !get_count(*budget, "max_samples_per_iteration",
                   &scenario.config.max_samples_per_iteration, err) ||
        !get_count(*budget, "pool_size", &scenario.config.pool_size, err) ||
        !get_count(*budget, "tree_count", &scenario.config.forest.tree_count,
                   err)) {
      return std::nullopt;
    }
    if (scenario.config.random_samples == 0) {
      *err = "'random_samples' must be >= 1";
      return std::nullopt;
    }
  }

  if (const JsonValue* evaluator = document->find("evaluator")) {
    if (evaluator->kind != JsonValue::Kind::kObject) {
      *err = "'evaluator' must be an object";
      return std::nullopt;
    }
    if (const JsonValue* kind = evaluator->find("kind")) {
      if (kind->kind != JsonValue::Kind::kString) {
        *err = "evaluator 'kind' must be a string";
        return std::nullopt;
      }
      scenario.evaluator_kind = kind->string;
    }
    if (!get_u64(*evaluator, "fail_modulo", &scenario.fail_modulo, err) ||
        !get_u64(*evaluator, "fail_remainder", &scenario.fail_remainder, err) ||
        !get_u64(*evaluator, "hang_modulo", &scenario.hang_modulo, err) ||
        !get_u64(*evaluator, "hang_remainder", &scenario.hang_remainder, err) ||
        !get_number(*evaluator, "hang_seconds", &scenario.hang_seconds, err)) {
      return std::nullopt;
    }
  }
  if (scenario.evaluator_kind != "grid" &&
      scenario.evaluator_kind != "synthetic") {
    *err = "unknown evaluator kind '" + scenario.evaluator_kind + "'";
    return std::nullopt;
  }

  if (const JsonValue* sandbox = document->find("sandbox")) {
    if (sandbox->kind != JsonValue::Kind::kBool) {
      *err = "'sandbox' must be a boolean";
      return std::nullopt;
    }
    scenario.sandbox = sandbox->boolean;
  }
  if (const JsonValue* deadlines = document->find("deadlines")) {
    if (deadlines->kind != JsonValue::Kind::kObject) {
      *err = "'deadlines' must be an object";
      return std::nullopt;
    }
    if (!get_number(*deadlines, "eval_seconds",
                    &scenario.eval_deadline_seconds, err) ||
        !get_number(*deadlines, "campaign_seconds",
                    &scenario.campaign_deadline_seconds, err)) {
      return std::nullopt;
    }
    if (scenario.eval_deadline_seconds < 0.0 ||
        scenario.campaign_deadline_seconds < 0.0) {
      *err = "deadlines must be non-negative";
      return std::nullopt;
    }
  }
  return scenario;
}

std::unique_ptr<hm::hypermapper::Evaluator> make_scenario_evaluator(
    const Scenario& scenario) {
  if (scenario.evaluator_kind == "grid") {
    return std::make_unique<GridEvaluator>(scenario.space, scenario);
  }
  if (scenario.evaluator_kind == "synthetic") {
    return std::make_unique<SyntheticEvaluator>(scenario.space, scenario);
  }
  return nullptr;
}

}  // namespace hm::serve
