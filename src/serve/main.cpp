// hm_serve: the supervised multi-campaign tuning daemon.
//
//   ./hm_serve --dir campaigns/ [--socket /tmp/hm_serve.sock | --port N]
//              [--max-campaigns N] [--max-connections N]
//              [--idle-timeout SECONDS] [--pool N] [--auto-resume]
//              [--port-file PATH]
//              [--http-port N] [--http-port-file PATH]
//              [--flight-dump PATH] [--trace PATH] [--metrics PATH]
//
// --http-port exposes the live observability endpoint (GET /metrics,
// /status, /events on loopback; 0 picks an ephemeral port written to
// --http-port-file). --flight-dump names the flight-recorder JSON written
// on drain and — via the crash-signal handler — on SIGSEGV and friends.
//
// Clients connect over the UNIX socket (or loopback TCP), submit JSON
// scenarios (see serve/scenario.hpp for the schema), and receive progress
// frames and the final report. Campaigns journal into --dir; kill -9 the
// daemon mid-campaign, restart it on the same --dir, and a client `resume`
// continues every unfinished campaign to a byte-identical report.
//
// Exit codes: 0 after stop, 130 after a SIGINT/SIGTERM drain (the repo-wide
// cooperative-shutdown code — every driver binary agrees), 1 on startup
// failure.
#include <cstdio>
#include <string>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "common/flight_recorder.hpp"
#include "common/log.hpp"
#include "common/signal.hpp"
#include "observability.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const common::CliArgs args(argc, argv, {"auto-resume"});
  // Daemon logs always carry the ISO-8601 + thread-id prefix (campaign-
  // tagged via the per-evaluation log context), with or without --trace.
  common::set_log_format(common::LogFormat::kTimestamped);
  const auto observability = examples::Observability::from_args(args);
  serve::ServerConfig config;
  config.journal_dir = args.get_or("dir", std::string("campaigns"));
  config.socket_path = args.get_or("socket", std::string());
  config.tcp_port =
      static_cast<std::uint16_t>(args.get_or("port", std::int64_t{0}));
  config.max_campaigns =
      static_cast<std::size_t>(args.get_or("max-campaigns", std::int64_t{4}));
  config.max_connections = static_cast<std::size_t>(
      args.get_or("max-connections", std::int64_t{32}));
  config.client_idle_seconds = args.get_or("idle-timeout", 30.0);
  config.pool_threads =
      static_cast<std::size_t>(args.get_or("pool", std::int64_t{0}));
  config.auto_resume = args.flag("auto-resume");
  config.http_port =
      static_cast<int>(args.get_or("http-port", std::int64_t{-1}));
  config.flight_dump_path = args.get_or("flight-dump", std::string());

  if (!common::install_shutdown_handler()) {
    common::log_warn() << "hm_serve: cannot install signal handlers";
  }
  if (!config.flight_dump_path.empty()) {
    common::install_crash_recorder(config.flight_dump_path);
  }

  serve::Server server(std::move(config));
  std::string error;
  if (!server.start(&error)) {
    common::log_error() << "hm_serve: " << error;
    return 1;
  }
  if (const auto port_file = args.get("port-file")) {
    // Atomic: a watcher (serve.sh) never reads a torn port number.
    if (!common::write_file_atomic(*port_file,
                                   std::to_string(server.port()) + "\n",
                                   &error)) {
      common::log_error() << "hm_serve: cannot write " << *port_file << ": "
                          << error;
      return 1;
    }
  }
  if (const auto http_port_file = args.get("http-port-file")) {
    if (!common::write_file_atomic(
            *http_port_file, std::to_string(server.http_port()) + "\n",
            &error)) {
      common::log_error() << "hm_serve: cannot write " << *http_port_file
                          << ": " << error;
      return 1;
    }
  }
  std::printf("hm_serve: listening on %s\n",
              args.has("socket")
                  ? args.get_or("socket", std::string()).c_str()
                  : ("127.0.0.1:" + std::to_string(server.port())).c_str());
  std::fflush(stdout);
  const int code = server.run();
  (void)observability.finish(nullptr);
  return code;
}
