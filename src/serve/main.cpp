// hm_serve: the supervised multi-campaign tuning daemon.
//
//   ./hm_serve --dir campaigns/ [--socket /tmp/hm_serve.sock | --port N]
//              [--max-campaigns N] [--max-connections N]
//              [--idle-timeout SECONDS] [--pool N] [--auto-resume]
//              [--port-file PATH]
//
// Clients connect over the UNIX socket (or loopback TCP), submit JSON
// scenarios (see serve/scenario.hpp for the schema), and receive progress
// frames and the final report. Campaigns journal into --dir; kill -9 the
// daemon mid-campaign, restart it on the same --dir, and a client `resume`
// continues every unfinished campaign to a byte-identical report.
//
// Exit codes: 0 after stop, 130 after a SIGINT/SIGTERM drain (the repo-wide
// cooperative-shutdown code — every driver binary agrees), 1 on startup
// failure.
#include <cstdio>
#include <string>

#include "common/atomic_file.hpp"
#include "common/cli.hpp"
#include "common/signal.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace hm;
  const common::CliArgs args(argc, argv, {"auto-resume"});
  serve::ServerConfig config;
  config.journal_dir = args.get_or("dir", std::string("campaigns"));
  config.socket_path = args.get_or("socket", std::string());
  config.tcp_port =
      static_cast<std::uint16_t>(args.get_or("port", std::int64_t{0}));
  config.max_campaigns =
      static_cast<std::size_t>(args.get_or("max-campaigns", std::int64_t{4}));
  config.max_connections = static_cast<std::size_t>(
      args.get_or("max-connections", std::int64_t{32}));
  config.client_idle_seconds = args.get_or("idle-timeout", 30.0);
  config.pool_threads =
      static_cast<std::size_t>(args.get_or("pool", std::int64_t{0}));
  config.auto_resume = args.flag("auto-resume");

  if (!common::install_shutdown_handler()) {
    std::fprintf(stderr, "warning: cannot install signal handlers\n");
  }

  serve::Server server(std::move(config));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "hm_serve: %s\n", error.c_str());
    return 1;
  }
  if (const auto port_file = args.get("port-file")) {
    // Atomic: a watcher (serve.sh) never reads a torn port number.
    if (!common::write_file_atomic(*port_file,
                                   std::to_string(server.port()) + "\n",
                                   &error)) {
      std::fprintf(stderr, "hm_serve: cannot write %s: %s\n",
                   port_file->c_str(), error.c_str());
      return 1;
    }
  }
  std::printf("hm_serve: listening on %s\n",
              args.has("socket")
                  ? args.get_or("socket", std::string()).c_str()
                  : ("127.0.0.1:" + std::to_string(server.port())).c_str());
  std::fflush(stdout);
  return server.run();
}
