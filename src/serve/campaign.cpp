#include "serve/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/csv.hpp"
#include "common/flight_recorder.hpp"
#include "common/log.hpp"
#include "common/trace.hpp"
#include "hypermapper/report.hpp"
#include "hypermapper/run_journal.hpp"

namespace hm::serve {

namespace {

using hm::hypermapper::EvaluationOutcome;
using hm::hypermapper::OptimizationResult;

constexpr const char* kSidecarSuffix = ".scenario.json";

[[nodiscard]] std::optional<std::string> read_text_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

}  // namespace

const char* Campaign::to_string(State state) {
  switch (state) {
    case State::kAdmitted: return "admitted";
    case State::kRunning: return "running";
    case State::kParking: return "parking";
    case State::kParked: return "parked";
    case State::kDone: return "done";
  }
  return "unknown";
}

std::string Campaign::journal_path(const std::string& dir,
                                   const std::string& id) {
  return dir + "/" + id + ".wal";
}

std::string Campaign::sidecar_path(const std::string& dir,
                                   const std::string& id) {
  return dir + "/" + id + kSidecarSuffix;
}

std::vector<std::string> Campaign::scan(const std::string& dir) {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::string_view suffix(kSidecarSuffix);
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ids.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string Campaign::render_report(
    const hm::hypermapper::DesignSpace& space, const OptimizationResult& result,
    const std::vector<std::string>& objective_names) {
  std::string out;
  out += hm::common::to_csv(
      hm::hypermapper::samples_to_csv(space, result, objective_names));
  out += hm::common::to_csv(
      hm::hypermapper::front_to_csv(space, result, objective_names));
  out += hm::common::to_csv(hm::hypermapper::quarantine_to_csv(space, result));
  for (const std::size_t i : result.random_phase_pareto) {
    out += std::to_string(i) + ",";
  }
  out += "\n";
  for (const auto& stats : result.iterations) {
    out += hm::hypermapper::encode_stat_record(stats) + "\n";
  }
  return out;
}

std::unique_ptr<Campaign> Campaign::open(const std::string& journal_dir,
                                         Scenario scenario,
                                         std::string* error) {
  std::unique_ptr<Campaign> campaign(new Campaign());
  campaign->scenario_ = std::make_unique<Scenario>(std::move(scenario));
  // Sidecar first: once the scenario text is durable, a daemon crash at any
  // later point leaves a recoverable campaign (an empty journal recovers as
  // a fresh run).
  const std::string sidecar =
      sidecar_path(journal_dir, campaign->scenario_->name);
  if (!hm::common::write_file_atomic(sidecar, campaign->scenario_->raw,
                                     error)) {
    return nullptr;
  }
  (void)hm::common::sync_parent_directory(sidecar);
  if (!campaign->build(journal_dir, /*fresh=*/true, error)) return nullptr;
  return campaign;
}

std::unique_ptr<Campaign> Campaign::recover(const std::string& journal_dir,
                                            const std::string& id,
                                            std::string* error) {
  const auto text = read_text_file(sidecar_path(journal_dir, id));
  if (!text) {
    if (error != nullptr) *error = "no scenario sidecar for campaign " + id;
    return nullptr;
  }
  auto scenario = parse_scenario(*text, error);
  if (!scenario) return nullptr;
  if (scenario->name != id) {
    if (error != nullptr) {
      *error = "sidecar name '" + scenario->name + "' does not match id " + id;
    }
    return nullptr;
  }
  std::unique_ptr<Campaign> campaign(new Campaign());
  campaign->scenario_ = std::make_unique<Scenario>(std::move(*scenario));
  if (!campaign->build(journal_dir, /*fresh=*/false, error)) return nullptr;
  return campaign;
}

bool Campaign::build(const std::string& journal_dir, bool fresh,
                     std::string* error) {
  const Scenario& scenario = *scenario_;
  evaluator_ = make_scenario_evaluator(scenario);
  if (evaluator_ == nullptr) {
    if (error != nullptr) {
      *error = "unknown evaluator kind '" + scenario.evaluator_kind + "'";
    }
    return false;
  }
  hm::hypermapper::Evaluator* chain = evaluator_.get();
  hm::hypermapper::OptimizerConfig config = scenario.config;
  if (scenario.sandbox) {
    hm::sandbox::SandboxPolicy policy;
    policy.workers = 2;
    policy.deadline_seconds = scenario.eval_deadline_seconds;
    sandboxed_ =
        std::make_unique<hm::sandbox::SandboxedEvaluator>(*chain, policy);
    chain = sandboxed_.get();
  } else {
    config.resilience.deadline_seconds = scenario.eval_deadline_seconds;
  }

  const std::string wal = journal_path(journal_dir, scenario.name);
  writer_ = std::make_unique<hm::common::JournalWriter>();
  if (!writer_->open(wal, error)) return false;
  optimizer_ = std::make_unique<hm::hypermapper::Optimizer>(scenario.space,
                                                            *chain, config);
  optimizer_->attach_journal(writer_.get());

  // A fresh journal file is indistinguishable from "crashed before the run
  // record landed": recover() treats it as a fresh start.
  const bool journal_has_content =
      !fresh && hm::common::read_journal(wal).records.size() > 0;
  if (journal_has_content) {
    session_ = optimizer_->resume_async(wal);
    if (session_ == nullptr) {
      if (error != nullptr) {
        *error = "journal for campaign " + scenario.name + " is unusable";
      }
      return false;
    }
  } else {
    session_ = optimizer_->start_async();
  }
  state_ = State::kRunning;
  if (session_->done()) {
    // Resume of a completed run: render immediately.
    finalize_done();
  }
  return true;
}

Campaign::~Campaign() = default;

std::vector<Campaign::Dispatch> Campaign::pump() {
  std::vector<Dispatch> dispatches;
  if (state_ == State::kParking && outstanding_ == 0) {
    finalize_parked();
    return dispatches;
  }
  if (state_ != State::kRunning || outstanding_ > 0) return dispatches;
  // Propose until a batch actually needs work: a fully-replayed batch (all
  // slots restored from the journal tail) resolves without dispatching.
  while (true) {
    auto batch = session_->next_batch();
    if (!batch) {
      finalize_done();
      return dispatches;
    }
    if (batch->pending.empty()) continue;
    dispatches.reserve(batch->pending.size());
    for (const std::size_t slot : batch->pending) {
      dispatches.push_back(Dispatch{slot, batch->configs[slot]});
    }
    outstanding_ = dispatches.size();
    return dispatches;
  }
}

EvaluationOutcome Campaign::evaluate(
    const hm::hypermapper::Configuration& config) {
  // Pool-thread context: stamp the campaign's trace id on every span this
  // evaluation records (sandbox dispatch propagates it to the worker), and
  // tag log lines with the campaign id.
  const hm::common::TraceContext trace_context(trace_id_);
  const hm::common::LogContextScope log_context(id());
  const hm::common::TraceSpan span("campaign_eval", "serve");
  return optimizer_->supervised_evaluator().evaluate_outcome(config);
}

void Campaign::deliver(std::size_t slot, EvaluationOutcome outcome) {
  if (session_ == nullptr || outstanding_ == 0) return;
  ++evals_delivered_;
  if (outcome.attempts > 1) retries_ += outcome.attempts - 1;
  session_->ingest(slot, std::move(outcome));
  --outstanding_;
  hm::common::FlightRecorder::global().record(
      hm::common::FlightEventKind::kEvalDelivered, id(), iteration(),
      sample_count());
  if (state_ == State::kParking && outstanding_ == 0) finalize_parked();
}

void Campaign::park(const std::string& reason) {
  if (state_ != State::kRunning && state_ != State::kParking) return;
  if (park_reason_.empty()) park_reason_ = reason;
  state_ = State::kParking;
  if (outstanding_ == 0) finalize_parked();
}

bool Campaign::deadline_expired() const {
  const double limit = scenario_->campaign_deadline_seconds;
  return limit > 0.0 && clock_.seconds() > limit;
}

std::size_t Campaign::iteration() const {
  return session_ != nullptr ? session_->iteration() : 0;
}

std::size_t Campaign::sample_count() const {
  return session_ != nullptr ? session_->sample_count() : 0;
}

std::size_t Campaign::front_size() const {
  return session_ != nullptr ? session_->front_size() : 0;
}

void Campaign::finalize_done() {
  const hm::common::LogContextScope log_context(id());
  OptimizationResult result = session_->finish();
  interrupted_ = result.interrupted;
  report_ = render_report(scenario_->space, result,
                          scenario_->objective_names);
  session_.reset();
  writer_->close();
  state_ = State::kDone;
  hm::common::log_info() << "campaign " << id() << " done: "
                         << result.samples.size() << " samples, "
                         << result.pareto.size() << " front points";
}

void Campaign::finalize_parked() {
  const hm::common::LogContextScope log_context(id());
  // interrupt() + finish() journal nothing new for unresolved slots; the
  // journal's committed prefix is exactly what resume_async replays, so a
  // parked campaign re-opens byte-identically.
  session_->interrupt();
  (void)session_->finish();
  session_.reset();
  writer_->close();
  state_ = State::kParked;
  hm::common::log_info() << "campaign " << id() << " parked ("
                         << park_reason_ << ")";
}

}  // namespace hm::serve
