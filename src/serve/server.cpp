#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/flight_recorder.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/signal.hpp"
#include "common/trace.hpp"
#include "serve/net.hpp"

namespace hm::serve {

namespace {

using hm::common::FlightEventKind;
using hm::common::FlightRecorder;
using hm::sandbox::FrameStatus;
using hm::sandbox::ServeFrame;

constexpr const char* kServerName = "hm_serve";

/// A scrape request larger than this without a complete header is not a
/// scraper; answer 414 and close (slow-loris / garbage bound).
constexpr std::size_t kHttpRequestCap = 8192;
/// Scrape sockets admitted at once; scrapes are short-lived, so a tiny cap
/// suffices and bounds the poll set.
constexpr std::size_t kHttpMaxConnections = 8;

[[nodiscard]] ServeFrame frame_of(std::string kind,
                                  std::vector<std::string> fields = {}) {
  ServeFrame frame;
  frame.kind = std::move(kind);
  frame.fields = std::move(fields);
  return frame;
}

[[nodiscard]] std::string http_response(int code, const char* reason,
                                        const char* content_type,
                                        std::string body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// True once `request` holds a complete HTTP request head (blank line).
/// Tolerates bare-LF clients.
[[nodiscard]] bool http_head_complete(const std::string& request) {
  return request.find("\r\n\r\n") != std::string::npos ||
         request.find("\n\n") != std::string::npos;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() {
  for (Connection& conn : connections_) close_socket(conn.fd);
  for (HttpConnection& conn : http_connections_) close_socket(conn.fd);
  close_socket(listen_fd_);
  close_socket(http_listen_fd_);
  close_socket(wake_fds_[0]);
  close_socket(wake_fds_[1]);
}

bool Server::start(std::string* error) {
  ignore_sigpipe();
  trace_sticky_ = hm::common::trace_enabled();
  std::error_code ec;
  std::filesystem::create_directories(config_.journal_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create journal dir " + config_.journal_dir + ": " +
               ec.message();
    }
    return false;
  }
  if (!make_wake_pipe(wake_fds_)) {
    if (error != nullptr) *error = "cannot create wake pipe";
    return false;
  }
  if (!config_.socket_path.empty()) {
    listen_fd_ = listen_unix(config_.socket_path, 16, error);
  } else {
    listen_fd_ = listen_tcp(config_.tcp_port, 16, &bound_port_, error);
  }
  if (listen_fd_ < 0) return false;
  if (config_.http_port >= 0) {
    http_listen_fd_ =
        listen_tcp(static_cast<std::uint16_t>(config_.http_port), 16,
                   &http_bound_port_, error);
    if (http_listen_fd_ < 0) return false;
    hm::common::log_info() << "hm_serve: observability endpoint on 127.0.0.1:"
                           << http_bound_port_
                           << " (/metrics /status /events)";
  }
  pool_ = std::make_unique<hm::common::ThreadPool>(config_.pool_threads);

  // Restart recovery: every scenario sidecar in the journal directory is a
  // campaign this daemon (or a predecessor) admitted. They stay parked
  // until a client resumes them, unless auto_resume re-opens them now.
  recoverable_ = Campaign::scan(config_.journal_dir);
  if (!recoverable_.empty()) {
    hm::common::log_info() << "hm_serve: " << recoverable_.size()
                           << " recoverable campaign(s) in "
                           << config_.journal_dir;
  }
  if (config_.auto_resume) {
    for (const std::string& id : recoverable_) {
      std::string recover_error;
      auto campaign =
          Campaign::recover(config_.journal_dir, id, &recover_error);
      if (campaign == nullptr) {
        hm::common::log_warn()
            << "hm_serve: cannot auto-resume " << id << ": " << recover_error;
        continue;
      }
      std::shared_ptr<Campaign> shared(std::move(campaign));
      campaigns_[id] = shared;
      if (shared->state() == Campaign::State::kDone) {
        ++dones_;
      } else {
        pump_campaign(shared);
      }
    }
    recoverable_.clear();
  }
  return true;
}

int Server::run() {
  bool signalled = false;
  while (true) {
    if (hm::common::shutdown_requested()) {
      signalled = true;
      break;
    }
    if (stop_requested_.load(std::memory_order_relaxed)) break;

    std::vector<struct pollfd> fds;
    fds.reserve(3 + connections_.size() + http_connections_.size());
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    const std::size_t polled = connections_.size();
    for (const Connection& conn : connections_) {
      fds.push_back({conn.fd, POLLIN, 0});
    }
    // The observability listener and its scrape sockets ride the same poll
    // set, after the frame-protocol fds. A scrape waiting to write polls
    // POLLOUT; one still reading its request line polls POLLIN.
    const std::size_t http_listen_at = fds.size();
    if (http_listen_fd_ >= 0) fds.push_back({http_listen_fd_, POLLIN, 0});
    const std::size_t http_base = fds.size();
    const std::size_t http_polled = http_connections_.size();
    for (const HttpConnection& conn : http_connections_) {
      fds.push_back(
          {conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN),
           0});
    }
    const int tick_ms =
        std::max(1, static_cast<int>(config_.tick_seconds * 1e3));
    if (poll_retry(fds.data(), fds.size(), tick_ms) < 0) break;

    if ((fds[1].revents & POLLIN) != 0) drain_wake(wake_fds_[0]);
    drain_completions();
    if ((fds[0].revents & POLLIN) != 0) accept_new_connection();

    // Service readable connections. fds[2 + i] maps to connections_[i]
    // for the first `polled` entries only: accept_new_connection() above
    // may have appended a connection that has no pollfd this round — it
    // is picked up next tick.
    std::vector<int> closing;
    for (std::size_t i = 0; i < polled; ++i) {
      const short revents = fds[2 + i].revents;
      if (revents == 0) continue;
      if (!service_connection(connections_[i])) {
        closing.push_back(static_cast<int>(i));
      }
    }
    for (auto it = closing.rbegin(); it != closing.rend(); ++it) {
      close_socket(connections_[static_cast<std::size_t>(*it)].fd);
      connections_.erase(connections_.begin() + *it);
    }

    if (http_listen_fd_ >= 0 &&
        (fds[http_listen_at].revents & POLLIN) != 0) {
      accept_http_connection();
    }
    std::vector<int> http_closing;
    for (std::size_t i = 0; i < http_polled; ++i) {
      const short revents = fds[http_base + i].revents;
      if (revents == 0) continue;
      if (!service_http_connection(http_connections_[i], revents)) {
        http_closing.push_back(static_cast<int>(i));
      }
    }
    for (auto it = http_closing.rbegin(); it != http_closing.rend(); ++it) {
      close_socket(http_connections_[static_cast<std::size_t>(*it)].fd);
      http_connections_.erase(http_connections_.begin() + *it);
    }
    enforce_deadlines();
  }
  drain(signalled);
  return signalled ? 130 : 0;
}

void Server::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake(wake_fds_[1]);
}

std::size_t Server::active_campaigns() const {
  std::size_t active = 0;
  for (const auto& [id, campaign] : campaigns_) {
    const Campaign::State state = campaign->state();
    if (state == Campaign::State::kRunning ||
        state == Campaign::State::kParking) {
      ++active;
    }
  }
  return active;
}

void Server::accept_new_connection() {
  const int fd = accept_retry(listen_fd_);
  if (fd < 0) return;
  (void)set_send_timeout(fd, config_.send_timeout_seconds);
  if (connections_.size() >= config_.max_connections) {
    // Typed shed: tell the client why before closing, never just drop.
    ++sheds_;
    (void)send(fd, frame_of("busy", {"connection limit reached"}));
    close_socket(fd);
    return;
  }
  Connection conn;
  conn.fd = fd;
  conn.last_activity = clock_.seconds();
  connections_.push_back(std::move(conn));
}

bool Server::service_connection(Connection& conn) {
  std::string payload;
  const FrameStatus status =
      hm::sandbox::read_frame(conn.fd, &payload, config_.frame_read_seconds);
  switch (status) {
    case FrameStatus::kOk: break;
    case FrameStatus::kEof:
      abandon_connection(conn, "client closed without bye");
      return false;
    case FrameStatus::kTimeout:
      abandon_connection(conn, "client stalled mid-frame");
      return false;
    case FrameStatus::kCorrupt:
      abandon_connection(conn, "corrupt frame from client");
      return false;
    case FrameStatus::kError:
      abandon_connection(conn, "socket error");
      return false;
  }
  conn.last_activity = clock_.seconds();
  const auto frame = hm::sandbox::decode_serve_frame(payload);
  if (!frame) {
    (void)send(conn.fd, frame_of("error", {"undecodable frame"}));
    abandon_connection(conn, "undecodable frame");
    return false;
  }
  return handle_frame(conn, *frame);
}

bool Server::handle_frame(Connection& conn, const ServeFrame& frame) {
  if (frame.kind == "hello") {
    if (frame.fields.size() != 2 ||
        frame.fields[1] !=
            std::to_string(hm::sandbox::kServeProtocolVersion)) {
      (void)send(conn.fd, frame_of("error", {"protocol version mismatch"}));
      return false;
    }
    conn.greeted = true;
    return send(
        conn.fd,
        frame_of("welcome",
                 {kServerName,
                  std::to_string(hm::sandbox::kServeProtocolVersion),
                  std::to_string(config_.max_campaigns)}));
  }
  if (frame.kind == "ping") {
    const std::string seq = frame.fields.empty() ? "" : frame.fields[0];
    return send(conn.fd, frame_of("pong", {seq}));
  }
  if (frame.kind == "bye") {
    // Orderly detach: the campaign (if any) keeps running; its report is
    // retrievable later via `resume`.
    conn.campaign.reset();
    return false;
  }
  if (frame.kind == "submit") {
    if (frame.fields.size() != 1) {
      (void)send(conn.fd, frame_of("error", {"submit needs one field"}));
      return true;
    }
    return handle_submit(conn, frame.fields[0], frame.trace_id);
  }
  if (frame.kind == "resume") {
    if (frame.fields.size() != 1) {
      (void)send(conn.fd, frame_of("error", {"resume needs one field"}));
      return true;
    }
    return handle_resume(conn, frame.fields[0], frame.trace_id);
  }
  (void)send(conn.fd, frame_of("error", {"unknown frame kind " + frame.kind}));
  return true;
}

bool Server::handle_submit(Connection& conn, const std::string& scenario_json,
                           std::uint64_t trace_id) {
  if (active_campaigns() >= config_.max_campaigns) {
    ++sheds_;
    FlightRecorder::global().record(FlightEventKind::kShed,
                                    "campaign limit reached");
    return send(conn.fd, frame_of("busy", {"campaign limit reached"}));
  }
  std::string error;
  auto scenario = parse_scenario(scenario_json, &error);
  if (!scenario) {
    return send(conn.fd, frame_of("error", {error}));
  }
  const std::string id = scenario->name;
  const auto existing = campaigns_.find(id);
  if (existing != campaigns_.end() &&
      existing->second->state() != Campaign::State::kDone) {
    return send(conn.fd, frame_of("error", {"campaign " + id + " is active"}));
  }
  auto campaign =
      Campaign::open(config_.journal_dir, std::move(*scenario), &error);
  if (campaign == nullptr) {
    return send(conn.fd, frame_of("error", {error}));
  }
  if (trace_id != 0) {
    // The submit carried a trace context: record daemon-side spans for the
    // campaign under the client's id so its bundle merges into one timeline.
    campaign->set_trace_id(trace_id);
    begin_request_tracing();
  }
  FlightRecorder::global().record(FlightEventKind::kAdmit, id);
  if (!send(conn.fd, frame_of("accepted", {id}))) return false;
  return attach_and_pump(conn, std::shared_ptr<Campaign>(std::move(campaign)));
}

bool Server::handle_resume(Connection& conn, const std::string& id,
                           std::uint64_t trace_id) {
  const auto existing = campaigns_.find(id);
  if (existing != campaigns_.end()) {
    const std::shared_ptr<Campaign>& campaign = existing->second;
    switch (campaign->state()) {
      case Campaign::State::kDone:
        // Report cache: a reconnecting client gets the same bytes.
        return send(conn.fd,
                    frame_of("report", {id,
                                        campaign->interrupted() ? "1" : "0",
                                        campaign->report()}));
      case Campaign::State::kRunning:
      case Campaign::State::kParking: {
        Connection* attached = connection_for(campaign.get());
        if (attached != nullptr && attached != &conn) {
          return send(conn.fd,
                      frame_of("error", {"campaign " + id +
                                         " is attached to another client"}));
        }
        // Orphan (client died / said bye): re-attach live.
        conn.campaign = campaign;
        if (trace_id != 0) {
          campaign->set_trace_id(trace_id);
          begin_request_tracing();
        }
        return send(conn.fd, frame_of("accepted", {id}));
      }
      case Campaign::State::kAdmitted:
      case Campaign::State::kParked: break;  // Re-open from disk below.
    }
  }
  const bool on_disk =
      existing != campaigns_.end() ||
      std::find(recoverable_.begin(), recoverable_.end(), id) !=
          recoverable_.end() ||
      std::filesystem::exists(
          Campaign::sidecar_path(config_.journal_dir, id));
  if (!on_disk) {
    return send(conn.fd, frame_of("error", {"unknown campaign " + id}));
  }
  if (active_campaigns() >= config_.max_campaigns) {
    ++sheds_;
    FlightRecorder::global().record(FlightEventKind::kShed,
                                    "campaign limit reached");
    return send(conn.fd, frame_of("busy", {"campaign limit reached"}));
  }
  std::string error;
  auto campaign = Campaign::recover(config_.journal_dir, id, &error);
  if (campaign == nullptr) {
    return send(conn.fd, frame_of("error", {error}));
  }
  // The journal does not persist trace ids: a resume without one inherits
  // the id of the in-memory object it replaces (parked mid-trace), so the
  // pre-park spans still ship with the final bundle.
  std::uint64_t effective_trace_id = trace_id;
  if (effective_trace_id == 0 && existing != campaigns_.end()) {
    effective_trace_id = existing->second->trace_id();
  }
  if (effective_trace_id != 0) {
    campaign->set_trace_id(effective_trace_id);
    begin_request_tracing();
  }
  FlightRecorder::global().record(FlightEventKind::kResume, id);
  if (!send(conn.fd, frame_of("accepted", {id}))) return false;
  return attach_and_pump(conn, std::shared_ptr<Campaign>(std::move(campaign)));
}

bool Server::attach_and_pump(Connection& conn,
                             std::shared_ptr<Campaign> campaign) {
  campaigns_[campaign->id()] = campaign;
  recoverable_.erase(
      std::remove(recoverable_.begin(), recoverable_.end(), campaign->id()),
      recoverable_.end());
  conn.campaign = campaign;
  if (campaign->state() == Campaign::State::kDone) {
    // Resume of an already-finished journal: report immediately.
    on_campaign_settled(campaign);
    return true;
  }
  pump_campaign(campaign);
  if (campaign->state() != Campaign::State::kRunning) {
    on_campaign_settled(campaign);
  }
  return true;
}

void Server::pump_campaign(const std::shared_ptr<Campaign>& campaign) {
  const std::vector<Campaign::Dispatch> dispatches = campaign->pump();
  for (const Campaign::Dispatch& dispatch : dispatches) {
    // The lambda owns a shared_ptr: a campaign with work in flight cannot
    // be destroyed out from under a pool thread, no matter what the
    // connection does.
    pool_->submit([this, campaign, dispatch]() {
      Completion completion;
      completion.campaign = campaign;
      completion.slot = dispatch.slot;
      completion.outcome = campaign->evaluate(dispatch.config);
      {
        const std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_.push_back(std::move(completion));
      }
      wake(wake_fds_[1]);
    });
  }
}

void Server::drain_completions() {
  std::deque<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(completion_mutex_);
    batch.swap(completions_);
  }
  std::vector<std::shared_ptr<Campaign>> touched;
  for (Completion& completion : batch) {
    completion.campaign->deliver(completion.slot,
                                 std::move(completion.outcome));
    if (std::find(touched.begin(), touched.end(), completion.campaign) ==
        touched.end()) {
      touched.push_back(completion.campaign);
    }
  }
  for (const std::shared_ptr<Campaign>& campaign : touched) {
    if (campaign->state() == Campaign::State::kRunning &&
        campaign->outstanding() == 0) {
      pump_campaign(campaign);  // Commits the batch, proposes the next.
      if (campaign->state() == Campaign::State::kRunning) {
        if (Connection* conn = connection_for(campaign.get())) {
          (void)send(conn->fd,
                     frame_of("progress",
                              {campaign->id(),
                               std::to_string(campaign->iteration()),
                               std::to_string(campaign->sample_count()),
                               std::to_string(campaign->front_size())}));
        }
      }
    }
    if (campaign->state() == Campaign::State::kDone ||
        campaign->state() == Campaign::State::kParked) {
      on_campaign_settled(campaign);
    }
  }
}

void Server::on_campaign_settled(const std::shared_ptr<Campaign>& campaign) {
  Connection* conn = connection_for(campaign.get());
  if (campaign->state() == Campaign::State::kDone) {
    ++dones_;
    FlightRecorder::global().record(FlightEventKind::kDone, campaign->id(),
                                    campaign->evals_delivered());
    if (conn != nullptr) {
      if (campaign->trace_id() != 0) {
        // Ship the campaign's merged timeline — daemon spans plus any
        // worker spans already ingested from sandbox responses — so the
        // client can fold it into one Chrome trace.
        ServeFrame spans = frame_of(
            "spans",
            {campaign->id(),
             hm::common::encode_span_bundle(campaign->trace_id())});
        spans.trace_id = campaign->trace_id();
        (void)send(conn->fd, spans);
      }
      (void)send(conn->fd,
                 frame_of("report", {campaign->id(),
                                     campaign->interrupted() ? "1" : "0",
                                     campaign->report()}));
      conn->campaign.reset();
    }
    // Shipped (or unclaimable: no attached client ever gets a bundle for a
    // campaign that finished detached) — release the spans either way so
    // daemon memory is bounded by active campaigns, not lifetime evals.
    if (campaign->trace_id() != 0) {
      end_request_tracing(campaign->trace_id());
    }
    return;
  }
  if (campaign->state() == Campaign::State::kParked) {
    ++parks_;
    FlightRecorder::global().record(FlightEventKind::kPark, campaign->id());
    if (conn != nullptr) {
      (void)send(conn->fd,
                 frame_of("parked",
                          {campaign->id(), campaign->park_reason()}));
      conn->campaign.reset();
    }
  }
}

void Server::begin_request_tracing() {
  if (trace_sticky_) return;
  // Request-only first: never a window where untraced work records spans.
  hm::common::set_trace_request_only(true);
  hm::common::set_trace_enabled(true);
}

void Server::end_request_tracing(std::uint64_t trace_id) {
  if (trace_sticky_) return;
  hm::common::drop_trace_spans(trace_id);
  // Parked traced campaigns keep their (already bounded) spans so a later
  // resume completes the timeline; they also keep recording enabled, which
  // with the request-only filter and nothing running costs one relaxed
  // load per span site.
  for (const auto& [id, campaign] : campaigns_) {
    if (campaign->trace_id() != 0 &&
        campaign->state() != Campaign::State::kDone) {
      return;
    }
  }
  hm::common::set_trace_enabled(false);
  hm::common::set_trace_request_only(false);
}

void Server::abandon_connection(Connection& conn, const std::string& reason) {
  if (conn.campaign == nullptr) return;
  const Campaign::State state = conn.campaign->state();
  if (state == Campaign::State::kRunning ||
      state == Campaign::State::kParking) {
    hm::common::log_info() << "hm_serve: parking campaign "
                           << conn.campaign->id() << " (" << reason << ")";
    conn.campaign->park(reason);
    if (conn.campaign->state() == Campaign::State::kParked) {
      ++parks_;
      FlightRecorder::global().record(FlightEventKind::kPark,
                                      conn.campaign->id());
    }
    // With evaluations still in flight the park finalizes later, inside
    // drain_completions, and is counted there.
  }
  conn.campaign.reset();
}

void Server::enforce_deadlines() {
  const double now = clock_.seconds();
  // Scrapers that neither finished their request nor drained the response
  // in time: close them. The response is fully buffered, so a deadline
  // close can never tear a frame-protocol message.
  if (config_.http_deadline_seconds > 0.0) {
    for (auto it = http_connections_.begin();
         it != http_connections_.end();) {
      if (now - it->opened > config_.http_deadline_seconds) {
        close_socket(it->fd);
        it = http_connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Idle clients: the campaign is parked, the socket closed.
  if (config_.client_idle_seconds > 0.0) {
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (now - it->last_activity > config_.client_idle_seconds) {
        abandon_connection(*it, "client idle timeout");
        close_socket(it->fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Campaign wall-clock deadlines.
  for (const auto& [id, campaign] : campaigns_) {
    if (campaign->state() == Campaign::State::kRunning &&
        campaign->deadline_expired()) {
      campaign->park("campaign deadline exceeded");
      if (campaign->state() == Campaign::State::kParked) {
        on_campaign_settled(campaign);
      }
    }
  }
}

void Server::drain(bool from_signal) {
  FlightRecorder::global().record(FlightEventKind::kDrain,
                                  from_signal ? "signal" : "stop");
  // Stop admitting first: close the listener (and unlink the UNIX path so
  // a replacement daemon can bind immediately).
  close_socket(listen_fd_);
  listen_fd_ = -1;
  close_socket(http_listen_fd_);
  http_listen_fd_ = -1;
  if (!config_.socket_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(config_.socket_path, ec);
  }
  for (const auto& [id, campaign] : campaigns_) {
    if (campaign->state() == Campaign::State::kRunning) {
      campaign->park("daemon drain");
      if (campaign->state() == Campaign::State::kParked) {
        on_campaign_settled(campaign);
      }
    }
  }
  // Wait for in-flight evaluations to land so every parking campaign
  // finalizes its journal. Bounded: pool evaluations always terminate (the
  // sandbox SIGKILLs overruns; cooperative deadlines classify them).
  while (true) {
    bool outstanding = false;
    for (const auto& [id, campaign] : campaigns_) {
      if (campaign->state() == Campaign::State::kParking) outstanding = true;
    }
    if (!outstanding) break;
    struct pollfd pfd{};
    pfd.fd = wake_fds_[0];
    pfd.events = POLLIN;
    if (poll_retry(&pfd, 1, 100) > 0) drain_wake(wake_fds_[0]);
    drain_completions();
  }
  for (Connection& conn : connections_) {
    conn.campaign.reset();
    close_socket(conn.fd);
  }
  connections_.clear();
  // Scrapes still in flight during the drain: flush whatever is already
  // buffered (best effort, the sockets are non-blocking), then close.
  for (HttpConnection& conn : http_connections_) {
    if (conn.responding && conn.sent < conn.response.size()) {
      (void)write_some(conn.fd, conn.response.data() + conn.sent,
                       conn.response.size() - conn.sent);
    }
    close_socket(conn.fd);
  }
  http_connections_.clear();
  if (!config_.flight_dump_path.empty()) {
    std::string dump_error;
    if (!FlightRecorder::global().dump(config_.flight_dump_path,
                                       &dump_error)) {
      hm::common::log_warn()
          << "hm_serve: flight-recorder dump failed: " << dump_error;
    }
  }
  hm::common::log_info() << "hm_serve: drained ("
                         << (from_signal ? "signal" : "stop") << "): "
                         << dones_ << " done, " << parks_ << " parked, "
                         << sheds_ << " shed";
}

void Server::accept_http_connection() {
  const int fd = accept_retry(http_listen_fd_);
  if (fd < 0) return;
  if (!set_nonblocking(fd)) {
    close_socket(fd);
    return;
  }
  if (http_connections_.size() >= kHttpMaxConnections) {
    // Over the scrape cap: best-effort 503 and close now. Tracking the
    // socket would let a slow-reading flood grow the poll set past the cap
    // and hold fds until the deadline reaper gets to them.
    const std::string reply = http_response(503, "Service Unavailable",
                                            "text/plain; charset=utf-8",
                                            "scrape connection limit reached\n");
    (void)write_some(fd, reply.data(), reply.size());
    close_socket(fd);
    return;
  }
  HttpConnection conn;
  conn.fd = fd;
  conn.opened = clock_.seconds();
  http_connections_.push_back(std::move(conn));
}

bool Server::service_http_connection(HttpConnection& conn, short revents) {
  if (!conn.responding) {
    if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) return true;
    char buffer[4096];
    while (!conn.responding) {
      const long got = read_some(conn.fd, buffer, sizeof(buffer));
      if (got == kWouldBlock) break;
      if (got < 0) return false;
      if (got == 0) {
        // EOF before a complete request head: nothing to answer.
        if (!http_head_complete(conn.request)) return false;
      } else {
        conn.request.append(buffer, static_cast<std::size_t>(got));
      }
      if (http_head_complete(conn.request)) {
        conn.response = render_http_response(conn.request);
        conn.responding = true;
      } else if (conn.request.size() > kHttpRequestCap) {
        conn.response =
            http_response(414, "Request-URI Too Long",
                          "text/plain; charset=utf-8", "request too long\n");
        conn.responding = true;
      } else if (got == 0) {
        return false;
      }
    }
    if (!conn.responding) return true;
    // Fall through: the response may be writable right now.
  }
  while (conn.sent < conn.response.size()) {
    const long put = write_some(conn.fd, conn.response.data() + conn.sent,
                                conn.response.size() - conn.sent);
    if (put == kWouldBlock) return true;  // Wait for POLLOUT.
    if (put <= 0) return false;  // Half-closed / reset mid-response.
    conn.sent += static_cast<std::size_t>(put);
  }
  return false;  // Fully sent: HTTP/1.0, close.
}

std::string Server::render_http_response(const std::string& request) {
  // Request line: METHOD SP TARGET SP VERSION. Anything shorter is garbage.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(
      0, line_end == std::string::npos ? request.size() : line_end);
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos) {
    return http_response(400, "Bad Request", "text/plain; charset=utf-8",
                         "malformed request line\n");
  }
  const std::string method = line.substr(0, method_end);
  const std::size_t target_end = line.find(' ', method_end + 1);
  std::string target =
      line.substr(method_end + 1, target_end == std::string::npos
                                      ? std::string::npos
                                      : target_end - method_end - 1);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed",
                         "text/plain; charset=utf-8",
                         "only GET is supported\n");
  }
  FlightRecorder::global().record(FlightEventKind::kHttpScrape, target);
  if (target == "/metrics") {
    return http_response(200, "OK", "text/plain; version=0.0.4",
                         render_metrics_body());
  }
  if (target == "/status") {
    return http_response(200, "OK", "application/json",
                         render_status_body());
  }
  if (target == "/events") {
    return http_response(200, "OK", "application/json",
                         FlightRecorder::global().to_json());
  }
  return http_response(404, "Not Found", "text/plain; charset=utf-8",
                       "unknown path (try /metrics /status /events)\n");
}

std::string Server::render_metrics_body() {
  // Refresh the per-campaign series at scrape time from the campaign table
  // (the authoritative state) instead of instrumenting every transition.
  auto& registry = hm::common::MetricsRegistry::global();
  registry.gauge("hm_serve_uptime_seconds").set(clock_.seconds());
  registry.gauge("hm_serve_connections")
      .set(static_cast<double>(connections_.size()));
  registry.gauge("hm_serve_campaigns_active")
      .set(static_cast<double>(active_campaigns()));
  registry.gauge("hm_serve_sheds").set(static_cast<double>(sheds_));
  registry.gauge("hm_serve_parks").set(static_cast<double>(parks_));
  registry.gauge("hm_serve_dones").set(static_cast<double>(dones_));
  registry.gauge("hm_serve_pool_threads")
      .set(static_cast<double>(pool_ != nullptr ? pool_->thread_count() : 0));
  registry
      .gauge("hm_serve_flight_events_recorded")
      .set(static_cast<double>(
          hm::common::FlightRecorder::global().recorded()));
  static constexpr Campaign::State kStates[] = {
      Campaign::State::kAdmitted, Campaign::State::kRunning,
      Campaign::State::kParking, Campaign::State::kParked,
      Campaign::State::kDone};
  for (const auto& [id, campaign] : campaigns_) {
    // One series per (campaign, state) with exactly one set to 1, so a
    // scraper sees transitions without the exporter deleting series.
    for (const Campaign::State state : kStates) {
      registry
          .gauge("hm_campaign_state",
                 {{"campaign", id}, {"state", Campaign::to_string(state)}})
          .set(campaign->state() == state ? 1.0 : 0.0);
    }
    registry.gauge("hm_campaign_evals_delivered", {{"campaign", id}})
        .set(static_cast<double>(campaign->evals_delivered()));
    registry.gauge("hm_campaign_retries", {{"campaign", id}})
        .set(static_cast<double>(campaign->retries()));
    registry.gauge("hm_campaign_outstanding", {{"campaign", id}})
        .set(static_cast<double>(campaign->outstanding()));
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(
        Campaign::journal_path(config_.journal_dir, id), ec);
    registry.gauge("hm_campaign_journal_bytes", {{"campaign", id}})
        .set(ec ? 0.0 : static_cast<double>(bytes));
  }
  return hm::common::to_prometheus_text(registry.snapshot());
}

std::string Server::render_status_body() {
  std::string out = "{\n  \"server\": \"";
  out += kServerName;
  out += "\",\n  \"uptime_seconds\": ";
  out += std::to_string(clock_.seconds());
  out += ",\n  \"connections\": ";
  out += std::to_string(connections_.size());
  out += ",\n  \"scrape_connections\": ";
  out += std::to_string(http_connections_.size());
  out += ",\n  \"pool_threads\": ";
  out += std::to_string(pool_ != nullptr ? pool_->thread_count() : 0);
  out += ",\n  \"sheds\": ";
  out += std::to_string(sheds_);
  out += ",\n  \"parks\": ";
  out += std::to_string(parks_);
  out += ",\n  \"dones\": ";
  out += std::to_string(dones_);
  out += ",\n  \"recoverable\": ";
  out += std::to_string(recoverable_.size());
  out += ",\n  \"flight_events\": ";
  out += std::to_string(hm::common::FlightRecorder::global().recorded());
  out += ",\n  \"campaigns\": [";
  bool first = true;
  for (const auto& [id, campaign] : campaigns_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": \"" + hm::common::json_escape(id) + "\"";
    out += ", \"state\": \"";
    out += Campaign::to_string(campaign->state());
    out += "\", \"iteration\": " + std::to_string(campaign->iteration());
    out += ", \"samples\": " + std::to_string(campaign->sample_count());
    out += ", \"front\": " + std::to_string(campaign->front_size());
    out += ", \"outstanding\": " + std::to_string(campaign->outstanding());
    out += ", \"evals_delivered\": " +
           std::to_string(campaign->evals_delivered());
    out += ", \"retries\": " + std::to_string(campaign->retries());
    out += ", \"trace_id\": \"" + std::to_string(campaign->trace_id()) + "\"";
    if (!campaign->park_reason().empty()) {
      out += ", \"park_reason\": \"" +
             hm::common::json_escape(campaign->park_reason()) + "\"";
    }
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool Server::send(int fd, const ServeFrame& frame) {
  return hm::sandbox::write_frame(fd, hm::sandbox::encode_serve_frame(frame));
}

Server::Connection* Server::connection_for(const Campaign* campaign) {
  for (Connection& conn : connections_) {
    if (conn.campaign.get() == campaign) return &conn;
  }
  return nullptr;
}

}  // namespace hm::serve
