// A *scenario* is the serialized form of one tuning campaign: design space,
// optimizer budget, seed, objective names, and which evaluator to run —
// everything hm_serve needs to open (or re-open, after a crash) a campaign
// from bytes alone. The wire format is a small JSON object; a sidecar copy
// of the submitted text is persisted next to the campaign's journal so
// restart recovery can rebuild the campaign without the client.
//
// The JSON reader here is deliberately minimal (objects, arrays, strings,
// numbers, booleans, null — no escapes beyond \" \\ \/ \n \t \r \b \f and
// \uXXXX for ASCII) and self-contained: the repo takes no dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hypermapper/evaluator.hpp"
#include "hypermapper/optimizer.hpp"
#include "hypermapper/space.hpp"

namespace hm::serve {

/// A parsed JSON value. Object keys keep submission order irrelevant
/// (std::map), which also makes error messages deterministic.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Returns nullopt with `error` describing the first failure.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error);

/// One campaign description, decoded and validated.
struct Scenario {
  std::string name;  ///< Campaign id; unique among active campaigns.
  std::string raw;   ///< The submitted JSON text, byte-for-byte (sidecar).
  hm::hypermapper::DesignSpace space;
  hm::hypermapper::OptimizerConfig config;
  std::vector<std::string> objective_names;
  /// Built-in evaluator selector ("grid" or "synthetic") plus its knobs.
  std::string evaluator_kind = "grid";
  /// Failure injection: keys with key % fail_modulo == fail_remainder throw
  /// a permanent EvaluationError. fail_modulo == 0 disables.
  std::uint64_t fail_modulo = 0;
  std::uint64_t fail_remainder = 0;
  /// Hang injection (chaos tests): evaluations of keys with
  /// key % hang_modulo == hang_remainder sleep hang_seconds.
  std::uint64_t hang_modulo = 0;
  std::uint64_t hang_remainder = 0;
  double hang_seconds = 0.0;
  /// Run evaluations inside the process sandbox (forked workers with
  /// SIGKILL deadline escalation) instead of in-process.
  bool sandbox = false;
  /// Per-evaluation wall-clock deadline; 0 disables. Cooperative without
  /// the sandbox, a hard SIGKILL with it.
  double eval_deadline_seconds = 0.0;
  /// Whole-campaign wall-clock deadline enforced by the server; on overrun
  /// the campaign is parked (journal intact, resumable). 0 disables.
  double campaign_deadline_seconds = 0.0;
};

/// Decodes and validates a scenario JSON document. The accepted schema:
///
///   {
///     "name": "demo",                       // required, [A-Za-z0-9._-]+
///     "seed": 77,
///     "objectives": ["f0", "f1"],           // 1 or 2 names
///     "space": [                            // required, >= 1 parameter
///       {"kind": "integer", "name": "x", "lo": 0, "hi": 39},
///       {"kind": "ordinal", "name": "r", "values": [1, 2, 4], "log": true},
///       {"kind": "boolean", "name": "b"},
///       {"kind": "categorical", "name": "c", "labels": ["lo", "hi"]},
///       {"kind": "real", "name": "t", "lo": 0.0, "hi": 1.0}
///     ],
///     "budget": {"random_samples": 40, "max_iterations": 4,
///                "max_samples_per_iteration": 15, "pool_size": 200,
///                "tree_count": 8},           // all optional
///     "evaluator": {"kind": "grid",          // or "synthetic"
///                   "fail_modulo": 17, "fail_remainder": 3,
///                   "hang_modulo": 0, "hang_remainder": 0,
///                   "hang_seconds": 0.0},    // all optional
///     "sandbox": false,                      // optional
///     "deadlines": {"eval_seconds": 0.0,
///                   "campaign_seconds": 0.0} // optional
///   }
[[nodiscard]] std::optional<Scenario> parse_scenario(std::string_view text,
                                                     std::string* error);

/// Instantiates the scenario's built-in evaluator. Deterministic: the same
/// scenario text always produces the same objective function, which is what
/// makes a recovered campaign's report byte-identical to an uninterrupted
/// one. The evaluator references `scenario.space` — the scenario must stay
/// alive (and unmoved) while it runs. Returns nullptr for an unknown kind.
[[nodiscard]] std::unique_ptr<hm::hypermapper::Evaluator>
make_scenario_evaluator(const Scenario& scenario);

}  // namespace hm::serve
