#include "serve/client.hpp"

#include <utility>

#include "common/trace.hpp"
#include "serve/net.hpp"

namespace hm::serve {

namespace {

using hm::sandbox::FrameStatus;
using hm::sandbox::ServeFrame;

[[nodiscard]] std::optional<ServeFrame> read_serve_frame(int fd,
                                                         double deadline) {
  std::string payload;
  if (hm::sandbox::read_frame(fd, &payload, deadline) != FrameStatus::kOk) {
    return std::nullopt;
  }
  return hm::sandbox::decode_serve_frame(payload);
}

}  // namespace

bool Client::send_frame(const std::string& kind,
                        std::vector<std::string> fields) {
  ServeFrame frame;
  frame.kind = kind;
  frame.trace_id = trace_id_;
  frame.fields = std::move(fields);
  return hm::sandbox::write_frame(fd_,
                                  hm::sandbox::encode_serve_frame(frame));
}

Client::~Client() { close_socket(fd_); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close_socket(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<Client> Client::connect_unix_path(const std::string& path,
                                                double wait_seconds,
                                                std::string* error) {
  ignore_sigpipe();
  const int fd = connect_unix(path, wait_seconds, error);
  if (fd < 0) return std::nullopt;
  Client client(fd);
  if (!client.handshake(error)) return std::nullopt;
  return client;
}

std::optional<Client> Client::connect_port(std::uint16_t port,
                                           double wait_seconds,
                                           std::string* error) {
  ignore_sigpipe();
  const int fd = connect_tcp(port, wait_seconds, error);
  if (fd < 0) return std::nullopt;
  Client client(fd);
  if (!client.handshake(error)) return std::nullopt;
  return client;
}

bool Client::handshake(std::string* error) {
  if (!send_frame("hello",
                  {"hm_client",
                   std::to_string(hm::sandbox::kServeProtocolVersion)})) {
    if (error != nullptr) *error = "cannot send hello";
    return false;
  }
  const auto welcome = read_serve_frame(fd_, 5.0);
  if (!welcome || welcome->kind != "welcome" || welcome->fields.size() != 3 ||
      welcome->fields[1] !=
          std::to_string(hm::sandbox::kServeProtocolVersion)) {
    if (error != nullptr) *error = "handshake failed";
    return false;
  }
  return true;
}

ClientResult Client::await_settled(double reply_deadline_seconds) {
  ClientResult result;
  while (true) {
    const auto frame = read_serve_frame(fd_, reply_deadline_seconds);
    if (!frame) {
      result.status = ClientResult::Status::kError;
      result.message = "connection lost or reply deadline exceeded";
      return result;
    }
    if (frame->kind == "accepted" && frame->fields.size() == 1) {
      result.campaign_id = frame->fields[0];
      continue;
    }
    if (frame->kind == "progress") {
      ++result.progress_frames;
      continue;
    }
    if (frame->kind == "report" && frame->fields.size() == 3) {
      result.status = ClientResult::Status::kReport;
      result.campaign_id = frame->fields[0];
      result.interrupted = frame->fields[1] == "1";
      result.report = frame->fields[2];
      return result;
    }
    if (frame->kind == "busy") {
      result.status = ClientResult::Status::kBusy;
      result.message = frame->fields.empty() ? "" : frame->fields[0];
      return result;
    }
    if (frame->kind == "parked" && frame->fields.size() == 2) {
      result.status = ClientResult::Status::kParked;
      result.campaign_id = frame->fields[0];
      result.message = frame->fields[1];
      return result;
    }
    if (frame->kind == "error") {
      result.status = ClientResult::Status::kError;
      result.message = frame->fields.empty() ? "" : frame->fields[0];
      return result;
    }
    if (frame->kind == "spans" && frame->fields.size() == 2) {
      // The daemon's merged span bundle for our trace id (its own campaign
      // spans plus any sandbox-worker spans it ingested). Fold it into the
      // local trace store; write_chrome_trace emits the merged timeline.
      if (hm::common::ingest_span_bundle(frame->fields[1])) {
        ++span_bundles_;
      }
      continue;
    }
    // pong or future frame kinds: ignore.
  }
}

ClientResult Client::run_scenario(const std::string& scenario_json,
                                  double reply_deadline_seconds) {
  const hm::common::TraceContext trace_context(trace_id_);
  const hm::common::TraceSpan span("client_campaign", "client");
  if (!send_frame("submit", {scenario_json})) {
    ClientResult result;
    result.message = "cannot send submit";
    return result;
  }
  return await_settled(reply_deadline_seconds);
}

ClientResult Client::resume_campaign(const std::string& id,
                                     double reply_deadline_seconds) {
  const hm::common::TraceContext trace_context(trace_id_);
  const hm::common::TraceSpan span("client_campaign", "client");
  if (!send_frame("resume", {id})) {
    ClientResult result;
    result.message = "cannot send resume";
    return result;
  }
  return await_settled(reply_deadline_seconds);
}

bool Client::ping(double reply_deadline_seconds) {
  const std::string seq = std::to_string(++ping_seq_);
  if (!send_frame("ping", {seq})) return false;
  while (true) {
    const auto frame = read_serve_frame(fd_, reply_deadline_seconds);
    if (!frame) return false;
    if (frame->kind == "pong") {
      return !frame->fields.empty() && frame->fields[0] == seq;
    }
    // Progress or other frames may interleave; keep waiting for the pong.
  }
}

void Client::bye() {
  if (fd_ >= 0) (void)send_frame("bye", {});
}

}  // namespace hm::serve
