// Client side of the serve protocol: connect, handshake, submit or resume a
// campaign, then follow progress frames to the final report. One blocking
// call per campaign — the concurrency lives in the daemon, not here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sandbox/protocol.hpp"

namespace hm::serve {

/// Outcome of one campaign run as seen by the client.
struct ClientResult {
  enum class Status : std::uint8_t {
    kReport,  ///< Final report received.
    kBusy,    ///< Typed overload shed; retry later.
    kParked,  ///< Campaign parked mid-run (drain/deadline); resume later.
    kError,   ///< Server-reported error, handshake failure, or dead socket.
  };
  Status status = Status::kError;
  std::string campaign_id;
  std::string report;      ///< Valid when status == kReport.
  bool interrupted = false;
  std::string message;     ///< busy reason / park reason / error text.
  std::size_t progress_frames = 0;
};

class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (UNIX path or loopback TCP port) and performs the
  /// hello/welcome handshake. `wait_seconds` covers a daemon still binding.
  [[nodiscard]] static std::optional<Client> connect_unix_path(
      const std::string& path, double wait_seconds, std::string* error);
  [[nodiscard]] static std::optional<Client> connect_port(
      std::uint16_t port, double wait_seconds, std::string* error);

  /// Submits a scenario and blocks until the campaign settles (report,
  /// busy, parked, or error). `reply_deadline_seconds` bounds each frame
  /// wait, not the whole campaign.
  [[nodiscard]] ClientResult run_scenario(const std::string& scenario_json,
                                          double reply_deadline_seconds);

  /// Resumes a parked/recovered campaign by id and blocks like
  /// run_scenario. A campaign that already finished returns its cached
  /// report immediately — byte-identical to the uninterrupted one.
  [[nodiscard]] ClientResult resume_campaign(const std::string& id,
                                             double reply_deadline_seconds);

  /// Liveness probe; true when the daemon answered the matching pong.
  [[nodiscard]] bool ping(double reply_deadline_seconds);

  /// Orderly detach (the campaign, if any, keeps running server-side).
  void bye();

  /// Enables cross-process tracing for subsequent submits/resumes: every
  /// outgoing frame carries this id, the daemon records its campaign spans
  /// under it, and the returned span bundle is ingested into this process's
  /// trace store — write_chrome_trace then emits the merged timeline.
  /// 0 (the default) disables propagation.
  void set_trace_id(std::uint64_t trace_id) noexcept { trace_id_ = trace_id; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }

  /// Span bundles received (and ingested) from the daemon so far.
  [[nodiscard]] std::size_t span_bundles_ingested() const noexcept {
    return span_bundles_;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  [[nodiscard]] bool handshake(std::string* error);
  [[nodiscard]] bool send_frame(const std::string& kind,
                                std::vector<std::string> fields);
  [[nodiscard]] ClientResult await_settled(double reply_deadline_seconds);

  int fd_ = -1;
  std::uint64_t ping_seq_ = 0;
  std::uint64_t trace_id_ = 0;
  std::size_t span_bundles_ = 0;
};

}  // namespace hm::serve
