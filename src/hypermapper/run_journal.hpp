// Journal schema for optimizer runs: how an Optimizer's write-ahead log
// (common/journal.hpp) encodes evaluations, phase transitions, and
// snapshots, and how a crashed run's journal is replayed back into
// optimizer state.
//
// Record types ("type" column of the WAL frame):
//   run    one per journal; the run fingerprint (config + space shape).
//          Resume refuses a journal whose fingerprint does not match.
//   eval   one successful evaluation: iteration, configuration, measured
//          objectives, surrogate prediction (empty for bootstrap).
//   fail   one quarantined evaluation: iteration, configuration, typed
//          failure status, attempts, message.
//   stat   one completed iteration's IterationStats.
//   phase  phase boundary: the iteration just completed plus the full RNG
//          state at the boundary. Everything before the *last* phase record
//          is committed state; eval/fail records after it are the in-flight
//          iteration's tail, replayed as a dedupe map so resume re-runs that
//          iteration without re-evaluating what already completed.
//   done   terminal record: the run finished (converged or exhausted its
//          iteration budget). Resuming a done journal reconstructs the
//          result directly — critically, it does NOT draw another pool,
//          which would diverge from the uninterrupted run.
//
// All doubles are serialized as IEEE-754 bit patterns (checkpoint.hpp), so
// a replayed run re-trains its surrogates on bit-identical values and
// every downstream decision (predicted front, proposal order, Pareto
// dominance) is byte-identical to the uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/journal.hpp"
#include "common/rng.hpp"
#include "hypermapper/optimizer.hpp"
#include "hypermapper/space.hpp"

namespace hm::hypermapper {

/// Identity of a run: optimizer configuration knobs that shape the sample
/// stream plus the space/objective dimensions. A journal written under one
/// fingerprint cannot be resumed under another.
struct RunFingerprint {
  std::uint64_t seed = 0;
  std::uint64_t random_samples = 0;
  std::uint64_t max_iterations = 0;
  std::uint64_t max_samples_per_iteration = 0;
  std::uint64_t pool_size = 0;
  bool exhaustive_pool = false;
  std::uint64_t parameter_count = 0;
  std::uint64_t objective_count = 0;
  std::uint64_t cardinality = 0;

  bool operator==(const RunFingerprint&) const = default;
};

[[nodiscard]] RunFingerprint make_fingerprint(const OptimizerConfig& config,
                                              const DesignSpace& space,
                                              std::size_t objective_count);

// --- Record payload codecs (encode never fails; decode returns nullopt on
// --- malformed payloads, which resume treats like a corrupt record). ---

[[nodiscard]] std::string encode_run_record(const RunFingerprint& fingerprint);
[[nodiscard]] std::optional<RunFingerprint> decode_run_record(
    const std::string& payload);

/// eval/fail records carry a sequence number — the index the record
/// occupies in result.samples / result.quarantine. After a resume, the
/// journal can hold a crashed run's tail records interleaved with the
/// resumed run's appends; sorting by sequence at commit time restores the
/// canonical merge order (which matters: surrogate training is sensitive
/// to row order), independent of on-disk record order.
[[nodiscard]] std::string encode_eval_record(std::uint64_t seq,
                                             const SampleRecord& sample);
struct DecodedEval {
  std::uint64_t seq = 0;
  SampleRecord sample;
};
[[nodiscard]] std::optional<DecodedEval> decode_eval_record(
    const std::string& payload);

[[nodiscard]] std::string encode_fail_record(std::uint64_t seq,
                                             const QuarantineRecord& record);
struct DecodedFail {
  std::uint64_t seq = 0;
  QuarantineRecord failure;
};
[[nodiscard]] std::optional<DecodedFail> decode_fail_record(
    const std::string& payload);

[[nodiscard]] std::string encode_stat_record(const IterationStats& stats);
[[nodiscard]] std::optional<IterationStats> decode_stat_record(
    const std::string& payload);

[[nodiscard]] std::string encode_phase_record(std::size_t iteration,
                                              const common::RngState& rng);
[[nodiscard]] bool decode_phase_record(const std::string& payload,
                                       std::size_t* iteration,
                                       common::RngState* rng);

/// One journaled outcome for the in-flight iteration, keyed by
/// configuration identity: resume consults this before re-evaluating, so a
/// config that completed before the crash is replayed, not re-measured
/// (and, for real SLAM evaluators, not re-run for minutes).
struct ReplayEntry {
  bool ok = false;
  Objectives objectives;                                ///< When ok.
  SampleRecord sample;                                  ///< When ok.
  QuarantineRecord failure;                             ///< When !ok.
};

/// Optimizer state reconstructed from a journal.
struct ReplayState {
  RunFingerprint fingerprint;
  /// Committed state: every record up to the last phase boundary (or the
  /// whole journal when `done`).
  OptimizationResult result;
  bool has_phase = false;
  std::size_t completed_iteration = 0;
  common::RngState rng;
  bool done = false;
  /// In-flight tail: outcomes journaled after the last phase boundary.
  std::unordered_map<std::uint64_t, ReplayEntry> tail;
  /// Records whose payload failed to decode (distinct from frame-level
  /// corruption, which the journal reader already counted).
  std::size_t malformed_payloads = 0;
};

/// Replays parsed journal records into optimizer state. Returns nullopt
/// when the journal is structurally unusable (no run record, or the first
/// record is not "run"); sets `error` with the reason.
[[nodiscard]] std::optional<ReplayState> replay_journal(
    const common::JournalReadResult& journal, const DesignSpace& space,
    std::string* error = nullptr);

}  // namespace hm::hypermapper
