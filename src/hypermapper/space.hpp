// The design space: an ordered set of parameters, a Configuration type
// (one numeric value per parameter), enumeration by mixed-radix index,
// distinct uniform sampling, and feature encoding for the surrogate models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "hypermapper/parameter.hpp"

namespace hm::hypermapper {

/// One point in the design space: the numeric value of each parameter, in
/// space order. (For categorical parameters the value is the label index.)
using Configuration = std::vector<double>;

class DesignSpace {
 public:
  DesignSpace() = default;

  /// Adds a parameter; returns its index. Names must be unique (asserted).
  std::size_t add(Parameter parameter);

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return parameters_.size();
  }
  [[nodiscard]] const Parameter& parameter(std::size_t i) const {
    return parameters_[i];
  }
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;

  /// Product of parameter cardinalities; 0 if any parameter is continuous
  /// or the product overflows 64 bits.
  [[nodiscard]] std::uint64_t cardinality() const noexcept;

  /// Configuration at mixed-radix index `i` (requires cardinality() > 0).
  [[nodiscard]] Configuration at(std::uint64_t i) const;

  /// Mixed-radix index of a configuration (requires cardinality() > 0);
  /// values are snapped to the nearest discrete value first. This is the
  /// dedup key used by the optimizer and samplers.
  [[nodiscard]] std::uint64_t key(const Configuration& config) const;

  /// Uniform random configuration.
  [[nodiscard]] Configuration sample(hm::common::Rng& rng) const;

  /// Up to `count` *distinct* uniform configurations (exactly `count` unless
  /// the space is smaller, in which case the whole space is returned).
  [[nodiscard]] std::vector<Configuration> sample_distinct(
      std::size_t count, hm::common::Rng& rng) const;

  /// Feature vector for the surrogate model (one normalized feature per
  /// parameter; log-scaled where the parameter requests it).
  [[nodiscard]] std::vector<double> features(const Configuration& config) const;

  /// Snaps every value of `config` to the nearest value in the space
  /// (identity for real parameters).
  [[nodiscard]] Configuration snap(const Configuration& config) const;

  /// Human-readable "name=value, ..." string.
  [[nodiscard]] std::string to_string(const Configuration& config) const;

 private:
  std::vector<Parameter> parameters_;
};

}  // namespace hm::hypermapper
