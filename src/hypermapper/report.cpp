#include "hypermapper/report.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hm::hypermapper {

ValidCounts count_valid(const OptimizationResult& result,
                        std::size_t objective_index, double limit) {
  ValidCounts counts;
  for (const SampleRecord& s : result.samples) {
    if (s.objectives[objective_index] < limit) {
      if (s.iteration == 0) {
        ++counts.random_phase;
      } else {
        ++counts.active_phase;
      }
    }
  }
  return counts;
}

std::optional<std::size_t> best_under_constraint(const OptimizationResult& result,
                                                 std::size_t minimize_index,
                                                 std::size_t constraint_index,
                                                 double constraint_limit) {
  std::optional<std::size_t> best;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    const Objectives& objectives = result.samples[i].objectives;
    if (objectives[constraint_index] >= constraint_limit) continue;
    if (objectives[minimize_index] < best_value) {
      best_value = objectives[minimize_index];
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> best_objective(const OptimizationResult& result,
                                          std::size_t objective_index) {
  return best_under_constraint(result, objective_index, objective_index,
                               std::numeric_limits<double>::infinity());
}

std::vector<std::size_t> front_of_phase(const OptimizationResult& result,
                                        bool random_phase_only) {
  std::vector<std::size_t> subset;
  std::vector<Objectives> points;
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    if (random_phase_only && result.samples[i].iteration != 0) continue;
    subset.push_back(i);
    points.push_back(result.samples[i].objectives);
  }
  std::vector<std::size_t> front = pareto_indices(points);
  for (std::size_t& index : front) index = subset[index];
  return front;
}

namespace {

std::vector<std::string> make_header(const DesignSpace& space,
                                     const std::vector<std::string>& objective_names,
                                     bool with_iteration) {
  std::vector<std::string> header;
  for (std::size_t p = 0; p < space.parameter_count(); ++p) {
    header.push_back(space.parameter(p).name());
  }
  header.insert(header.end(), objective_names.begin(), objective_names.end());
  if (with_iteration) header.emplace_back("iteration");
  return header;
}

std::vector<std::string> make_row(const DesignSpace& space, const SampleRecord& s,
                                  bool with_iteration) {
  std::vector<std::string> row;
  for (std::size_t p = 0; p < space.parameter_count(); ++p) {
    row.push_back(hm::common::format_double(s.config[p]));
  }
  for (const double o : s.objectives) row.push_back(hm::common::format_double(o));
  if (with_iteration) row.push_back(std::to_string(s.iteration));
  return row;
}

}  // namespace

hm::common::CsvTable samples_to_csv(const DesignSpace& space,
                                    const OptimizationResult& result,
                                    const std::vector<std::string>& objective_names) {
  hm::common::CsvTable table(make_header(space, objective_names, true));
  for (const SampleRecord& s : result.samples) {
    table.add_row(make_row(space, s, true));
  }
  return table;
}

hm::common::CsvTable front_to_csv(const DesignSpace& space,
                                  const OptimizationResult& result,
                                  const std::vector<std::string>& objective_names) {
  hm::common::CsvTable table(make_header(space, objective_names, false));
  for (const std::size_t i : result.pareto) {
    table.add_row(make_row(space, result.samples[i], false));
  }
  return table;
}

std::vector<Configuration> front_from_csv(const DesignSpace& space,
                                          const hm::common::CsvTable& table) {
  std::vector<Configuration> configs;
  // Map space parameters to CSV columns by name.
  std::vector<std::optional<std::size_t>> columns(space.parameter_count());
  for (std::size_t p = 0; p < space.parameter_count(); ++p) {
    columns[p] = table.column(space.parameter(p).name());
  }
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    Configuration config(space.parameter_count(), 0.0);
    bool ok = true;
    for (std::size_t p = 0; p < space.parameter_count() && ok; ++p) {
      if (!columns[p]) {
        ok = false;
        break;
      }
      const auto value = table.cell_as_double(r, *columns[p]);
      if (!value) {
        ok = false;
        break;
      }
      config[p] = *value;
    }
    if (ok) configs.push_back(space.snap(config));
  }
  return configs;
}

hm::common::CsvTable quarantine_to_csv(const DesignSpace& space,
                                       const OptimizationResult& result) {
  std::vector<std::string> header;
  for (std::size_t p = 0; p < space.parameter_count(); ++p) {
    header.push_back(space.parameter(p).name());
  }
  header.emplace_back("status");
  header.emplace_back("message");
  header.emplace_back("iteration");
  header.emplace_back("attempts");
  hm::common::CsvTable table(std::move(header));
  for (const QuarantineRecord& q : result.quarantine) {
    std::vector<std::string> row;
    for (std::size_t p = 0; p < space.parameter_count(); ++p) {
      row.push_back(hm::common::format_double(q.config[p]));
    }
    row.emplace_back(to_string(q.status));
    row.push_back(q.message);
    row.push_back(std::to_string(q.iteration));
    row.push_back(std::to_string(q.attempts));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace hm::hypermapper
