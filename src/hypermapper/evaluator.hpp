// The optimizer's interface to the system under tuning: map a configuration
// to its measured objectives (all minimized). SLAM adapters live in
// src/slambench/adapters.hpp; tests and examples define synthetic ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hypermapper/space.hpp"

namespace hm::hypermapper {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Number of objectives produced per evaluation.
  [[nodiscard]] virtual std::size_t objective_count() const = 0;

  /// Measures one configuration. Must be deterministic for reproducible
  /// experiments (the SLAM evaluators are: the runtime metric is a
  /// device-model sum over counted work).
  [[nodiscard]] virtual std::vector<double> evaluate(
      const Configuration& config) = 0;

  /// Re-evaluates a configuration after a transient failure.
  /// `retry_nonce` is a deterministic, non-zero perturbation value derived
  /// from (retry seed, configuration, attempt) by the supervision layer
  /// (see resilient_evaluator.hpp); evaluators with internal stochasticity
  /// may fold it into their seeding so a retry explores a different
  /// schedule. The default ignores the nonce and repeats evaluate().
  [[nodiscard]] virtual std::vector<double> evaluate_retry(
      const Configuration& config, std::uint64_t retry_nonce) {
    (void)retry_nonce;
    return evaluate(config);
  }

  /// Whether evaluate() may be called concurrently from multiple threads.
  [[nodiscard]] virtual bool thread_safe() const { return false; }
};

}  // namespace hm::hypermapper
