// HyperMapper's model-based multi-objective search (Algorithm 1 of the
// paper): bootstrap with uniform random samples, fit one random-forest
// regressor per objective, predict the Pareto front over a configuration
// pool, evaluate the predicted-front points that have not been measured yet,
// refit, and repeat until the predicted front is fully measured or budgets
// are exhausted.
#pragma once

#include <cstddef>
#include <span>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "hypermapper/evaluator.hpp"
#include "hypermapper/pareto.hpp"
#include "hypermapper/resilient_evaluator.hpp"
#include "hypermapper/space.hpp"
#include "rf/forest.hpp"

namespace hm::hypermapper {

struct OptimizerConfig {
  /// Bootstrap phase: number of distinct uniform random samples (`rs`).
  std::size_t random_samples = 300;
  /// Maximum active-learning iterations (the paper observed convergence in
  /// about 6 on KFusion).
  std::size_t max_iterations = 6;
  /// Cap on evaluations per active-learning iteration. The paper reports
  /// 100-300 new samples per iteration; the cap bounds runaway fronts.
  std::size_t max_samples_per_iteration = 300;
  /// Prediction-pool size. If the space cardinality is <= pool_size (or
  /// exhaustive_pool is set and the space is enumerable), the entire space
  /// is used, matching the paper exactly; otherwise a fresh uniform pool of
  /// this size is drawn each iteration.
  std::size_t pool_size = 50'000;
  bool exhaustive_pool = false;
  /// Surrogate forests (one per objective; seeds are derived per objective
  /// and per iteration).
  hm::rf::ForestConfig forest;
  /// Evaluation supervision: retries, deadlines, and objective validation.
  /// Failed configurations are quarantined instead of aborting the run.
  ResiliencePolicy resilience;
  std::uint64_t seed = 42;
};

/// One measured sample: configuration, objectives, and the phase that
/// produced it (iteration 0 = random bootstrap, >= 1 = active learning).
/// Active-learning samples also carry the surrogate's prediction at
/// selection time, so the prediction/measurement discrepancy the paper
/// notes ("active learning points that do not lie on the Pareto front")
/// can be quantified.
struct SampleRecord {
  Configuration config;
  Objectives objectives;
  std::size_t iteration = 0;
  Objectives predicted;  ///< Empty for random-phase samples.
};

/// A configuration whose evaluation failed: kept out of the sample set, the
/// surrogate training data, and the Pareto computation, and never
/// re-proposed by active learning.
struct QuarantineRecord {
  Configuration config;
  /// DesignSpace::key for discrete spaces, config_hash otherwise.
  std::uint64_t key = 0;
  EvaluationStatus status = EvaluationStatus::kException;
  std::string message;
  std::size_t iteration = 0;
  std::size_t attempts = 1;  ///< Evaluation attempts consumed.
};

/// Per-iteration progress for ablation studies.
struct IterationStats {
  std::size_t iteration = 0;
  std::size_t new_samples = 0;        ///< Successful evaluations this iteration.
  std::size_t failed_samples = 0;     ///< Quarantined evaluations this iteration.
  std::size_t predicted_front_size = 0;
  std::size_t measured_front_size = 0;  ///< Front of all samples so far.
  double oob_rmse_objective0 = 0.0;
  double oob_rmse_objective1 = 0.0;
  /// Mean relative |predicted - measured| / measured over this iteration's
  /// evaluations, per objective index (empty on the bootstrap iteration).
  std::vector<double> prediction_error;
};

struct OptimizationResult {
  std::vector<SampleRecord> samples;           ///< Successful evaluations, in order.
  std::vector<std::size_t> pareto;             ///< Front indices into samples.
  std::vector<std::size_t> random_phase_pareto;  ///< Front using only iteration-0 samples.
  std::vector<IterationStats> iterations;
  /// Failed configurations, in evaluation order. Disjoint from samples.
  std::vector<QuarantineRecord> quarantine;

  [[nodiscard]] std::size_t random_sample_count() const;
  [[nodiscard]] std::size_t active_sample_count() const;
  /// Quarantined configurations with the given failure class.
  [[nodiscard]] std::size_t failure_count(EvaluationStatus status) const;
};

class Optimizer {
 public:
  Optimizer(const DesignSpace& space, Evaluator& evaluator,
            OptimizerConfig config = {},
            hm::common::ThreadPool* pool = nullptr);

  /// Optional progress callback, invoked after the bootstrap phase and after
  /// every active-learning iteration.
  using ProgressFn = std::function<void(const IterationStats&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Runs Algorithm 1 to completion and returns every measured sample plus
  /// the final measured Pareto front.
  [[nodiscard]] OptimizationResult run();

  /// Runs only the random bootstrap phase (used by the sampling ablation).
  [[nodiscard]] OptimizationResult run_random_only();

  /// Runs Algorithm 1 warm-started from previously measured samples (their
  /// objectives are reused, not re-evaluated) instead of the random
  /// bootstrap — the "resampling / transfer" direction of the paper's
  /// future work. Seed samples are recorded as iteration 0.
  [[nodiscard]] OptimizationResult run_seeded(
      std::span<const SampleRecord> seed);

 private:
  std::vector<Configuration> make_pool(hm::common::Rng& rng) const;
  void evaluate_batch(const std::vector<Configuration>& configs,
                      std::size_t iteration, OptimizationResult& result,
                      const std::vector<Objectives>* predicted = nullptr);
  [[nodiscard]] std::vector<std::size_t> measured_front(
      const OptimizationResult& result) const;
  /// The active-learning phase, continuing from whatever `result` holds.
  void run_active_learning(OptimizationResult& result, hm::common::Rng& rng);

  const DesignSpace& space_;
  Evaluator& evaluator_;
  OptimizerConfig config_;
  /// Supervision wrapper around evaluator_; every measurement goes through
  /// it so failures surface as typed outcomes instead of exceptions.
  ResilientEvaluator supervisor_;
  hm::common::ThreadPool* pool_;
  ProgressFn progress_;
};

}  // namespace hm::hypermapper
