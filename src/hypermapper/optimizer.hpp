// HyperMapper's model-based multi-objective search (Algorithm 1 of the
// paper): bootstrap with uniform random samples, fit one random-forest
// regressor per objective, predict the Pareto front over a configuration
// pool, evaluate the predicted-front points that have not been measured yet,
// refit, and repeat until the predicted front is fully measured or budgets
// are exhausted.
#pragma once

#include <cstddef>
#include <span>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/journal.hpp"
#include "common/thread_pool.hpp"
#include "hypermapper/evaluator.hpp"
#include "hypermapper/pareto.hpp"
#include "hypermapper/resilient_evaluator.hpp"
#include "hypermapper/space.hpp"
#include "rf/forest.hpp"

namespace hm::hypermapper {

struct OptimizerConfig {
  /// Bootstrap phase: number of distinct uniform random samples (`rs`).
  std::size_t random_samples = 300;
  /// Maximum active-learning iterations (the paper observed convergence in
  /// about 6 on KFusion).
  std::size_t max_iterations = 6;
  /// Cap on evaluations per active-learning iteration. The paper reports
  /// 100-300 new samples per iteration; the cap bounds runaway fronts.
  std::size_t max_samples_per_iteration = 300;
  /// Prediction-pool size. If the space cardinality is <= pool_size (or
  /// exhaustive_pool is set and the space is enumerable), the entire space
  /// is used, matching the paper exactly; otherwise a fresh uniform pool of
  /// this size is drawn each iteration.
  std::size_t pool_size = 50'000;
  bool exhaustive_pool = false;
  /// Surrogate forests (one per objective; seeds are derived per objective
  /// and per iteration).
  hm::rf::ForestConfig forest;
  /// Evaluation supervision: retries, deadlines, and objective validation.
  /// Failed configurations are quarantined instead of aborting the run.
  ResiliencePolicy resilience;
  std::uint64_t seed = 42;
};

/// One measured sample: configuration, objectives, and the phase that
/// produced it (iteration 0 = random bootstrap, >= 1 = active learning).
/// Active-learning samples also carry the surrogate's prediction at
/// selection time, so the prediction/measurement discrepancy the paper
/// notes ("active learning points that do not lie on the Pareto front")
/// can be quantified.
struct SampleRecord {
  Configuration config;
  Objectives objectives;
  std::size_t iteration = 0;
  Objectives predicted;  ///< Empty for random-phase samples.
};

/// A configuration whose evaluation failed: kept out of the sample set, the
/// surrogate training data, and the Pareto computation, and never
/// re-proposed by active learning.
struct QuarantineRecord {
  Configuration config;
  /// DesignSpace::key for discrete spaces, config_hash otherwise.
  std::uint64_t key = 0;
  EvaluationStatus status = EvaluationStatus::kException;
  std::string message;
  std::size_t iteration = 0;
  std::size_t attempts = 1;  ///< Evaluation attempts consumed.
};

/// Per-iteration progress for ablation studies.
struct IterationStats {
  std::size_t iteration = 0;
  std::size_t new_samples = 0;        ///< Successful evaluations this iteration.
  std::size_t failed_samples = 0;     ///< Quarantined evaluations this iteration.
  std::size_t predicted_front_size = 0;
  std::size_t measured_front_size = 0;  ///< Front of all samples so far.
  double oob_rmse_objective0 = 0.0;
  double oob_rmse_objective1 = 0.0;
  /// Mean relative |predicted - measured| / measured over this iteration's
  /// evaluations, per objective index (empty on the bootstrap iteration).
  std::vector<double> prediction_error;
};

struct OptimizationResult {
  std::vector<SampleRecord> samples;           ///< Successful evaluations, in order.
  std::vector<std::size_t> pareto;             ///< Front indices into samples.
  std::vector<std::size_t> random_phase_pareto;  ///< Front using only iteration-0 samples.
  std::vector<IterationStats> iterations;
  /// Failed configurations, in evaluation order. Disjoint from samples.
  std::vector<QuarantineRecord> quarantine;
  /// True when the run was stopped by cooperative cancellation (SIGINT via
  /// Optimizer::set_cancel) before finishing. A journaled interrupted run
  /// can be continued with Optimizer::resume to the byte-identical result
  /// an uninterrupted run would have produced.
  bool interrupted = false;

  [[nodiscard]] std::size_t random_sample_count() const;
  [[nodiscard]] std::size_t active_sample_count() const;
  /// Quarantined configurations with the given failure class.
  [[nodiscard]] std::size_t failure_count(EvaluationStatus status) const;
};

struct ReplayEntry;  // run_journal.hpp

class Optimizer {
 public:
  Optimizer(const DesignSpace& space, Evaluator& evaluator,
            OptimizerConfig config = {},
            hm::common::ThreadPool* pool = nullptr);

  /// Optional progress callback, invoked after the bootstrap phase and after
  /// every active-learning iteration.
  using ProgressFn = std::function<void(const IterationStats&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Attaches a write-ahead journal: every completed evaluation and every
  /// phase transition of run() is appended durably, so a killed process
  /// loses at most the evaluations that were in flight. The journal must
  /// outlive the optimizer's run. For run(), attach a fresh (empty-file)
  /// journal; to continue a crashed run, open its existing journal and call
  /// resume(). `policy` controls how often the journal is compacted into a
  /// snapshot (default: every phase boundary).
  void attach_journal(hm::common::JournalWriter* journal,
                      hm::common::CheckpointPolicy policy = {}) {
    journal_ = journal;
    checkpoint_policy_ = policy;
  }

  /// Cooperative cancellation probe, polled between evaluations and between
  /// iterations. When it returns true the run stops cleanly: completed
  /// evaluations are already journaled, in-flight ones are skipped, and the
  /// returned result has `interrupted == true`. Typically wired to
  /// common::shutdown_requested (SIGINT/SIGTERM).
  void set_cancel(std::function<bool()> cancel) { cancel_ = std::move(cancel); }

  /// Resumes a journaled run() from its write-ahead log: replays the
  /// committed prefix (without re-evaluating anything), restores the RNG
  /// stream at the last phase boundary, re-runs the in-flight iteration
  /// consulting the journaled tail as a dedupe map, and continues to
  /// completion. The final result is byte-identical to what an
  /// uninterrupted run() with the same configuration would have returned.
  /// Returns nullopt (with a logged reason) when the journal is missing,
  /// unusable, or was written by a different run configuration. If a
  /// journal is attached (normally the same file), the resumed run keeps
  /// journaling — resume after a second crash works the same way.
  [[nodiscard]] std::optional<OptimizationResult> resume(
      const std::string& journal_path);

  /// Runs Algorithm 1 to completion and returns every measured sample plus
  /// the final measured Pareto front.
  [[nodiscard]] OptimizationResult run();

  /// Runs only the random bootstrap phase (used by the sampling ablation).
  [[nodiscard]] OptimizationResult run_random_only();

  /// Runs Algorithm 1 warm-started from previously measured samples (their
  /// objectives are reused, not re-evaluated) instead of the random
  /// bootstrap — the "resampling / transfer" direction of the paper's
  /// future work. Seed samples are recorded as iteration 0.
  [[nodiscard]] OptimizationResult run_seeded(
      std::span<const SampleRecord> seed);

 private:
  std::vector<Configuration> make_pool(hm::common::Rng& rng) const;
  void evaluate_batch(const std::vector<Configuration>& configs,
                      std::size_t iteration, OptimizationResult& result,
                      const std::vector<Objectives>* predicted = nullptr);
  [[nodiscard]] std::vector<std::size_t> measured_front(
      const OptimizationResult& result) const;
  /// The active-learning phase, continuing from whatever `result` holds,
  /// starting at `start_iteration` (> 1 when resuming past completed
  /// phases).
  void run_active_learning(OptimizationResult& result, hm::common::Rng& rng,
                           std::size_t start_iteration = 1);

  [[nodiscard]] bool cancel_requested() const {
    return cancel_ && cancel_();
  }
  [[nodiscard]] std::uint64_t replay_key(const Configuration& config) const;
  /// Rebuilds pareto/random_phase_pareto from samples (resume of a
  /// finished run; identical to the archive-incremental computation).
  void finalize_fronts(OptimizationResult& result) const;
  /// Journal helpers; all degrade to no-ops when journaling is off, and
  /// disable journaling (with a warning) on I/O failure rather than abort
  /// the optimization.
  void journal_append(const char* type, const std::string& payload);
  void journal_phase_boundary(const OptimizationResult& result,
                              std::size_t iteration,
                              const hm::common::Rng& rng);
  void compact_journal(const OptimizationResult& result, bool has_phase,
                       std::size_t iteration, const hm::common::RngState& rng);

  const DesignSpace& space_;
  Evaluator& evaluator_;
  OptimizerConfig config_;
  /// Supervision wrapper around evaluator_; every measurement goes through
  /// it so failures surface as typed outcomes instead of exceptions.
  ResilientEvaluator supervisor_;
  hm::common::ThreadPool* pool_;
  ProgressFn progress_;
  hm::common::JournalWriter* journal_ = nullptr;
  hm::common::CheckpointPolicy checkpoint_policy_;
  std::function<bool()> cancel_;
  /// True only inside run()/resume() after the run record is on disk;
  /// run_random_only/run_seeded never journal.
  bool journal_started_ = false;
  std::uint32_t phases_since_compaction_ = 0;
  /// Resume only: outcomes journaled by the crashed run's in-flight
  /// iteration, keyed by configuration identity. evaluate_batch consults
  /// this before evaluating.
  const std::unordered_map<std::uint64_t, ReplayEntry>* replay_ = nullptr;
};

}  // namespace hm::hypermapper
