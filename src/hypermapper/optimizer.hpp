// HyperMapper's model-based multi-objective search (Algorithm 1 of the
// paper): bootstrap with uniform random samples, fit one random-forest
// regressor per objective, predict the Pareto front over a configuration
// pool, evaluate the predicted-front points that have not been measured yet,
// refit, and repeat until the predicted front is fully measured or budgets
// are exhausted.
//
// The search core is batch-asynchronous: Optimizer::AsyncRun proposes one
// candidate batch at a time and folds evaluation outcomes back in as they
// land, in any order and from any thread. run()/resume()/run_seeded() are
// thin synchronous drivers over it; hm_serve drives many AsyncRuns from one
// event loop, dispatching their batches on the shared ThreadPool. The
// result stream stays deterministic regardless of completion order because
// outcomes are merged in slot order at batch commit, which is also the
// journal's seq order — a served, crashed, resumed campaign reproduces the
// uninterrupted run byte for byte.
#pragma once

#include <cstddef>
#include <span>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/journal.hpp"
#include "common/thread_pool.hpp"
#include "hypermapper/evaluator.hpp"
#include "hypermapper/pareto.hpp"
#include "hypermapper/resilient_evaluator.hpp"
#include "hypermapper/space.hpp"
#include "rf/forest.hpp"

namespace hm::hypermapper {

struct OptimizerConfig {
  /// Bootstrap phase: number of distinct uniform random samples (`rs`).
  std::size_t random_samples = 300;
  /// Maximum active-learning iterations (the paper observed convergence in
  /// about 6 on KFusion).
  std::size_t max_iterations = 6;
  /// Cap on evaluations per active-learning iteration. The paper reports
  /// 100-300 new samples per iteration; the cap bounds runaway fronts.
  std::size_t max_samples_per_iteration = 300;
  /// Prediction-pool size. If the space cardinality is <= pool_size (or
  /// exhaustive_pool is set and the space is enumerable), the entire space
  /// is used, matching the paper exactly; otherwise a fresh uniform pool of
  /// this size is drawn each iteration.
  std::size_t pool_size = 50'000;
  bool exhaustive_pool = false;
  /// Surrogate forests (one per objective; seeds are derived per objective
  /// and per iteration).
  hm::rf::ForestConfig forest;
  /// Evaluation supervision: retries, deadlines, and objective validation.
  /// Failed configurations are quarantined instead of aborting the run.
  ResiliencePolicy resilience;
  std::uint64_t seed = 42;
};

/// One measured sample: configuration, objectives, and the phase that
/// produced it (iteration 0 = random bootstrap, >= 1 = active learning).
/// Active-learning samples also carry the surrogate's prediction at
/// selection time, so the prediction/measurement discrepancy the paper
/// notes ("active learning points that do not lie on the Pareto front")
/// can be quantified.
struct SampleRecord {
  Configuration config;
  Objectives objectives;
  std::size_t iteration = 0;
  Objectives predicted;  ///< Empty for random-phase samples.
};

/// A configuration whose evaluation failed: kept out of the sample set, the
/// surrogate training data, and the Pareto computation, and never
/// re-proposed by active learning.
struct QuarantineRecord {
  Configuration config;
  /// DesignSpace::key for discrete spaces, config_hash otherwise.
  std::uint64_t key = 0;
  EvaluationStatus status = EvaluationStatus::kException;
  std::string message;
  std::size_t iteration = 0;
  std::size_t attempts = 1;  ///< Evaluation attempts consumed.
};

/// Per-iteration progress for ablation studies.
struct IterationStats {
  std::size_t iteration = 0;
  std::size_t new_samples = 0;        ///< Successful evaluations this iteration.
  std::size_t failed_samples = 0;     ///< Quarantined evaluations this iteration.
  std::size_t predicted_front_size = 0;
  std::size_t measured_front_size = 0;  ///< Front of all samples so far.
  double oob_rmse_objective0 = 0.0;
  double oob_rmse_objective1 = 0.0;
  /// Mean relative |predicted - measured| / measured over this iteration's
  /// evaluations, per objective index (empty on the bootstrap iteration).
  std::vector<double> prediction_error;
};

struct OptimizationResult {
  std::vector<SampleRecord> samples;           ///< Successful evaluations, in order.
  std::vector<std::size_t> pareto;             ///< Front indices into samples.
  std::vector<std::size_t> random_phase_pareto;  ///< Front using only iteration-0 samples.
  std::vector<IterationStats> iterations;
  /// Failed configurations, in evaluation order. Disjoint from samples.
  std::vector<QuarantineRecord> quarantine;
  /// True when the run was stopped by cooperative cancellation (SIGINT via
  /// Optimizer::set_cancel) before finishing. A journaled interrupted run
  /// can be continued with Optimizer::resume to the byte-identical result
  /// an uninterrupted run would have produced.
  bool interrupted = false;

  [[nodiscard]] std::size_t random_sample_count() const;
  [[nodiscard]] std::size_t active_sample_count() const;
  /// Quarantined configurations with the given failure class.
  [[nodiscard]] std::size_t failure_count(EvaluationStatus status) const;
};

struct ReplayEntry;  // run_journal.hpp
struct ReplayState;  // run_journal.hpp

/// One batch of configurations proposed by the batch-async engine. Slots
/// are positions in `configs`; `pending` lists the slots the driver must
/// evaluate (the rest were already replayed from a journal tail and need no
/// work). A proposal with an empty `pending` list is legal — the driver
/// just asks for the next batch.
struct BatchProposal {
  std::size_t iteration = 0;           ///< 0 = random bootstrap batch.
  std::vector<Configuration> configs;  ///< Slot-indexed candidate set.
  /// Surrogate predictions per slot; empty for the bootstrap batch.
  std::vector<Objectives> predicted;
  std::vector<std::size_t> pending;    ///< Slots awaiting ingest()/skip().
};

class Optimizer {
 public:
  Optimizer(const DesignSpace& space, Evaluator& evaluator,
            OptimizerConfig config = {},
            hm::common::ThreadPool* pool = nullptr);

  /// Optional progress callback, invoked after the bootstrap phase and after
  /// every active-learning iteration.
  using ProgressFn = std::function<void(const IterationStats&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Attaches a write-ahead journal: every completed evaluation and every
  /// phase transition of run() is appended durably, so a killed process
  /// loses at most the evaluations that were in flight. The journal must
  /// outlive the optimizer's run. For run(), attach a fresh (empty-file)
  /// journal; to continue a crashed run, open its existing journal and call
  /// resume(). `policy` controls how often the journal is compacted into a
  /// snapshot (default: every phase boundary).
  void attach_journal(hm::common::JournalWriter* journal,
                      hm::common::CheckpointPolicy policy = {}) {
    journal_ = journal;
    checkpoint_policy_ = policy;
  }

  /// Cooperative cancellation probe, polled between evaluations and between
  /// iterations. When it returns true the run stops cleanly: completed
  /// evaluations are already journaled, in-flight ones are skipped, and the
  /// returned result has `interrupted == true`. Typically wired to
  /// common::shutdown_requested (SIGINT/SIGTERM).
  void set_cancel(std::function<bool()> cancel) { cancel_ = std::move(cancel); }

  /// Resumes a journaled run() from its write-ahead log: replays the
  /// committed prefix (without re-evaluating anything), restores the RNG
  /// stream at the last phase boundary, re-runs the in-flight iteration
  /// consulting the journaled tail as a dedupe map, and continues to
  /// completion. The final result is byte-identical to what an
  /// uninterrupted run() with the same configuration would have returned.
  /// Returns nullopt (with a logged reason) when the journal is missing,
  /// unusable, or was written by a different run configuration. If a
  /// journal is attached (normally the same file), the resumed run keeps
  /// journaling — resume after a second crash works the same way.
  [[nodiscard]] std::optional<OptimizationResult> resume(
      const std::string& journal_path);

  /// Runs Algorithm 1 to completion and returns every measured sample plus
  /// the final measured Pareto front.
  [[nodiscard]] OptimizationResult run();

  /// Runs only the random bootstrap phase (used by the sampling ablation).
  [[nodiscard]] OptimizationResult run_random_only();

  /// Runs Algorithm 1 warm-started from previously measured samples (their
  /// objectives are reused, not re-evaluated) instead of the random
  /// bootstrap — the "resampling / transfer" direction of the paper's
  /// future work. Seed samples are recorded as iteration 0.
  [[nodiscard]] OptimizationResult run_seeded(
      std::span<const SampleRecord> seed);

  /// Batch-asynchronous tuning session. The driver loop is:
  ///
  ///   auto session = optimizer.start_async();
  ///   while (auto batch = session->next_batch()) {
  ///     for (slot : batch->pending)          // dispatch anywhere, any order
  ///       session->ingest(slot, outcome);    // thread-safe
  ///   }
  ///   OptimizationResult result = session->finish();
  ///
  /// next_batch()/interrupt()/finish() must be called from one driver
  /// thread; ingest()/skip() may be called concurrently from any thread
  /// (ThreadPool workers, a server's completion queue). next_batch()
  /// commits the previous batch — merging resolved slots in slot order, so
  /// the sample/quarantine/journal streams are identical no matter what
  /// order outcomes landed in — then proposes the next one. A batch with
  /// unresolved slots at commit time marks the run interrupted, exactly
  /// like cooperative cancellation in the synchronous drivers.
  class AsyncRun;

  /// Starts a fresh batch-async run (the journaled run() path). At most one
  /// AsyncRun per Optimizer may be live at a time.
  [[nodiscard]] std::unique_ptr<AsyncRun> start_async();

  /// Batch-async resume of a journaled run; same validation and semantics
  /// as resume(). Returns nullptr (with a logged reason) when the journal
  /// is unusable. A journal whose run already finished yields a session
  /// that is immediately done — finish() returns the reconstructed result.
  [[nodiscard]] std::unique_ptr<AsyncRun> resume_async(
      const std::string& journal_path);

  /// The supervision wrapper around the evaluator (retries, deadlines,
  /// typed outcomes). External drivers of AsyncRun dispatch through this so
  /// failures land as outcomes instead of exceptions.
  [[nodiscard]] ResilientEvaluator& supervised_evaluator() noexcept {
    return supervisor_;
  }

 private:
  friend class AsyncRun;

  std::vector<Configuration> make_pool(hm::common::Rng& rng) const;
  [[nodiscard]] std::vector<std::size_t> measured_front(
      const OptimizationResult& result) const;
  /// Synchronous driver over an AsyncRun: dispatches every pending slot
  /// (on the ThreadPool when the evaluator allows), honoring the
  /// cooperative cancellation probe.
  void drive(AsyncRun& session);

  [[nodiscard]] bool cancel_requested() const {
    return cancel_ && cancel_();
  }
  [[nodiscard]] std::uint64_t replay_key(const Configuration& config) const;
  /// Rebuilds pareto/random_phase_pareto from samples (resume of a
  /// finished run; identical to the archive-incremental computation).
  void finalize_fronts(OptimizationResult& result) const;
  /// Journal helpers; all degrade to no-ops when journaling is off, and
  /// disable journaling (with a warning) on I/O failure rather than abort
  /// the optimization.
  void journal_append(const char* type, const std::string& payload);
  void journal_phase_boundary(const OptimizationResult& result,
                              std::size_t iteration,
                              const hm::common::Rng& rng);
  void compact_journal(const OptimizationResult& result, bool has_phase,
                       std::size_t iteration, const hm::common::RngState& rng);

  const DesignSpace& space_;
  Evaluator& evaluator_;
  OptimizerConfig config_;
  /// Supervision wrapper around evaluator_; every measurement goes through
  /// it so failures surface as typed outcomes instead of exceptions.
  ResilientEvaluator supervisor_;
  hm::common::ThreadPool* pool_;
  ProgressFn progress_;
  hm::common::JournalWriter* journal_ = nullptr;
  hm::common::CheckpointPolicy checkpoint_policy_;
  std::function<bool()> cancel_;
  /// True only inside a journaled session after the run record is on disk;
  /// run_random_only/run_seeded never journal.
  bool journal_started_ = false;
  std::uint32_t phases_since_compaction_ = 0;
};

class Optimizer::AsyncRun {
 public:
  ~AsyncRun();
  AsyncRun(const AsyncRun&) = delete;
  AsyncRun& operator=(const AsyncRun&) = delete;

  /// Commits the in-flight batch (if any) and proposes the next one.
  /// Returns nullopt when the run is over: converged, budget exhausted, or
  /// interrupted. Driver thread only; every pending slot of the previous
  /// batch must have been resolved via ingest()/skip() first — committing
  /// with unresolved slots marks the run interrupted.
  [[nodiscard]] std::optional<BatchProposal> next_batch();

  /// Folds one evaluation outcome into the current batch. Thread-safe;
  /// out-of-order and duplicate-safe (a slot resolves at most once).
  void ingest(std::size_t slot, EvaluationOutcome outcome);
  /// Resolves a slot as never-evaluated (cooperative cancellation). The
  /// batch commit will mark the run interrupted. Thread-safe.
  void skip(std::size_t slot);

  /// True when no proposed slot is still awaiting ingest()/skip().
  [[nodiscard]] bool batch_resolved() const;
  /// Pending slots of the current batch not yet resolved.
  [[nodiscard]] std::size_t outstanding() const;

  /// Stops the run: commits the in-flight batch (a fully resolved batch
  /// commits normally — stats, phase boundary — exactly like the loop-top
  /// cancellation in the synchronous driver) and marks the result
  /// interrupted unless the run had already completed. Driver thread only.
  void interrupt();

  /// Finalizes and returns the result (computes the fronts, appends the
  /// terminal journal record on a completed run). Implicitly interrupts a
  /// run that is still mid-flight. Driver thread only; call at most once.
  [[nodiscard]] OptimizationResult finish();

  [[nodiscard]] bool done() const { return phase_ == Phase::kDone; }
  [[nodiscard]] bool interrupted() const { return result_.interrupted; }
  [[nodiscard]] std::size_t iteration() const { return iteration_; }
  [[nodiscard]] std::size_t sample_count() const {
    return result_.samples.size();
  }
  /// Size of the measured Pareto front so far (driver thread only).
  [[nodiscard]] std::size_t front_size() const { return archive_.size(); }

 private:
  friend class Optimizer;

  enum class Phase : std::uint8_t { kBootstrap, kActive, kDone };
  /// Slot lifecycle within one batch.
  static constexpr unsigned char kSlotPending = 0;
  static constexpr unsigned char kSlotIngested = 1;
  static constexpr unsigned char kSlotReplayed = 2;
  static constexpr unsigned char kSlotSkipped = 3;

  /// Construction recipe shared by run()/resume()/run_seeded()/serve.
  struct Start {
    OptimizationResult initial;
    bool needs_bootstrap = true;
    std::size_t start_iteration = 1;
    bool has_rng_state = false;
    hm::common::RngState rng_state;
    bool record_stats = true;     ///< False only for run_random_only.
    bool bootstrap_only = false;  ///< Stop after the bootstrap batch.
    bool already_finished = false;  ///< Resume of a done journal.
    bool journaling = false;
    std::unique_ptr<ReplayState> replay;  ///< Crashed run's journal tail.
  };

  AsyncRun(Optimizer& owner, Start start);

  /// Bootstrap finished (or was skipped): record its stats and boundary,
  /// build the dedupe key set, transition to the active-learning phase.
  void enter_active();
  /// Merges the in-flight batch in slot order and advances the phase
  /// machine (stats, archive, journal boundary). Driver thread only.
  void commit_batch();
  [[nodiscard]] std::optional<BatchProposal> propose_bootstrap();
  /// One active-learning proposal: fit surrogates, predict the pool front,
  /// select unmeasured front points. Sets kDone on the termination
  /// conditions instead of returning a batch.
  [[nodiscard]] std::optional<BatchProposal> propose_iteration();
  void open_batch(std::vector<Configuration> configs,
                  std::vector<Objectives> predicted, std::size_t iteration);
  [[nodiscard]] BatchProposal make_proposal() const;

  Optimizer& opt_;
  OptimizationResult result_;
  hm::common::Rng rng_;
  ParetoArchive archive_;
  ParetoArchive bootstrap_archive_;
  std::unordered_set<std::uint64_t> evaluated_keys_;
  std::unique_ptr<ReplayState> replay_;
  Phase phase_ = Phase::kBootstrap;
  std::size_t iteration_ = 1;  ///< Next active-learning iteration to propose.
  bool record_stats_ = true;
  bool bootstrap_only_ = false;
  bool already_finished_ = false;
  bool finished_ = false;

  // In-flight batch. The proposal-shape members are driver-thread state
  // (written at open, read at commit; no evaluation is outstanding at
  // either point). Slot resolution state is shared with ingest()/skip()
  // callers and lives under batch_mutex_.
  bool batch_open_ = false;
  std::size_t batch_iteration_ = 0;
  std::vector<Configuration> batch_configs_;
  std::vector<Objectives> batch_predicted_;
  IterationStats pending_stats_;

  mutable std::mutex batch_mutex_;
  std::vector<EvaluationOutcome> outcomes_;  // hm-guarded-by(batch_mutex_)
  std::vector<unsigned char> slot_state_;    // hm-guarded-by(batch_mutex_)
  std::size_t unresolved_ = 0;               // hm-guarded-by(batch_mutex_)
};

}  // namespace hm::hypermapper
