// Evaluation supervision: wraps any Evaluator so that exceptions, invalid
// objective vectors (wrong arity, NaN/Inf, negative runtimes), and deadline
// overruns become typed, recoverable outcomes instead of aborting a
// multi-hundred-sample DSE run. This is what makes in-the-wild autotuning
// (the paper's 2000-installs crowd experiment) survivable: SLAMBench treats
// per-algorithm failure as a first-class benchmark outcome, and the
// optimizer quarantines failed configurations instead of crashing on them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "hypermapper/evaluator.hpp"
#include "hypermapper/pareto.hpp"

namespace hm::hypermapper {

/// Classification of one supervised evaluation.
enum class EvaluationStatus : std::uint8_t {
  kOk = 0,
  kInvalidObjectives,  ///< Wrong arity, non-finite, or negative objectives.
  kException,          ///< The evaluator threw.
  kTimeout,            ///< The cooperative deadline was exceeded.
};

[[nodiscard]] const char* to_string(EvaluationStatus status);

/// Thrown by evaluators that can classify their own failures (the SLAM
/// adapters do): transient failures (e.g. tracking loss) are eligible for a
/// deterministic retry with a perturbed seed; permanent ones (e.g. a
/// parameter-infeasible volume) are quarantined immediately.
class EvaluationError : public std::runtime_error {
 public:
  EvaluationError(const std::string& message, bool transient)
      : std::runtime_error(message), transient_(transient) {}

  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// Thrown by supervision layers that enforce *hard* deadlines (the process
/// sandbox, src/sandbox/): the evaluation was forcibly terminated at the
/// wall-clock limit. Classified kTimeout, with retry eligibility decided
/// by ResiliencePolicy::retry_timeouts exactly like cooperative timeouts.
class EvaluationTimeout : public EvaluationError {
 public:
  explicit EvaluationTimeout(const std::string& message)
      : EvaluationError(message, /*transient=*/false) {}
};

/// The typed result of one supervised evaluation.
struct EvaluationOutcome {
  EvaluationStatus status = EvaluationStatus::kOk;
  Objectives objectives;     ///< Validated; empty unless status == kOk.
  std::string message;       ///< Human-readable failure description.
  std::size_t attempts = 0;  ///< Evaluation attempts consumed (>= 1).

  [[nodiscard]] bool ok() const noexcept {
    return status == EvaluationStatus::kOk;
  }
};

/// Supervision policy.
struct ResiliencePolicy {
  /// Maximum evaluation attempts per configuration. Attempts beyond the
  /// first happen only for transient failures (EvaluationError with
  /// transient() == true, or timeouts when retry_timeouts is set) and pass a
  /// deterministic retry nonce to the evaluator (seed perturbation).
  std::size_t max_attempts = 3;
  /// Cooperative per-evaluation deadline in wall-clock seconds; 0 disables.
  /// The evaluator is never preempted: an overrunning call completes, its
  /// result is discarded, and the evaluation is classified kTimeout.
  double deadline_seconds = 0.0;
  /// Whether timeouts count as transient (retried) or permanent.
  bool retry_timeouts = false;
  /// Objectives must always be finite; with this set they must also be
  /// non-negative (runtime, ATE, and power all are in this repo).
  bool require_non_negative = true;
  /// Base seed of the retry-nonce derivation.
  std::uint64_t retry_seed = 0x5eed5eedULL;
};

/// Order-independent 64-bit hash of a configuration (bitwise over the
/// parameter values). Used to key quarantine entries of continuous spaces
/// and to derive deterministic per-configuration retry nonces and fault
/// schedules.
[[nodiscard]] std::uint64_t config_hash(const Configuration& config) noexcept;

/// Validates an objective vector: returns a failure description, or nullopt
/// if the vector has the expected arity and every entry is finite (and
/// non-negative when required).
[[nodiscard]] std::optional<std::string> validate_objectives(
    std::span<const double> objectives, std::size_t expected_arity,
    bool require_non_negative);

/// The supervision wrapper. Thread-safe whenever the inner evaluator is;
/// all counters are atomic.
class ResilientEvaluator final : public Evaluator {
 public:
  explicit ResilientEvaluator(Evaluator& inner, ResiliencePolicy policy = {});

  [[nodiscard]] std::size_t objective_count() const override {
    return inner_.objective_count();
  }
  [[nodiscard]] bool thread_safe() const override {
    return inner_.thread_safe();
  }

  /// Evaluator-interface compatibility: returns validated objectives on
  /// success and throws EvaluationError (permanent) on any failure.
  [[nodiscard]] std::vector<double> evaluate(
      const Configuration& config) override;

  /// The supervised entry point: never throws.
  [[nodiscard]] EvaluationOutcome evaluate_outcome(const Configuration& config);

  [[nodiscard]] const ResiliencePolicy& policy() const noexcept {
    return policy_;
  }

  /// Counters over every evaluate_outcome() call so far.
  [[nodiscard]] std::size_t ok_count() const noexcept { return ok_; }
  [[nodiscard]] std::size_t failure_count() const noexcept {
    return invalid_ + exceptions_ + timeouts_;
  }
  [[nodiscard]] std::size_t invalid_count() const noexcept { return invalid_; }
  [[nodiscard]] std::size_t exception_count() const noexcept {
    return exceptions_;
  }
  [[nodiscard]] std::size_t timeout_count() const noexcept { return timeouts_; }
  /// Attempts beyond the first (i.e. transient-failure retries).
  [[nodiscard]] std::size_t retry_count() const noexcept { return retries_; }

 private:
  Evaluator& inner_;
  ResiliencePolicy policy_;
  std::atomic<std::size_t> ok_{0};
  std::atomic<std::size_t> invalid_{0};
  std::atomic<std::size_t> exceptions_{0};
  std::atomic<std::size_t> timeouts_{0};
  std::atomic<std::size_t> retries_{0};
};

}  // namespace hm::hypermapper
