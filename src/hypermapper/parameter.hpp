// Design-space parameter types. A parameter maps an index (its position in
// the parameter's discrete value list) to a numeric value, a printable
// label, and a model feature. Continuous (real) parameters are supported for
// generic use of the optimizer; the paper's SLAM spaces are fully discrete.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hm::hypermapper {

enum class ParameterKind {
  kOrdinal,      ///< Explicit ordered list of numeric values.
  kInteger,      ///< Contiguous integer range [lo, hi].
  kBoolean,      ///< {0, 1}.
  kCategorical,  ///< Unordered labels; feature-encoded by index.
  kReal,         ///< Continuous range [lo, hi]; cardinality 0 (not enumerable).
};

class Parameter {
 public:
  [[nodiscard]] static Parameter ordinal(std::string name,
                                         std::vector<double> values,
                                         bool log_feature = false);
  [[nodiscard]] static Parameter integer_range(std::string name, std::int64_t lo,
                                               std::int64_t hi);
  [[nodiscard]] static Parameter boolean(std::string name);
  [[nodiscard]] static Parameter categorical(std::string name,
                                             std::vector<std::string> labels);
  [[nodiscard]] static Parameter real(std::string name, double lo, double hi,
                                      bool log_feature = false);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ParameterKind kind() const noexcept { return kind_; }

  /// Number of distinct values; 0 for real (continuous) parameters.
  [[nodiscard]] std::uint64_t cardinality() const noexcept;

  /// Numeric value at a discrete index (discrete kinds only).
  [[nodiscard]] double value_at(std::uint64_t index) const;

  /// Index of the discrete value closest to `value`; nullopt for real
  /// parameters. Used to snap externally supplied defaults into the space.
  [[nodiscard]] std::optional<std::uint64_t> index_of(double value) const;

  /// Uniform random value (for real kinds, uniform on [lo, hi]).
  [[nodiscard]] double sample(hm::common::Rng& rng) const;

  /// Model feature for a value: normalized to [0, 1] over the parameter's
  /// range; log-scaled first when the parameter spans decades.
  [[nodiscard]] double feature(double value) const;

  /// Printable form (categorical values print their label).
  [[nodiscard]] std::string to_string(double value) const;

  [[nodiscard]] double min_value() const noexcept { return lo_; }
  [[nodiscard]] double max_value() const noexcept { return hi_; }

 private:
  Parameter() = default;

  std::string name_;
  ParameterKind kind_ = ParameterKind::kOrdinal;
  std::vector<double> values_;        ///< Ordinal value list.
  std::vector<std::string> labels_;   ///< Categorical labels.
  double lo_ = 0.0;
  double hi_ = 0.0;
  bool log_feature_ = false;
};

}  // namespace hm::hypermapper
