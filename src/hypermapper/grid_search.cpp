#include "hypermapper/grid_search.hpp"

#include <algorithm>
#include <cassert>

namespace hm::hypermapper {

std::vector<Configuration> grid_configurations(const DesignSpace& space,
                                               std::size_t levels) {
  assert(levels >= 1);
  // Per-parameter index lists: `levels` indices spread over the cardinality.
  std::vector<std::vector<std::uint64_t>> per_parameter;
  per_parameter.reserve(space.parameter_count());
  for (std::size_t p = 0; p < space.parameter_count(); ++p) {
    const std::uint64_t cardinality = space.parameter(p).cardinality();
    assert(cardinality > 0 && "grid search requires a discrete space");
    std::vector<std::uint64_t> indices;
    if (cardinality <= levels) {
      for (std::uint64_t i = 0; i < cardinality; ++i) indices.push_back(i);
    } else {
      for (std::size_t level = 0; level < levels; ++level) {
        // Even spread including both endpoints.
        const auto index = static_cast<std::uint64_t>(
            static_cast<double>(level) * static_cast<double>(cardinality - 1) /
            static_cast<double>(levels - 1) + 0.5);
        indices.push_back(index);
      }
      indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    }
    per_parameter.push_back(std::move(indices));
  }

  // Factorial product, mixed-radix over the per-parameter lists.
  std::size_t total = 1;
  for (const auto& indices : per_parameter) total *= indices.size();

  std::vector<Configuration> configs;
  configs.reserve(total);
  std::vector<std::size_t> digits(space.parameter_count(), 0);
  for (std::size_t i = 0; i < total; ++i) {
    Configuration config(space.parameter_count());
    for (std::size_t p = 0; p < space.parameter_count(); ++p) {
      config[p] = space.parameter(p).value_at(per_parameter[p][digits[p]]);
    }
    configs.push_back(std::move(config));
    // Increment mixed-radix counter (last parameter fastest).
    for (std::size_t p = space.parameter_count(); p-- > 0;) {
      if (++digits[p] < per_parameter[p].size()) break;
      digits[p] = 0;
    }
  }
  return configs;
}

OptimizationResult grid_search(const DesignSpace& space, Evaluator& evaluator,
                               const GridSearchConfig& config) {
  std::vector<Configuration> configs = grid_configurations(space, config.levels);
  if (config.max_evaluations != 0 && configs.size() > config.max_evaluations) {
    // Deterministic uniform stride over the subgrid.
    std::vector<Configuration> strided;
    strided.reserve(config.max_evaluations);
    const double step = static_cast<double>(configs.size()) /
                        static_cast<double>(config.max_evaluations);
    for (std::size_t i = 0; i < config.max_evaluations; ++i) {
      strided.push_back(configs[static_cast<std::size_t>(
          static_cast<double>(i) * step)]);
    }
    configs = std::move(strided);
  }

  OptimizationResult result;
  result.samples.reserve(configs.size());
  for (const Configuration& configuration : configs) {
    SampleRecord record;
    record.config = configuration;
    record.objectives = evaluator.evaluate(configuration);
    record.iteration = 0;
    result.samples.push_back(std::move(record));
  }

  std::vector<Objectives> points;
  points.reserve(result.samples.size());
  for (const SampleRecord& sample : result.samples) {
    points.push_back(sample.objectives);
  }
  result.pareto = pareto_indices(points);
  result.random_phase_pareto = result.pareto;
  IterationStats stats;
  stats.new_samples = result.samples.size();
  stats.measured_front_size = result.pareto.size();
  result.iterations.push_back(stats);
  return result;
}

}  // namespace hm::hypermapper
