// Grid-search baseline: the tuning method the paper attributes to the
// ElasticFusion developers ("they used a brute force grid search to tune
// the parameters"). Evaluates a coarse factorial subgrid of the design
// space — `levels` values per parameter, spread evenly over each
// parameter's range — under an evaluation budget, so it can be compared
// with HyperMapper at equal cost.
#pragma once

#include <cstddef>
#include <vector>

#include "hypermapper/evaluator.hpp"
#include "hypermapper/optimizer.hpp"
#include "hypermapper/space.hpp"

namespace hm::hypermapper {

struct GridSearchConfig {
  /// Values per parameter (first/last value always included). Parameters
  /// with fewer distinct values use all of them.
  std::size_t levels = 3;
  /// Hard cap on evaluations; 0 = evaluate the whole subgrid. When the
  /// subgrid exceeds the budget, a deterministic uniform stride over the
  /// subgrid is evaluated instead (grid search with a coarser sweep, as a
  /// human would do).
  std::size_t max_evaluations = 0;
};

/// Runs the factorial sweep and returns the same result structure as the
/// optimizer (all samples carry iteration 0, like a pure sampling phase).
[[nodiscard]] OptimizationResult grid_search(const DesignSpace& space,
                                             Evaluator& evaluator,
                                             const GridSearchConfig& config = {});

/// The subgrid a grid search with `levels` levels would evaluate (exposed
/// for tests and for budget accounting before running anything).
[[nodiscard]] std::vector<Configuration> grid_configurations(
    const DesignSpace& space, std::size_t levels);

}  // namespace hm::hypermapper
