#include "hypermapper/resilient_evaluator.hpp"

#include <chrono>
#include <cmath>
#include <cstring>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace hm::hypermapper {
namespace {

/// Global-registry handles resolved once; the registry owns the metrics, so
/// the pointers stay valid for the process lifetime.
struct EvaluationMetrics {
  hm::common::Counter* outcomes[4] = {};  ///< Indexed by EvaluationStatus.
  hm::common::Counter* retries = nullptr;
  hm::common::Histogram* seconds = nullptr;
};

const EvaluationMetrics& evaluation_metrics() {
  static const EvaluationMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    EvaluationMetrics resolved;
    for (const EvaluationStatus status :
         {EvaluationStatus::kOk, EvaluationStatus::kInvalidObjectives,
          EvaluationStatus::kException, EvaluationStatus::kTimeout}) {
      resolved.outcomes[static_cast<std::size_t>(status)] =
          &registry.counter("hm_eval_outcomes_total", "status",
                            to_string(status));
    }
    resolved.retries = &registry.counter("hm_eval_retries_total");
    resolved.seconds = &registry.histogram("hm_eval_seconds");
    return resolved;
  }();
  return metrics;
}

}  // namespace

const char* to_string(EvaluationStatus status) {
  switch (status) {
    case EvaluationStatus::kOk:
      return "ok";
    case EvaluationStatus::kInvalidObjectives:
      return "invalid_objectives";
    case EvaluationStatus::kException:
      return "exception";
    case EvaluationStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

std::uint64_t config_hash(const Configuration& config) noexcept {
  std::uint64_t state = 0x6b79c35d4f1a9e2bULL + config.size();
  std::uint64_t hash = 0;
  for (const double value : config) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    state ^= bits;
    hash ^= hm::common::splitmix64_next(state);
  }
  return hash;
}

std::optional<std::string> validate_objectives(
    std::span<const double> objectives, std::size_t expected_arity,
    bool require_non_negative) {
  if (objectives.size() != expected_arity) {
    return "objective arity " + std::to_string(objectives.size()) +
           " != expected " + std::to_string(expected_arity);
  }
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (!std::isfinite(objectives[i])) {
      return "objective " + std::to_string(i) + " is not finite";
    }
    if (require_non_negative && objectives[i] < 0.0) {
      return "objective " + std::to_string(i) + " is negative (" +
             std::to_string(objectives[i]) + ")";
    }
  }
  return std::nullopt;
}

ResilientEvaluator::ResilientEvaluator(Evaluator& inner, ResiliencePolicy policy)
    : inner_(inner), policy_(policy) {}

std::vector<double> ResilientEvaluator::evaluate(const Configuration& config) {
  EvaluationOutcome outcome = evaluate_outcome(config);
  if (!outcome.ok()) {
    throw EvaluationError(
        std::string(to_string(outcome.status)) + ": " + outcome.message,
        /*transient=*/false);
  }
  return std::move(outcome.objectives);
}

EvaluationOutcome ResilientEvaluator::evaluate_outcome(
    const Configuration& config) {
  using Clock = std::chrono::steady_clock;
  EvaluationOutcome outcome;
  const std::size_t max_attempts = policy_.max_attempts < 1
                                       ? std::size_t{1}
                                       : policy_.max_attempts;
  // The nonce stream is a function of (retry seed, configuration, attempt)
  // only, so reruns with the same seed retry identically regardless of
  // thread scheduling.
  std::uint64_t nonce_state = policy_.retry_seed ^ config_hash(config);

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++outcome.attempts;
    if (attempt > 0) {
      ++retries_;
      evaluation_metrics().retries->increment();
    }
    const std::uint64_t nonce =
        attempt == 0 ? 0 : hm::common::splitmix64_next(nonce_state);
    bool transient = false;
    try {
      const hm::common::TraceSpan span("evaluate", "dse");
      // The raw clock (not Timer / TraceSpan) is load-bearing here: the
      // elapsed time feeds the kTimeout classification, which must work
      // identically in an HM_TRACE_ENABLED=0 build.
      // hm-lint: allow(no-adhoc-instrumentation) deadline classification needs the clock in trace-off builds
      const Clock::time_point start = Clock::now();
      std::vector<double> objectives =
          attempt == 0 ? inner_.evaluate(config)
                       : inner_.evaluate_retry(config, nonce);
      const double elapsed =
          // hm-lint: allow(no-adhoc-instrumentation) paired end-read of the deadline clock
          std::chrono::duration<double>(Clock::now() - start).count();
      evaluation_metrics().seconds->observe(elapsed);
      if (policy_.deadline_seconds > 0.0 &&
          elapsed > policy_.deadline_seconds) {
        outcome.status = EvaluationStatus::kTimeout;
        outcome.message = "evaluation took " + std::to_string(elapsed) +
                          " s (deadline " +
                          std::to_string(policy_.deadline_seconds) + " s)";
        transient = policy_.retry_timeouts;
      } else if (auto error =
                     validate_objectives(objectives, inner_.objective_count(),
                                         policy_.require_non_negative)) {
        outcome.status = EvaluationStatus::kInvalidObjectives;
        outcome.message = std::move(*error);
        transient = false;  // A deterministic evaluator will misbehave again.
      } else {
        outcome.status = EvaluationStatus::kOk;
        outcome.objectives = std::move(objectives);
        outcome.message.clear();
        ++ok_;
        evaluation_metrics()
            .outcomes[static_cast<std::size_t>(EvaluationStatus::kOk)]
            ->increment();
        return outcome;
      }
    } catch (const EvaluationTimeout& error) {
      // A hard (sandbox-enforced) deadline overrun: same classification
      // and retry policy as a cooperative one.
      outcome.status = EvaluationStatus::kTimeout;
      outcome.message = error.what();
      transient = policy_.retry_timeouts;
    } catch (const EvaluationError& error) {
      outcome.status = EvaluationStatus::kException;
      outcome.message = error.what();
      transient = error.transient();
    } catch (const std::exception& error) {
      outcome.status = EvaluationStatus::kException;
      outcome.message = error.what();
      transient = false;
    } catch (...) {
      outcome.status = EvaluationStatus::kException;
      outcome.message = "unknown exception";
      transient = false;
    }
    if (!transient) break;
  }

  switch (outcome.status) {
    case EvaluationStatus::kInvalidObjectives:
      ++invalid_;
      break;
    case EvaluationStatus::kException:
      ++exceptions_;
      break;
    case EvaluationStatus::kTimeout:
      ++timeouts_;
      break;
    case EvaluationStatus::kOk:
      break;
  }
  if (!outcome.ok()) {
    evaluation_metrics()
        .outcomes[static_cast<std::size_t>(outcome.status)]
        ->increment();
  }
  return outcome;
}

}  // namespace hm::hypermapper
