#include "hypermapper/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace hm::hypermapper {

namespace {

#ifndef NDEBUG
bool all_finite(std::span<const double> values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}
#endif

}  // namespace

bool dominates(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  assert(all_finite(a) && all_finite(b));
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

namespace {

/// 2-D fast path: sort by (f0 asc, f1 asc) and sweep keeping the running
/// minimum of f1. Equal-objective duplicates are all retained.
/// Precondition (asserted by the caller): all coordinates finite — a NaN
/// makes the sort comparator violate strict weak ordering.
std::vector<std::size_t> pareto_indices_2d(std::span<const Objectives> points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
    return points[a][1] < points[b][1];
  });
  std::vector<std::size_t> front;
  double best_f1 = std::numeric_limits<double>::infinity();
  double front_f0 = std::numeric_limits<double>::infinity();
  double front_f1 = std::numeric_limits<double>::infinity();
  for (const std::size_t i : order) {
    const double f0 = points[i][0];
    const double f1 = points[i][1];
    if (f1 < best_f1) {
      best_f1 = f1;
      front.push_back(i);
      front_f0 = f0;
      front_f1 = f1;
    } else if (f1 == best_f1 && f0 == front_f0 && f1 == front_f1) {
      front.push_back(i);  // Exact duplicate of the last front point.
    }
  }
  return front;
}

}  // namespace

std::vector<std::size_t> pareto_indices(std::span<const Objectives> points) {
  if (points.empty()) return {};
#ifndef NDEBUG
  for (const Objectives& p : points) assert(all_finite(p));
#endif
  const std::size_t dims = points.front().size();
  if (dims == 2) return pareto_indices_2d(points);

  // General case: O(n^2) pairwise dominance.
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return points[a][0] < points[b][0];
  });
  return front;
}

double hypervolume_2d(std::span<const Objectives> front,
                      const Objectives& reference) {
  assert(reference.size() == 2);
  if (front.empty()) return 0.0;
  // Clip to the reference box, reduce to the non-dominated staircase, and
  // sum the rectangles between consecutive steps.
  std::vector<Objectives> clipped;
  clipped.reserve(front.size());
  for (const Objectives& p : front) {
    assert(p.size() == 2);
    if (p[0] < reference[0] && p[1] < reference[1]) clipped.push_back(p);
  }
  if (clipped.empty()) return 0.0;
  const std::vector<std::size_t> stair = pareto_indices(clipped);
  double volume = 0.0;
  double prev_f1 = reference[1];
  for (const std::size_t i : stair) {
    const double width = reference[0] - clipped[i][0];
    const double height = prev_f1 - clipped[i][1];
    if (height > 0.0) {
      volume += width * height;
      prev_f1 = clipped[i][1];
    }
  }
  return volume;
}

bool ParetoArchive::insert(Objectives point, std::size_t tag) {
  for (const double v : point) {
    if (!std::isfinite(v)) {
      ++rejected_;  // NaN/Inf can never participate in dominance.
      return false;
    }
  }
  for (const Entry& entry : entries_) {
    if (dominates(entry.point, point)) return false;
  }
  // The newcomer is non-dominated: evict everything it dominates.
  std::erase_if(entries_, [&](const Entry& entry) {
    return dominates(point, entry.point);
  });
  entries_.push_back(Entry{std::move(point), tag});
  return true;
}

std::vector<std::size_t> ParetoArchive::indices() const {
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double fa = entries_[a].point.empty() ? 0.0 : entries_[a].point[0];
    const double fb = entries_[b].point.empty() ? 0.0 : entries_[b].point[0];
    if (fa != fb) return fa < fb;
    return entries_[a].tag < entries_[b].tag;
  });
  std::vector<std::size_t> tags;
  tags.reserve(order.size());
  for (const std::size_t i : order) tags.push_back(entries_[i].tag);
  return tags;
}

double pareto_hypervolume_2d(std::span<const Objectives> points,
                             const Objectives& reference) {
  const std::vector<std::size_t> front = pareto_indices(points);
  std::vector<Objectives> front_points;
  front_points.reserve(front.size());
  for (const std::size_t i : front) front_points.push_back(points[i]);
  return hypervolume_2d(front_points, reference);
}

}  // namespace hm::hypermapper
