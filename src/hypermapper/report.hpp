// Result analysis and persistence helpers shared by the experiment
// binaries: valid-configuration counting against an accuracy limit (the
// paper's 5 cm ATE band), best-point selection, and CSV export of sample
// sets and Pareto fronts.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "hypermapper/optimizer.hpp"

namespace hm::hypermapper {

/// Counts samples whose objective `objective_index` is strictly below
/// `limit`, split by phase (iteration 0 vs. > 0).
struct ValidCounts {
  std::size_t random_phase = 0;
  std::size_t active_phase = 0;
  [[nodiscard]] std::size_t total() const { return random_phase + active_phase; }
};
[[nodiscard]] ValidCounts count_valid(const OptimizationResult& result,
                                      std::size_t objective_index, double limit);

/// Index (into result.samples) of the sample minimizing objective
/// `minimize_index` among samples with objective `constraint_index` <
/// `constraint_limit`. nullopt if no sample satisfies the constraint.
[[nodiscard]] std::optional<std::size_t> best_under_constraint(
    const OptimizationResult& result, std::size_t minimize_index,
    std::size_t constraint_index, double constraint_limit);

/// Index of the sample minimizing the given objective unconditionally.
[[nodiscard]] std::optional<std::size_t> best_objective(
    const OptimizationResult& result, std::size_t objective_index);

/// Pareto front restricted to the given sample subset (e.g. only the random
/// phase), as indices into result.samples.
[[nodiscard]] std::vector<std::size_t> front_of_phase(
    const OptimizationResult& result, bool random_phase_only);

/// Serializes all samples as CSV: one column per parameter (by name), one
/// per objective (named by `objective_names`), plus `iteration`.
[[nodiscard]] hm::common::CsvTable samples_to_csv(
    const DesignSpace& space, const OptimizationResult& result,
    const std::vector<std::string>& objective_names);

/// Serializes only the front rows (same schema, no iteration column).
[[nodiscard]] hm::common::CsvTable front_to_csv(
    const DesignSpace& space, const OptimizationResult& result,
    const std::vector<std::string>& objective_names);

/// Reconstructs the configurations of a front CSV produced by front_to_csv.
/// Rows that fail to parse are skipped.
[[nodiscard]] std::vector<Configuration> front_from_csv(
    const DesignSpace& space, const hm::common::CsvTable& table);

/// Serializes the quarantine list: one column per parameter, plus `status`
/// (failure class), `message`, `iteration`, and `attempts` — the run report
/// of everything that failed and why.
[[nodiscard]] hm::common::CsvTable quarantine_to_csv(
    const DesignSpace& space, const OptimizationResult& result);

}  // namespace hm::hypermapper
