// Deterministic fault injection for the evaluation-supervision layer: wraps
// any Evaluator and corrupts a seeded, per-configuration subset of its
// evaluations (throw, NaN objectives, wrong arity, slow evaluation). The
// schedule is a pure function of (seed, configuration), so a DSE run over a
// faulty evaluator is bit-identical across reruns even when evaluations are
// executed in parallel or retried. An explicit call-index schedule is also
// supported for "throw on the nth call" unit tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hypermapper/evaluator.hpp"

namespace hm::hypermapper {

/// Seeded failure schedule. The per-class rates partition [0, 1): a
/// configuration whose unit-interval hash lands in a class's band gets that
/// fault on every evaluation (permanent classes) or until retried with a
/// non-zero nonce (transient exceptions). Rates must sum to <= 1.
struct FaultSchedule {
  double exception_rate = 0.0;
  /// Fraction of injected exceptions that are transient: they carry
  /// EvaluationError::transient() == true and vanish on a retry with a
  /// non-zero nonce (deterministic recovery).
  double transient_fraction = 0.0;
  double nan_rate = 0.0;          ///< One objective becomes NaN.
  double wrong_arity_rate = 0.0;  ///< One objective too many.
  double slow_rate = 0.0;         ///< Evaluation sleeps slow_seconds.
  double slow_seconds = 0.05;
  /// 1-based call indices (across evaluate() and evaluate_retry()) that
  /// throw a transient EvaluationError regardless of the configuration.
  std::vector<std::size_t> throw_on_calls;
  std::uint64_t seed = 0xfa17ULL;
};

class FaultInjectingEvaluator final : public Evaluator {
 public:
  FaultInjectingEvaluator(Evaluator& inner, FaultSchedule schedule = {});

  [[nodiscard]] std::size_t objective_count() const override {
    return inner_.objective_count();
  }
  [[nodiscard]] bool thread_safe() const override {
    return inner_.thread_safe();
  }

  [[nodiscard]] std::vector<double> evaluate(
      const Configuration& config) override;
  [[nodiscard]] std::vector<double> evaluate_retry(
      const Configuration& config, std::uint64_t retry_nonce) override;

  /// True if the schedule injects any fault for this configuration.
  [[nodiscard]] bool faulty(const Configuration& config) const;

  [[nodiscard]] std::size_t call_count() const noexcept { return calls_; }
  [[nodiscard]] std::size_t injected_exceptions() const noexcept {
    return thrown_;
  }
  [[nodiscard]] std::size_t injected_nans() const noexcept { return nans_; }
  [[nodiscard]] std::size_t injected_wrong_arity() const noexcept {
    return wrong_arity_;
  }
  [[nodiscard]] std::size_t injected_slow() const noexcept { return slow_; }

 private:
  enum class Fault { kNone, kException, kNan, kWrongArity, kSlow };
  struct Decision {
    Fault fault = Fault::kNone;
    bool transient = false;
    std::uint64_t detail = 0;  ///< Secondary hash (e.g. which objective).
  };
  [[nodiscard]] Decision decide(const Configuration& config) const;
  [[nodiscard]] std::vector<double> evaluate_impl(const Configuration& config,
                                                  std::uint64_t retry_nonce);

  Evaluator& inner_;
  FaultSchedule schedule_;
  std::atomic<std::size_t> calls_{0};
  std::atomic<std::size_t> thrown_{0};
  std::atomic<std::size_t> nans_{0};
  std::atomic<std::size_t> wrong_arity_{0};
  std::atomic<std::size_t> slow_{0};
};

}  // namespace hm::hypermapper
