// Pareto-front utilities for multi-objective minimization: dominance tests,
// non-dominated set extraction (fast 2-D sweep + general N-D), and the 2-D
// hypervolume indicator used to quantify front quality in the ablations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hm::hypermapper {

/// A point in objective space (all objectives minimized).
using Objectives = std::vector<double>;

/// True if `a` dominates `b`: a <= b in every objective and a < b in at
/// least one. Sizes must match.
///
/// Precondition: every entry of both vectors is finite. NaN compares false
/// against everything, which silently breaks dominance (and, inside the 2-D
/// sweep's sort comparator, violates strict weak ordering — UB). Debug
/// builds assert the precondition; callers feeding measured objectives
/// should validate them first (see validate_objectives in
/// resilient_evaluator.hpp — the optimizer quarantines such samples).
[[nodiscard]] bool dominates(std::span<const double> a, std::span<const double> b);

/// Indices of the non-dominated points of `points`, sorted by the first
/// objective ascending. Duplicate objective vectors are all kept (any of
/// them may map to a distinct configuration).
///
/// Precondition: all coordinates finite (see dominates); asserted in debug
/// builds.
[[nodiscard]] std::vector<std::size_t> pareto_indices(
    std::span<const Objectives> points);

/// 2-D hypervolume (area dominated between the front and `reference`,
/// which must be dominated by every front point; points outside the
/// reference box contribute only their clipped part). Larger is better.
[[nodiscard]] double hypervolume_2d(std::span<const Objectives> front,
                                    const Objectives& reference);

/// Convenience: extracts the front of (points) and computes its hypervolume.
[[nodiscard]] double pareto_hypervolume_2d(std::span<const Objectives> points,
                                           const Objectives& reference);

/// Incremental non-dominated archive: absorbs one point at a time and keeps
/// exactly the points that `pareto_indices` over the full stream would keep
/// (duplicates of front points included — equal vectors never dominate each
/// other). Each insert costs O(front size), so absorbing a DSE batch avoids
/// the O(samples log samples) from-scratch recomputation per iteration that
/// the active-learning loop used to pay.
class ParetoArchive {
 public:
  /// Absorbs `point`, remembered under the caller-chosen `tag` (typically
  /// the sample index). Returns true if the point joins the front, false if
  /// it is dominated by an archived point and discarded. Points with any
  /// non-finite coordinate are rejected explicitly (returns false and
  /// counts them in rejected()) — they can never participate in dominance.
  bool insert(Objectives point, std::size_t tag);

  /// Number of points currently on the front.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  /// Points rejected for carrying non-finite coordinates.
  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

  /// Tags of the current front, sorted by first objective ascending (ties
  /// broken by tag) — the same presentation order as `pareto_indices`.
  [[nodiscard]] std::vector<std::size_t> indices() const;

 private:
  struct Entry {
    Objectives point;
    std::size_t tag;
  };
  std::vector<Entry> entries_;
  std::size_t rejected_ = 0;
};

}  // namespace hm::hypermapper
