#include "hypermapper/run_journal.hpp"

#include <algorithm>
#include <utility>

#include "common/checkpoint.hpp"
#include "hypermapper/resilient_evaluator.hpp"

namespace hm::hypermapper {

using hm::common::decode_double;
using hm::common::decode_fields;
using hm::common::decode_rng;
using hm::common::decode_u64;
using hm::common::encode_double;
using hm::common::encode_fields;
using hm::common::encode_rng;
using hm::common::encode_u64;

namespace {

/// Appends `values.size()` followed by each value, hex-encoded.
void push_doubles(std::vector<std::string>* fields,
                  const std::vector<double>& values) {
  fields->push_back(encode_u64(values.size()));
  for (const double v : values) fields->push_back(encode_double(v));
}

/// Reads a count-prefixed double vector starting at fields[*cursor].
[[nodiscard]] bool pull_doubles(const std::vector<std::string>& fields,
                                std::size_t* cursor,
                                std::vector<double>* values) {
  if (*cursor >= fields.size()) return false;
  const auto count = decode_u64(fields[(*cursor)++]);
  if (!count || *count > fields.size() - *cursor) return false;
  values->clear();
  values->reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto value = decode_double(fields[(*cursor)++]);
    if (!value) return false;
    values->push_back(*value);
  }
  return true;
}

[[nodiscard]] bool pull_u64(const std::vector<std::string>& fields,
                            std::size_t* cursor, std::uint64_t* value) {
  if (*cursor >= fields.size()) return false;
  const auto decoded = decode_u64(fields[(*cursor)++]);
  if (!decoded) return false;
  *value = *decoded;
  return true;
}

}  // namespace

RunFingerprint make_fingerprint(const OptimizerConfig& config,
                                const DesignSpace& space,
                                std::size_t objective_count) {
  RunFingerprint fp;
  fp.seed = config.seed;
  fp.random_samples = config.random_samples;
  fp.max_iterations = config.max_iterations;
  fp.max_samples_per_iteration = config.max_samples_per_iteration;
  fp.pool_size = config.pool_size;
  fp.exhaustive_pool = config.exhaustive_pool;
  fp.parameter_count = space.parameter_count();
  fp.objective_count = objective_count;
  fp.cardinality = space.cardinality();
  return fp;
}

std::string encode_run_record(const RunFingerprint& fp) {
  return encode_fields({encode_u64(fp.seed), encode_u64(fp.random_samples),
                        encode_u64(fp.max_iterations),
                        encode_u64(fp.max_samples_per_iteration),
                        encode_u64(fp.pool_size),
                        fp.exhaustive_pool ? "1" : "0",
                        encode_u64(fp.parameter_count),
                        encode_u64(fp.objective_count),
                        encode_u64(fp.cardinality)});
}

std::optional<RunFingerprint> decode_run_record(const std::string& payload) {
  const auto fields = decode_fields(payload);
  if (!fields || fields->size() != 9) return std::nullopt;
  RunFingerprint fp;
  std::size_t cursor = 0;
  if (!pull_u64(*fields, &cursor, &fp.seed) ||
      !pull_u64(*fields, &cursor, &fp.random_samples) ||
      !pull_u64(*fields, &cursor, &fp.max_iterations) ||
      !pull_u64(*fields, &cursor, &fp.max_samples_per_iteration) ||
      !pull_u64(*fields, &cursor, &fp.pool_size)) {
    return std::nullopt;
  }
  const std::string& exhaustive = (*fields)[cursor++];
  if (exhaustive == "1") {
    fp.exhaustive_pool = true;
  } else if (exhaustive == "0") {
    fp.exhaustive_pool = false;
  } else {
    return std::nullopt;
  }
  if (!pull_u64(*fields, &cursor, &fp.parameter_count) ||
      !pull_u64(*fields, &cursor, &fp.objective_count) ||
      !pull_u64(*fields, &cursor, &fp.cardinality)) {
    return std::nullopt;
  }
  return fp;
}

std::string encode_eval_record(std::uint64_t seq, const SampleRecord& sample) {
  std::vector<std::string> fields;
  fields.push_back(encode_u64(seq));
  fields.push_back(encode_u64(sample.iteration));
  push_doubles(&fields, sample.config);
  push_doubles(&fields, sample.objectives);
  push_doubles(&fields, sample.predicted);
  return encode_fields(fields);
}

std::optional<DecodedEval> decode_eval_record(const std::string& payload) {
  const auto fields = decode_fields(payload);
  if (!fields) return std::nullopt;
  DecodedEval decoded;
  std::size_t cursor = 0;
  std::uint64_t iteration = 0;
  if (!pull_u64(*fields, &cursor, &decoded.seq) ||
      !pull_u64(*fields, &cursor, &iteration)) {
    return std::nullopt;
  }
  decoded.sample.iteration = static_cast<std::size_t>(iteration);
  if (!pull_doubles(*fields, &cursor, &decoded.sample.config) ||
      !pull_doubles(*fields, &cursor, &decoded.sample.objectives) ||
      !pull_doubles(*fields, &cursor, &decoded.sample.predicted) ||
      cursor != fields->size()) {
    return std::nullopt;
  }
  return decoded;
}

std::string encode_fail_record(std::uint64_t seq,
                               const QuarantineRecord& record) {
  std::vector<std::string> fields;
  fields.push_back(encode_u64(seq));
  fields.push_back(encode_u64(record.iteration));
  push_doubles(&fields, record.config);
  fields.push_back(encode_u64(static_cast<std::uint64_t>(record.status)));
  fields.push_back(encode_u64(record.attempts));
  fields.push_back(record.message);
  return encode_fields(fields);
}

std::optional<DecodedFail> decode_fail_record(const std::string& payload) {
  const auto fields = decode_fields(payload);
  if (!fields) return std::nullopt;
  DecodedFail decoded;
  QuarantineRecord& record = decoded.failure;
  std::size_t cursor = 0;
  std::uint64_t iteration = 0;
  if (!pull_u64(*fields, &cursor, &decoded.seq) ||
      !pull_u64(*fields, &cursor, &iteration)) {
    return std::nullopt;
  }
  record.iteration = static_cast<std::size_t>(iteration);
  if (!pull_doubles(*fields, &cursor, &record.config)) return std::nullopt;
  std::uint64_t status = 0;
  std::uint64_t attempts = 0;
  if (!pull_u64(*fields, &cursor, &status) ||
      status > static_cast<std::uint64_t>(EvaluationStatus::kTimeout) ||
      !pull_u64(*fields, &cursor, &attempts) || cursor + 1 != fields->size()) {
    return std::nullopt;
  }
  record.status = static_cast<EvaluationStatus>(status);
  record.attempts = static_cast<std::size_t>(attempts);
  record.message = (*fields)[cursor];
  return decoded;
}

std::string encode_stat_record(const IterationStats& stats) {
  std::vector<std::string> fields;
  fields.push_back(encode_u64(stats.iteration));
  fields.push_back(encode_u64(stats.new_samples));
  fields.push_back(encode_u64(stats.failed_samples));
  fields.push_back(encode_u64(stats.predicted_front_size));
  fields.push_back(encode_u64(stats.measured_front_size));
  fields.push_back(encode_double(stats.oob_rmse_objective0));
  fields.push_back(encode_double(stats.oob_rmse_objective1));
  push_doubles(&fields, stats.prediction_error);
  return encode_fields(fields);
}

std::optional<IterationStats> decode_stat_record(const std::string& payload) {
  const auto fields = decode_fields(payload);
  if (!fields) return std::nullopt;
  IterationStats stats;
  std::size_t cursor = 0;
  std::uint64_t iteration = 0, new_samples = 0, failed = 0, predicted = 0,
                measured = 0;
  if (!pull_u64(*fields, &cursor, &iteration) ||
      !pull_u64(*fields, &cursor, &new_samples) ||
      !pull_u64(*fields, &cursor, &failed) ||
      !pull_u64(*fields, &cursor, &predicted) ||
      !pull_u64(*fields, &cursor, &measured)) {
    return std::nullopt;
  }
  stats.iteration = static_cast<std::size_t>(iteration);
  stats.new_samples = static_cast<std::size_t>(new_samples);
  stats.failed_samples = static_cast<std::size_t>(failed);
  stats.predicted_front_size = static_cast<std::size_t>(predicted);
  stats.measured_front_size = static_cast<std::size_t>(measured);
  if (cursor + 2 > fields->size()) return std::nullopt;
  const auto oob0 = decode_double((*fields)[cursor++]);
  const auto oob1 = decode_double((*fields)[cursor++]);
  if (!oob0 || !oob1) return std::nullopt;
  stats.oob_rmse_objective0 = *oob0;
  stats.oob_rmse_objective1 = *oob1;
  if (!pull_doubles(*fields, &cursor, &stats.prediction_error) ||
      cursor != fields->size()) {
    return std::nullopt;
  }
  return stats;
}

std::string encode_phase_record(std::size_t iteration,
                                const common::RngState& rng) {
  return encode_fields({encode_u64(iteration), encode_rng(rng)});
}

bool decode_phase_record(const std::string& payload, std::size_t* iteration,
                         common::RngState* rng) {
  const auto fields = decode_fields(payload);
  if (!fields || fields->size() != 2) return false;
  const auto decoded_iteration = decode_u64((*fields)[0]);
  const auto decoded_rng = decode_rng((*fields)[1]);
  if (!decoded_iteration || !decoded_rng) return false;
  *iteration = static_cast<std::size_t>(*decoded_iteration);
  *rng = *decoded_rng;
  return true;
}

std::optional<ReplayState> replay_journal(
    const common::JournalReadResult& journal, const DesignSpace& space,
    std::string* error) {
  if (!journal.usable()) {
    if (error != nullptr) {
      *error = std::string("journal not usable: ") + to_string(journal.status);
    }
    return std::nullopt;
  }
  if (journal.records.empty() || journal.records.front().type != "run") {
    if (error != nullptr) {
      *error = "journal does not start with a run record";
    }
    return std::nullopt;
  }
  const auto fingerprint = decode_run_record(journal.records.front().payload);
  if (!fingerprint) {
    if (error != nullptr) *error = "run record payload is malformed";
    return std::nullopt;
  }

  ReplayState state;
  state.fingerprint = *fingerprint;
  const bool discrete = space.cardinality() != 0;

  // Pending records accumulate until a phase boundary (or the done record)
  // commits them into the result; whatever is left pending at the end is
  // the in-flight tail. Commit order is by sequence number, not journal
  // order: after a resume the journal interleaves the crashed run's tail
  // with the resumed run's appends.
  std::vector<DecodedEval> pending_samples;
  std::vector<DecodedFail> pending_failures;
  std::vector<IterationStats> pending_stats;

  auto commit_pending = [&] {
    std::sort(pending_samples.begin(), pending_samples.end(),
              [](const DecodedEval& a, const DecodedEval& b) {
                return a.seq < b.seq;
              });
    std::sort(pending_failures.begin(), pending_failures.end(),
              [](const DecodedFail& a, const DecodedFail& b) {
                return a.seq < b.seq;
              });
    for (DecodedEval& eval : pending_samples) {
      state.result.samples.push_back(std::move(eval.sample));
    }
    for (DecodedFail& fail : pending_failures) {
      state.result.quarantine.push_back(std::move(fail.failure));
    }
    for (IterationStats& stats : pending_stats) {
      state.result.iterations.push_back(std::move(stats));
    }
    pending_samples.clear();
    pending_failures.clear();
    pending_stats.clear();
  };

  for (std::size_t i = 1; i < journal.records.size(); ++i) {
    const common::JournalRecord& record = journal.records[i];
    if (record.type == "eval") {
      auto eval = decode_eval_record(record.payload);
      if (!eval ||
          eval->sample.config.size() != state.fingerprint.parameter_count ||
          eval->sample.objectives.size() !=
              state.fingerprint.objective_count) {
        ++state.malformed_payloads;
        continue;
      }
      pending_samples.push_back(std::move(*eval));
    } else if (record.type == "fail") {
      auto fail = decode_fail_record(record.payload);
      if (!fail ||
          fail->failure.config.size() != state.fingerprint.parameter_count) {
        ++state.malformed_payloads;
        continue;
      }
      fail->failure.key = discrete ? space.key(fail->failure.config)
                                   : config_hash(fail->failure.config);
      pending_failures.push_back(std::move(*fail));
    } else if (record.type == "stat") {
      auto stats = decode_stat_record(record.payload);
      if (!stats) {
        ++state.malformed_payloads;
        continue;
      }
      pending_stats.push_back(std::move(*stats));
    } else if (record.type == "phase") {
      std::size_t iteration = 0;
      common::RngState rng;
      if (!decode_phase_record(record.payload, &iteration, &rng)) {
        ++state.malformed_payloads;
        continue;
      }
      commit_pending();
      state.has_phase = true;
      state.completed_iteration = iteration;
      state.rng = rng;
    } else if (record.type == "done") {
      commit_pending();
      state.done = true;
    } else if (record.type == "run") {
      // A second run record would mean two runs interleaved in one file;
      // treat it as damage rather than guessing.
      ++state.malformed_payloads;
    } else {
      // Unknown record type: forward-compatibility, skip.
      ++state.malformed_payloads;
    }
  }

  // The uncommitted tail is the iteration that was in flight at the crash:
  // resume re-runs that iteration and consults this map instead of
  // re-evaluating configurations whose outcomes already reached the disk.
  // Pending stats are dropped — the resumed iteration recomputes them.
  for (DecodedEval& eval : pending_samples) {
    const std::uint64_t key = discrete ? space.key(eval.sample.config)
                                       : config_hash(eval.sample.config);
    ReplayEntry entry;
    entry.ok = true;
    entry.objectives = eval.sample.objectives;
    entry.sample = std::move(eval.sample);
    state.tail.emplace(key, std::move(entry));
  }
  for (DecodedFail& fail : pending_failures) {
    const std::uint64_t key = fail.failure.key;
    ReplayEntry entry;
    entry.ok = false;
    entry.failure = std::move(fail.failure);
    state.tail.emplace(key, std::move(entry));
  }
  return state;
}

}  // namespace hm::hypermapper
