#include "hypermapper/space.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace hm::hypermapper {

std::size_t DesignSpace::add(Parameter parameter) {
  assert(!index_of(parameter.name()).has_value() && "duplicate parameter name");
  parameters_.push_back(std::move(parameter));
  return parameters_.size() - 1;
}

std::optional<std::size_t> DesignSpace::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i].name() == name) return i;
  }
  return std::nullopt;
}

std::uint64_t DesignSpace::cardinality() const noexcept {
  std::uint64_t product = 1;
  for (const Parameter& p : parameters_) {
    const std::uint64_t c = p.cardinality();
    if (c == 0) return 0;
    if (product > std::numeric_limits<std::uint64_t>::max() / c) return 0;
    product *= c;
  }
  return product;
}

Configuration DesignSpace::at(std::uint64_t i) const {
  assert(cardinality() > 0 && i < cardinality());
  Configuration config(parameters_.size());
  // Mixed-radix decode, least significant digit = last parameter.
  for (std::size_t p = parameters_.size(); p-- > 0;) {
    const std::uint64_t c = parameters_[p].cardinality();
    config[p] = parameters_[p].value_at(i % c);
    i /= c;
  }
  return config;
}

std::uint64_t DesignSpace::key(const Configuration& config) const {
  assert(config.size() == parameters_.size());
  std::uint64_t index = 0;
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    const std::uint64_t c = parameters_[p].cardinality();
    assert(c > 0 && "key() requires a fully discrete space");
    const auto digit = parameters_[p].index_of(config[p]);
    index = index * c + digit.value();
  }
  return index;
}

Configuration DesignSpace::sample(hm::common::Rng& rng) const {
  Configuration config(parameters_.size());
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    config[p] = parameters_[p].sample(rng);
  }
  return config;
}

std::vector<Configuration> DesignSpace::sample_distinct(
    std::size_t count, hm::common::Rng& rng) const {
  std::vector<Configuration> out;
  const std::uint64_t total = cardinality();

  if (total == 0) {
    // Continuous space: duplicates have probability ~0; sample directly.
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(sample(rng));
    return out;
  }

  if (count >= total) {
    // The whole space fits in the request; enumerate it.
    out.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t i = 0; i < total; ++i) out.push_back(at(i));
    return out;
  }

  // Rejection sampling with a seen-set; for dense requests (> half the
  // space) sample indices to skip instead, to bound the rejection rate.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  out.reserve(count);
  if (count * 2 <= total) {
    while (out.size() < count) {
      const Configuration config = sample(rng);
      if (seen.insert(key(config)).second) out.push_back(config);
    }
  } else {
    const std::uint64_t skip = total - count;
    std::unordered_set<std::uint64_t> skipped;
    skipped.reserve(static_cast<std::size_t>(skip) * 2);
    while (skipped.size() < skip) skipped.insert(rng.uniform_index(total));
    for (std::uint64_t i = 0; i < total; ++i) {
      if (!skipped.contains(i)) out.push_back(at(i));
    }
    // The enumerate-minus-skips path is uniform but ordered; shuffle so
    // callers that truncate still see a uniform subset.
    hm::common::shuffle(out.begin(), out.end(), rng);
  }
  return out;
}

std::vector<double> DesignSpace::features(const Configuration& config) const {
  assert(config.size() == parameters_.size());
  std::vector<double> out(parameters_.size());
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    out[p] = parameters_[p].feature(config[p]);
  }
  return out;
}

Configuration DesignSpace::snap(const Configuration& config) const {
  assert(config.size() == parameters_.size());
  Configuration out(config.size());
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    const auto index = parameters_[p].index_of(config[p]);
    out[p] = index ? parameters_[p].value_at(*index) : config[p];
  }
  return out;
}

std::string DesignSpace::to_string(const Configuration& config) const {
  std::string out;
  for (std::size_t p = 0; p < parameters_.size(); ++p) {
    if (p != 0) out += ", ";
    out += parameters_[p].name();
    out += '=';
    out += parameters_[p].to_string(config[p]);
  }
  return out;
}

}  // namespace hm::hypermapper
