#include "hypermapper/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "hypermapper/run_journal.hpp"

namespace hm::hypermapper {
namespace {

/// Global-registry handles for the DSE loop, resolved once.
struct OptimizerMetrics {
  hm::common::Counter* iterations = nullptr;
  hm::common::Counter* surrogate_fits = nullptr;
  hm::common::Counter* quarantined = nullptr;
  hm::common::Gauge* front_size = nullptr;
  hm::common::Histogram* iteration_seconds = nullptr;
};

const OptimizerMetrics& optimizer_metrics() {
  static const OptimizerMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    OptimizerMetrics resolved;
    resolved.iterations = &registry.counter("hm_optimizer_iterations_total");
    resolved.surrogate_fits =
        &registry.counter("hm_optimizer_surrogate_fits_total");
    resolved.quarantined = &registry.counter("hm_quarantine_total");
    resolved.front_size = &registry.gauge("hm_optimizer_front_size");
    resolved.iteration_seconds =
        &registry.histogram("hm_optimizer_iteration_seconds");
    return resolved;
  }();
  return metrics;
}

}  // namespace

std::size_t OptimizationResult::random_sample_count() const {
  std::size_t count = 0;
  for (const SampleRecord& s : samples) count += s.iteration == 0 ? 1 : 0;
  return count;
}

std::size_t OptimizationResult::active_sample_count() const {
  return samples.size() - random_sample_count();
}

std::size_t OptimizationResult::failure_count(EvaluationStatus status) const {
  std::size_t count = 0;
  for (const QuarantineRecord& q : quarantine) count += q.status == status ? 1 : 0;
  return count;
}

Optimizer::Optimizer(const DesignSpace& space, Evaluator& evaluator,
                     OptimizerConfig config, hm::common::ThreadPool* pool)
    : space_(space),
      evaluator_(evaluator),
      config_(config),
      supervisor_(evaluator, config.resilience),
      pool_(pool) {}

std::vector<Configuration> Optimizer::make_pool(hm::common::Rng& rng) const {
  const std::uint64_t total = space_.cardinality();
  const bool enumerate_all =
      total != 0 && (total <= config_.pool_size ||
                     (config_.exhaustive_pool && total <= (1ULL << 24)));
  if (enumerate_all) {
    std::vector<Configuration> pool;
    pool.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t i = 0; i < total; ++i) pool.push_back(space_.at(i));
    return pool;
  }
  return space_.sample_distinct(config_.pool_size, rng);
}

std::uint64_t Optimizer::replay_key(const Configuration& config) const {
  return space_.cardinality() != 0 ? space_.key(config) : config_hash(config);
}

void Optimizer::journal_append(const char* type, const std::string& payload) {
  if (journal_ == nullptr || !journal_started_) return;
  if (!journal_->append(type, payload)) {
    hm::common::log_warn() << "journal append to " << journal_->path()
                           << " failed; journaling disabled for this run";
    journal_ = nullptr;
  }
}

void Optimizer::evaluate_batch(const std::vector<Configuration>& configs,
                               std::size_t iteration, OptimizationResult& result,
                               const std::vector<Objectives>* predicted) {
  // Evaluate into a scratch vector first (supervised, so a failing
  // configuration yields a typed outcome instead of throwing out of the
  // pool), then merge sequentially in configuration order: the sample and
  // quarantine streams stay deterministic under any thread scheduling.
  //
  // On resume, outcomes the crashed run already journaled are replayed
  // from the tail map instead of re-evaluated; cooperative cancellation
  // skips evaluations that have not started (skipped slots are simply not
  // merged — a resumed run picks them up through the journal tail).
  const hm::common::TraceSpan batch_span("evaluate_batch", "dse");
  std::vector<EvaluationOutcome> outcomes(configs.size());
  std::vector<unsigned char> completed(configs.size(), 0);
  std::vector<unsigned char> replayed(configs.size(), 0);
  auto evaluate_one = [&](std::size_t i) {
    if (replay_ != nullptr && replay_->contains(replay_key(configs[i]))) {
      replayed[i] = 1;
      completed[i] = 1;
      return;
    }
    if (cancel_requested()) return;
    outcomes[i] = supervisor_.evaluate_outcome(configs[i]);
    completed[i] = 1;
  };
  if (pool_ != nullptr && evaluator_.thread_safe()) {
    pool_->parallel_for(0, configs.size(), evaluate_one);
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) evaluate_one(i);
  }

  const bool discrete = space_.cardinality() != 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!completed[i]) {
      result.interrupted = true;
      continue;
    }
    if (replayed[i]) {
      // Journaled by the crashed run: take the record verbatim (it is
      // already on disk, so it is not re-journaled either).
      const ReplayEntry& entry = replay_->at(replay_key(configs[i]));
      if (entry.ok) {
        result.samples.push_back(entry.sample);
      } else {
        result.quarantine.push_back(entry.failure);
      }
      continue;
    }
    EvaluationOutcome& outcome = outcomes[i];
    if (outcome.ok()) {
      SampleRecord record;
      record.config = configs[i];
      record.objectives = std::move(outcome.objectives);
      record.iteration = iteration;
      if (predicted != nullptr) record.predicted = (*predicted)[i];
      journal_append("eval", encode_eval_record(result.samples.size(), record));
      result.samples.push_back(std::move(record));
    } else {
      QuarantineRecord record;
      record.config = configs[i];
      record.key = discrete ? space_.key(configs[i]) : config_hash(configs[i]);
      record.status = outcome.status;
      record.message = std::move(outcome.message);
      record.iteration = iteration;
      record.attempts = outcome.attempts;
      journal_append("fail",
                     encode_fail_record(result.quarantine.size(), record));
      result.quarantine.push_back(std::move(record));
      optimizer_metrics().quarantined->increment();
    }
  }
}

std::vector<std::size_t> Optimizer::measured_front(
    const OptimizationResult& result) const {
  std::vector<Objectives> points;
  points.reserve(result.samples.size());
  for (const SampleRecord& s : result.samples) points.push_back(s.objectives);
  return pareto_indices(points);
}

OptimizationResult Optimizer::run_random_only() {
  hm::common::Rng rng(config_.seed);
  OptimizationResult result;
  const std::vector<Configuration> bootstrap =
      space_.sample_distinct(config_.random_samples, rng);
  evaluate_batch(bootstrap, 0, result);
  result.random_phase_pareto = measured_front(result);
  result.pareto = result.random_phase_pareto;
  return result;
}

void Optimizer::finalize_fronts(OptimizationResult& result) const {
  // Identical insert sequence to the incremental archives in
  // run_active_learning, so the rebuilt fronts match byte for byte.
  ParetoArchive archive;
  ParetoArchive bootstrap_archive;
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    archive.insert(result.samples[i].objectives, i);
    if (result.samples[i].iteration == 0) {
      bootstrap_archive.insert(result.samples[i].objectives, i);
    }
  }
  result.pareto = archive.indices();
  result.random_phase_pareto = bootstrap_archive.indices();
}

void Optimizer::compact_journal(const OptimizationResult& result,
                                bool has_phase, std::size_t iteration,
                                const hm::common::RngState& rng) {
  if (journal_ == nullptr || !journal_started_) return;
  // The snapshot IS the compacted journal: the canonical record sequence
  // reconstructs the exact in-memory state, so compaction just rewrites
  // the file to that normal form (atomically — a crash mid-compaction
  // leaves either the old journal or the new one).
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(result.samples.size() + result.quarantine.size() +
                  result.iterations.size() + 2);
  records.emplace_back(
      "run", encode_run_record(make_fingerprint(config_, space_,
                                                evaluator_.objective_count())));
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    records.emplace_back("eval", encode_eval_record(i, result.samples[i]));
  }
  for (std::size_t i = 0; i < result.quarantine.size(); ++i) {
    records.emplace_back("fail", encode_fail_record(i, result.quarantine[i]));
  }
  for (const IterationStats& stats : result.iterations) {
    records.emplace_back("stat", encode_stat_record(stats));
  }
  if (has_phase) {
    records.emplace_back("phase", encode_phase_record(iteration, rng));
  }
  std::string error;
  if (!journal_->rewrite(records, &error)) {
    hm::common::log_warn() << "journal compaction failed (" << error
                           << "); journaling disabled for this run";
    journal_ = nullptr;
  }
}

void Optimizer::journal_phase_boundary(const OptimizationResult& result,
                                       std::size_t iteration,
                                       const hm::common::Rng& rng) {
  if (journal_ == nullptr || !journal_started_) return;
  const hm::common::RngState state = rng.save_state();
  // The phase record commits everything journaled so far and captures the
  // RNG stream exactly where the next iteration's pool draw will resume.
  journal_append("stat", encode_stat_record(result.iterations.back()));
  journal_append("phase", encode_phase_record(iteration, state));
  if (checkpoint_policy_.every_phases != 0 &&
      ++phases_since_compaction_ >= checkpoint_policy_.every_phases) {
    phases_since_compaction_ = 0;
    compact_journal(result, true, iteration, state);
  }
}

OptimizationResult Optimizer::run() {
  hm::common::Rng rng(config_.seed);
  OptimizationResult result;
  journal_started_ = journal_ != nullptr;
  journal_append("run",
                 encode_run_record(make_fingerprint(
                     config_, space_, evaluator_.objective_count())));

  // --- Bootstrap: rs distinct random samples, evaluated on "hardware". ---
  {
    const hm::common::TraceSpan bootstrap_span("bootstrap", "dse");
    const std::vector<Configuration> bootstrap =
        space_.sample_distinct(config_.random_samples, rng);
    evaluate_batch(bootstrap, 0, result);
  }
  run_active_learning(result, rng);
  journal_started_ = false;
  return result;
}

std::optional<OptimizationResult> Optimizer::resume(
    const std::string& journal_path) {
  const hm::common::JournalReadResult journal =
      hm::common::read_journal(journal_path);
  std::string error;
  auto replay = replay_journal(journal, space_, &error);
  if (!replay) {
    hm::common::log_warn() << "cannot resume from " << journal_path << ": "
                           << error;
    return std::nullopt;
  }
  if (!(replay->fingerprint ==
        make_fingerprint(config_, space_, evaluator_.objective_count()))) {
    hm::common::log_warn() << "cannot resume from " << journal_path
                           << ": journal was written by a different run "
                              "configuration";
    return std::nullopt;
  }
  if (!journal.defects.empty()) {
    hm::common::log_warn() << "journal " << journal_path << " recovered with "
                           << journal.defects.size()
                           << " damaged region(s); first damage at byte "
                           << journal.first_damaged_offset << " (line "
                           << journal.defects.front().line << ", "
                           << to_string(journal.defects.front().damage) << ")";
  }
  if (replay->malformed_payloads != 0) {
    hm::common::log_warn() << "journal " << journal_path << ": skipped "
                           << replay->malformed_payloads
                           << " record(s) with malformed payloads";
  }

  OptimizationResult result = std::move(replay->result);
  if (replay->done) {
    // The run had already finished; reconstruct the fronts and return.
    // Critically, no pool is drawn and no RNG advanced — re-running the
    // loop here would diverge from the uninterrupted run.
    finalize_fronts(result);
    return result;
  }

  journal_started_ = journal_ != nullptr;
  // Normalize the on-disk journal before appending to it: drops the
  // damaged tail (if any) and re-frames the replayed state canonically.
  compact_journal(result, replay->has_phase, replay->completed_iteration,
                  replay->rng);

  replay_ = &replay->tail;
  hm::common::Rng rng(config_.seed);
  if (!replay->has_phase) {
    // Crash during the bootstrap phase: the same bootstrap set is re-drawn
    // from the seed, and the journaled tail short-circuits the
    // evaluations that already completed.
    const std::vector<Configuration> bootstrap =
        space_.sample_distinct(config_.random_samples, rng);
    evaluate_batch(bootstrap, 0, result);
    run_active_learning(result, rng);
  } else {
    rng.restore_state(replay->rng);
    run_active_learning(result, rng, replay->completed_iteration + 1);
  }
  replay_ = nullptr;
  journal_started_ = false;
  return result;
}

OptimizationResult Optimizer::run_seeded(std::span<const SampleRecord> seed) {
  hm::common::Rng rng(config_.seed);
  OptimizationResult result;
  result.samples.reserve(seed.size());
  const bool discrete = space_.cardinality() != 0;
  for (const SampleRecord& record : seed) {
    const Configuration snapped = space_.snap(record.config);
    // Seed samples come from files and earlier runs: validate them like any
    // other evaluation instead of trusting them (a malformed CSV row must
    // not poison the surrogate or the Pareto sweep).
    if (auto error = validate_objectives(
            record.objectives, evaluator_.objective_count(),
            config_.resilience.require_non_negative)) {
      QuarantineRecord rejected;
      rejected.config = snapped;
      rejected.key = discrete ? space_.key(snapped) : config_hash(snapped);
      rejected.status = EvaluationStatus::kInvalidObjectives;
      rejected.message = "seed sample rejected: " + std::move(*error);
      rejected.iteration = 0;
      result.quarantine.push_back(std::move(rejected));
      continue;
    }
    SampleRecord copy;
    copy.config = snapped;
    copy.objectives = record.objectives;
    copy.iteration = 0;
    result.samples.push_back(std::move(copy));
  }
  run_active_learning(result, rng);
  return result;
}

void Optimizer::run_active_learning(OptimizationResult& result,
                                    hm::common::Rng& rng,
                                    std::size_t start_iteration) {
  // Incremental measured front: absorb each batch as it is evaluated instead
  // of recomputing the front from every sample on every iteration.
  ParetoArchive archive;
  ParetoArchive bootstrap_archive;
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    archive.insert(result.samples[i].objectives, i);
    if (result.samples[i].iteration == 0) {
      bootstrap_archive.insert(result.samples[i].objectives, i);
    }
  }
  result.random_phase_pareto = bootstrap_archive.indices();

  if (result.interrupted) {
    // Cooperative shutdown hit during the bootstrap: no phase record is
    // written (the journal tail already holds every completed evaluation),
    // and the partial result still gets usable fronts.
    result.pareto = archive.indices();
    return;
  }

  std::unordered_set<std::uint64_t> evaluated_keys;
  const bool discrete = space_.cardinality() != 0;
  if (discrete) {
    for (const SampleRecord& s : result.samples) {
      evaluated_keys.insert(space_.key(s.config));
    }
    // Quarantined configurations count as spent: active learning must never
    // re-propose a configuration that already failed.
    for (const QuarantineRecord& q : result.quarantine) {
      evaluated_keys.insert(q.key);
    }
  }

  const std::size_t n_objectives = evaluator_.objective_count();
  hm::rf::FeatureMatrix train_x(space_.parameter_count());
  std::vector<std::vector<double>> train_y(n_objectives);

  auto rebuild_training_set = [&] {
    train_x.clear();
    for (auto& column : train_y) column.clear();
    train_x.reserve_rows(result.samples.size());
    for (const SampleRecord& s : result.samples) {
      train_x.add_row(space_.features(s.config));
      for (std::size_t o = 0; o < n_objectives; ++o) {
        train_y[o].push_back(s.objectives[o]);
      }
    }
  };

  if (result.iterations.empty()) {
    // Fresh run (or resume of a crash inside the bootstrap): the bootstrap
    // phase just completed, so record its stats and its phase boundary.
    IterationStats stats;
    stats.iteration = 0;
    stats.new_samples = result.samples.size();
    stats.failed_samples = result.quarantine.size();
    stats.measured_front_size = archive.size();
    result.iterations.push_back(stats);
    if (progress_) progress_(stats);
    journal_phase_boundary(result, 0, rng);
  }

  // --- Active learning loop. ---
  std::vector<hm::rf::RandomForest> models;
  for (std::size_t iteration = start_iteration;
       iteration <= config_.max_iterations; ++iteration) {
    if (result.samples.empty()) break;  // Nothing to train a surrogate on.
    if (cancel_requested()) {
      result.interrupted = true;
      break;
    }
    const hm::common::TraceSpan iteration_span(
        "iteration", "dse", optimizer_metrics().iteration_seconds);
    optimizer_metrics().iterations->increment();
    rebuild_training_set();

    // Fit one forest per objective (M_ATE and M_run in the paper).
    models.clear();
    {
      const hm::common::TraceSpan fit_span("surrogate_fit", "dse");
      for (std::size_t o = 0; o < n_objectives; ++o) {
        hm::rf::ForestConfig forest_config = config_.forest;
        forest_config.seed =
            config_.seed ^ (0x9e3779b97f4a7c15ULL * (iteration * n_objectives + o + 1));
        hm::rf::RandomForest model(forest_config);
        model.fit(train_x, train_y[o], pool_);
        models.push_back(std::move(model));
        optimizer_metrics().surrogate_fits->increment();
      }
    }

    // Predict both objectives over the pool and extract the predicted front.
    const std::vector<Configuration> pool_configs = make_pool(rng);
    hm::rf::FeatureMatrix pool_x(space_.parameter_count());
    pool_x.reserve_rows(pool_configs.size());
    for (const Configuration& c : pool_configs) pool_x.add_row(space_.features(c));

    std::vector<std::vector<double>> predictions(n_objectives);
    {
      const hm::common::TraceSpan predict_span("surrogate_predict", "dse");
      for (std::size_t o = 0; o < n_objectives; ++o) {
        predictions[o] = models[o].predict_batch(pool_x, pool_);
      }
    }
    std::vector<Objectives> predicted(pool_configs.size(),
                                      Objectives(n_objectives));
    for (std::size_t i = 0; i < pool_configs.size(); ++i) {
      for (std::size_t o = 0; o < n_objectives; ++o) {
        predicted[i][o] = predictions[o][i];
      }
    }
    const std::vector<std::size_t> predicted_front = pareto_indices(predicted);

    // P - Xout: predicted-front configurations not measured yet.
    std::vector<Configuration> to_evaluate;
    std::vector<Objectives> to_evaluate_predicted;
    for (const std::size_t i : predicted_front) {
      if (to_evaluate.size() >= config_.max_samples_per_iteration) break;
      if (discrete) {
        const std::uint64_t k = space_.key(pool_configs[i]);
        if (evaluated_keys.contains(k)) continue;
        evaluated_keys.insert(k);
      }
      to_evaluate.push_back(pool_configs[i]);
      to_evaluate_predicted.push_back(predicted[i]);
    }

    IterationStats stats;
    stats.iteration = iteration;
    stats.predicted_front_size = predicted_front.size();
    if (n_objectives >= 1) {
      stats.oob_rmse_objective0 = models[0].oob_rmse(train_x, train_y[0], pool_);
    }
    if (n_objectives >= 2) {
      stats.oob_rmse_objective1 = models[1].oob_rmse(train_x, train_y[1], pool_);
    }

    if (to_evaluate.empty()) {
      // Predicted front fully measured: Algorithm 1's termination condition.
      // No phase record here — this iteration consumed the RNG (pool draw),
      // so committing it as a resumable boundary would let a resumed run
      // draw a *different* pool for an iteration the original never ran.
      // The "done" record after the loop marks the run as finished instead.
      stats.measured_front_size = archive.size();
      result.iterations.push_back(stats);
      if (progress_) progress_(stats);
      journal_append("stat", encode_stat_record(stats));
      break;
    }

    const std::size_t batch_base = result.samples.size();
    const std::size_t quarantine_base = result.quarantine.size();
    evaluate_batch(to_evaluate, iteration, result, &to_evaluate_predicted);
    if (result.interrupted) break;  // Partial batch: no stats, no boundary.
    stats.new_samples = result.samples.size() - batch_base;
    stats.failed_samples = result.quarantine.size() - quarantine_base;
    for (std::size_t i = batch_base; i < result.samples.size(); ++i) {
      archive.insert(result.samples[i].objectives, i);
    }

    // Prediction/measurement discrepancy of this iteration's batch. Samples
    // measured as exactly 0 cannot contribute a relative error, so they are
    // excluded from both the numerator and the denominator.
    stats.prediction_error.assign(n_objectives, 0.0);
    std::vector<std::size_t> contributing(n_objectives, 0);
    for (std::size_t i = batch_base; i < result.samples.size(); ++i) {
      const SampleRecord& record = result.samples[i];
      for (std::size_t o = 0; o < n_objectives; ++o) {
        const double measured = record.objectives[o];
        // hm-lint: allow(no-float-equality) exact zero guards the relative-error divisor
        if (measured != 0.0) {
          stats.prediction_error[o] +=
              std::abs(record.predicted[o] - measured) / std::abs(measured);
          ++contributing[o];
        }
      }
    }
    for (std::size_t o = 0; o < n_objectives; ++o) {
      stats.prediction_error[o] =
          contributing[o] == 0
              ? 0.0
              : stats.prediction_error[o] / static_cast<double>(contributing[o]);
    }

    stats.measured_front_size = archive.size();
    optimizer_metrics().front_size->set(
        static_cast<double>(stats.measured_front_size));
    result.iterations.push_back(stats);
    if (progress_) progress_(stats);
    journal_phase_boundary(result, iteration, rng);
    hm::common::log_debug() << "iteration " << iteration << ": +"
                            << to_evaluate.size() << " samples, front "
                            << stats.measured_front_size;
  }

  result.pareto = archive.indices();
  if (!result.interrupted) journal_append("done", "");
}

}  // namespace hm::hypermapper
