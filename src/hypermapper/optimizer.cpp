#include "hypermapper/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "hypermapper/run_journal.hpp"

namespace hm::hypermapper {
namespace {

/// Global-registry handles for the DSE loop, resolved once.
struct OptimizerMetrics {
  hm::common::Counter* iterations = nullptr;
  hm::common::Counter* surrogate_fits = nullptr;
  hm::common::Counter* quarantined = nullptr;
  hm::common::Gauge* front_size = nullptr;
  hm::common::Histogram* iteration_seconds = nullptr;
};

const OptimizerMetrics& optimizer_metrics() {
  static const OptimizerMetrics metrics = [] {
    auto& registry = hm::common::MetricsRegistry::global();
    OptimizerMetrics resolved;
    resolved.iterations = &registry.counter("hm_optimizer_iterations_total");
    resolved.surrogate_fits =
        &registry.counter("hm_optimizer_surrogate_fits_total");
    resolved.quarantined = &registry.counter("hm_quarantine_total");
    resolved.front_size = &registry.gauge("hm_optimizer_front_size");
    resolved.iteration_seconds =
        &registry.histogram("hm_optimizer_iteration_seconds");
    return resolved;
  }();
  return metrics;
}

}  // namespace

std::size_t OptimizationResult::random_sample_count() const {
  std::size_t count = 0;
  for (const SampleRecord& s : samples) count += s.iteration == 0 ? 1 : 0;
  return count;
}

std::size_t OptimizationResult::active_sample_count() const {
  return samples.size() - random_sample_count();
}

std::size_t OptimizationResult::failure_count(EvaluationStatus status) const {
  std::size_t count = 0;
  for (const QuarantineRecord& q : quarantine) count += q.status == status ? 1 : 0;
  return count;
}

Optimizer::Optimizer(const DesignSpace& space, Evaluator& evaluator,
                     OptimizerConfig config, hm::common::ThreadPool* pool)
    : space_(space),
      evaluator_(evaluator),
      config_(config),
      supervisor_(evaluator, config.resilience),
      pool_(pool) {}

std::vector<Configuration> Optimizer::make_pool(hm::common::Rng& rng) const {
  const std::uint64_t total = space_.cardinality();
  const bool enumerate_all =
      total != 0 && (total <= config_.pool_size ||
                     (config_.exhaustive_pool && total <= (1ULL << 24)));
  if (enumerate_all) {
    std::vector<Configuration> pool;
    pool.reserve(static_cast<std::size_t>(total));
    for (std::uint64_t i = 0; i < total; ++i) pool.push_back(space_.at(i));
    return pool;
  }
  return space_.sample_distinct(config_.pool_size, rng);
}

std::uint64_t Optimizer::replay_key(const Configuration& config) const {
  return space_.cardinality() != 0 ? space_.key(config) : config_hash(config);
}

void Optimizer::journal_append(const char* type, const std::string& payload) {
  if (journal_ == nullptr || !journal_started_) return;
  if (!journal_->append(type, payload)) {
    hm::common::log_warn() << "journal append to " << journal_->path()
                           << " failed; journaling disabled for this run";
    journal_ = nullptr;
  }
}

std::vector<std::size_t> Optimizer::measured_front(
    const OptimizationResult& result) const {
  std::vector<Objectives> points;
  points.reserve(result.samples.size());
  for (const SampleRecord& s : result.samples) points.push_back(s.objectives);
  return pareto_indices(points);
}

void Optimizer::finalize_fronts(OptimizationResult& result) const {
  // Identical insert sequence to the incremental archives in AsyncRun, so
  // the rebuilt fronts match byte for byte.
  ParetoArchive archive;
  ParetoArchive bootstrap_archive;
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    archive.insert(result.samples[i].objectives, i);
    if (result.samples[i].iteration == 0) {
      bootstrap_archive.insert(result.samples[i].objectives, i);
    }
  }
  result.pareto = archive.indices();
  result.random_phase_pareto = bootstrap_archive.indices();
}

void Optimizer::compact_journal(const OptimizationResult& result,
                                bool has_phase, std::size_t iteration,
                                const hm::common::RngState& rng) {
  if (journal_ == nullptr || !journal_started_) return;
  // The snapshot IS the compacted journal: the canonical record sequence
  // reconstructs the exact in-memory state, so compaction just rewrites
  // the file to that normal form (atomically — a crash mid-compaction
  // leaves either the old journal or the new one).
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(result.samples.size() + result.quarantine.size() +
                  result.iterations.size() + 2);
  records.emplace_back(
      "run", encode_run_record(make_fingerprint(config_, space_,
                                                evaluator_.objective_count())));
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    records.emplace_back("eval", encode_eval_record(i, result.samples[i]));
  }
  for (std::size_t i = 0; i < result.quarantine.size(); ++i) {
    records.emplace_back("fail", encode_fail_record(i, result.quarantine[i]));
  }
  for (const IterationStats& stats : result.iterations) {
    records.emplace_back("stat", encode_stat_record(stats));
  }
  if (has_phase) {
    records.emplace_back("phase", encode_phase_record(iteration, rng));
  }
  std::string error;
  if (!journal_->rewrite(records, &error)) {
    hm::common::log_warn() << "journal compaction failed (" << error
                           << "); journaling disabled for this run";
    journal_ = nullptr;
  }
}

void Optimizer::journal_phase_boundary(const OptimizationResult& result,
                                       std::size_t iteration,
                                       const hm::common::Rng& rng) {
  if (journal_ == nullptr || !journal_started_) return;
  const hm::common::RngState state = rng.save_state();
  // The phase record commits everything journaled so far and captures the
  // RNG stream exactly where the next iteration's pool draw will resume.
  journal_append("stat", encode_stat_record(result.iterations.back()));
  journal_append("phase", encode_phase_record(iteration, state));
  if (checkpoint_policy_.every_phases != 0 &&
      ++phases_since_compaction_ >= checkpoint_policy_.every_phases) {
    phases_since_compaction_ = 0;
    compact_journal(result, true, iteration, state);
  }
}

// --- AsyncRun: the batch-async search engine. ---

Optimizer::AsyncRun::AsyncRun(Optimizer& owner, Start start)
    : opt_(owner),
      result_(std::move(start.initial)),
      rng_(owner.config_.seed),
      replay_(std::move(start.replay)),
      iteration_(start.start_iteration),
      record_stats_(start.record_stats),
      bootstrap_only_(start.bootstrap_only),
      already_finished_(start.already_finished) {
  opt_.journal_started_ = start.journaling && opt_.journal_ != nullptr;
  if (start.has_rng_state) rng_.restore_state(start.rng_state);
  // Seed the incremental fronts from whatever the run starts with (replayed
  // prefix, seed samples) — the same insert sequence the synchronous loop
  // performed at active-learning entry.
  for (std::size_t i = 0; i < result_.samples.size(); ++i) {
    archive_.insert(result_.samples[i].objectives, i);
    if (result_.samples[i].iteration == 0) {
      bootstrap_archive_.insert(result_.samples[i].objectives, i);
    }
  }
  if (already_finished_) {
    phase_ = Phase::kDone;
  } else if (start.needs_bootstrap) {
    phase_ = Phase::kBootstrap;
  } else {
    phase_ = Phase::kActive;
    enter_active();
  }
}

Optimizer::AsyncRun::~AsyncRun() {
  // A session abandoned mid-run must not leave the optimizer claiming an
  // open journal transaction.
  opt_.journal_started_ = false;
}

void Optimizer::AsyncRun::enter_active() {
  result_.random_phase_pareto = bootstrap_archive_.indices();
  if (result_.interrupted) {
    // Cooperative shutdown hit during the bootstrap: no phase record is
    // written (the journal tail already holds every completed evaluation),
    // and the partial result still gets usable fronts at finish().
    phase_ = Phase::kDone;
    return;
  }
  evaluated_keys_.clear();
  if (opt_.space_.cardinality() != 0) {
    for (const SampleRecord& s : result_.samples) {
      evaluated_keys_.insert(opt_.space_.key(s.config));
    }
    // Quarantined configurations count as spent: active learning must never
    // re-propose a configuration that already failed.
    for (const QuarantineRecord& q : result_.quarantine) {
      evaluated_keys_.insert(q.key);
    }
  }
  if (record_stats_ && result_.iterations.empty()) {
    // Fresh run (or resume of a crash inside the bootstrap): the bootstrap
    // phase just completed, so record its stats and its phase boundary.
    IterationStats stats;
    stats.iteration = 0;
    stats.new_samples = result_.samples.size();
    stats.failed_samples = result_.quarantine.size();
    stats.measured_front_size = archive_.size();
    result_.iterations.push_back(stats);
    if (opt_.progress_) opt_.progress_(stats);
    opt_.journal_phase_boundary(result_, 0, rng_);
  }
}

void Optimizer::AsyncRun::open_batch(std::vector<Configuration> configs,
                                     std::vector<Objectives> predicted,
                                     std::size_t iteration) {
  batch_configs_ = std::move(configs);
  batch_predicted_ = std::move(predicted);
  batch_iteration_ = iteration;
  std::lock_guard<std::mutex> lock(batch_mutex_);
  outcomes_.assign(batch_configs_.size(), EvaluationOutcome{});
  slot_state_.assign(batch_configs_.size(), kSlotPending);
  unresolved_ = 0;
  for (std::size_t i = 0; i < batch_configs_.size(); ++i) {
    if (replay_ != nullptr &&
        replay_->tail.contains(opt_.replay_key(batch_configs_[i]))) {
      // Journaled by the crashed run: resolved up front, never dispatched.
      slot_state_[i] = kSlotReplayed;
    } else {
      ++unresolved_;
    }
  }
  batch_open_ = true;
}

BatchProposal Optimizer::AsyncRun::make_proposal() const {
  BatchProposal proposal;
  proposal.iteration = batch_iteration_;
  proposal.configs = batch_configs_;
  proposal.predicted = batch_predicted_;
  std::lock_guard<std::mutex> lock(batch_mutex_);
  for (std::size_t i = 0; i < slot_state_.size(); ++i) {
    if (slot_state_[i] == kSlotPending) proposal.pending.push_back(i);
  }
  return proposal;
}

void Optimizer::AsyncRun::ingest(std::size_t slot, EvaluationOutcome outcome) {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  if (slot >= slot_state_.size() || slot_state_[slot] != kSlotPending) return;
  outcomes_[slot] = std::move(outcome);
  slot_state_[slot] = kSlotIngested;
  --unresolved_;
}

void Optimizer::AsyncRun::skip(std::size_t slot) {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  if (slot >= slot_state_.size() || slot_state_[slot] != kSlotPending) return;
  slot_state_[slot] = kSlotSkipped;
  --unresolved_;
}

bool Optimizer::AsyncRun::batch_resolved() const {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  return !batch_open_ || unresolved_ == 0;
}

std::size_t Optimizer::AsyncRun::outstanding() const {
  std::lock_guard<std::mutex> lock(batch_mutex_);
  return batch_open_ ? unresolved_ : 0;
}

void Optimizer::AsyncRun::commit_batch() {
  // Claim the slot arrays under the lock, then merge from locals: commits
  // run on the driver thread while late ingest() calls (there should be
  // none — but a shedding server must tolerate them) see an empty batch.
  std::vector<EvaluationOutcome> outcomes;
  std::vector<unsigned char> slots;
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    batch_open_ = false;
    outcomes = std::move(outcomes_);
    slots = std::move(slot_state_);
    outcomes_.clear();
    slot_state_.clear();
    unresolved_ = 0;
  }

  // Merge sequentially in slot order: the sample and quarantine streams
  // (and therefore the journal's seq order) are deterministic no matter
  // what order, or from which threads, the outcomes landed.
  const bool discrete = opt_.space_.cardinality() != 0;
  const std::size_t batch_base = result_.samples.size();
  const std::size_t quarantine_base = result_.quarantine.size();
  bool incomplete = false;
  for (std::size_t i = 0; i < batch_configs_.size(); ++i) {
    switch (slots[i]) {
      case kSlotReplayed: {
        // Journaled by the crashed run: take the record verbatim (it is
        // already on disk, so it is not re-journaled either).
        const ReplayEntry& entry =
            replay_->tail.at(opt_.replay_key(batch_configs_[i]));
        if (entry.ok) {
          result_.samples.push_back(entry.sample);
        } else {
          result_.quarantine.push_back(entry.failure);
        }
        break;
      }
      case kSlotIngested: {
        EvaluationOutcome& outcome = outcomes[i];
        if (outcome.ok()) {
          SampleRecord record;
          record.config = batch_configs_[i];
          record.objectives = std::move(outcome.objectives);
          record.iteration = batch_iteration_;
          if (!batch_predicted_.empty()) record.predicted = batch_predicted_[i];
          opt_.journal_append(
              "eval", encode_eval_record(result_.samples.size(), record));
          result_.samples.push_back(std::move(record));
        } else {
          QuarantineRecord record;
          record.config = batch_configs_[i];
          record.key = discrete ? opt_.space_.key(batch_configs_[i])
                                : config_hash(batch_configs_[i]);
          record.status = outcome.status;
          record.message = std::move(outcome.message);
          record.iteration = batch_iteration_;
          record.attempts = outcome.attempts;
          opt_.journal_append(
              "fail", encode_fail_record(result_.quarantine.size(), record));
          result_.quarantine.push_back(std::move(record));
          optimizer_metrics().quarantined->increment();
        }
        break;
      }
      default:  // kSlotPending / kSlotSkipped: never evaluated.
        incomplete = true;
        break;
    }
  }

  if (batch_iteration_ == 0) {
    // Bootstrap commit. The fronts absorb every merged sample (even on an
    // interrupted bootstrap, matching the synchronous driver).
    for (std::size_t i = batch_base; i < result_.samples.size(); ++i) {
      archive_.insert(result_.samples[i].objectives, i);
      bootstrap_archive_.insert(result_.samples[i].objectives, i);
    }
    if (incomplete) result_.interrupted = true;
    if (bootstrap_only_) {
      phase_ = Phase::kDone;
      return;
    }
    phase_ = Phase::kActive;
    enter_active();
    return;
  }

  // Active-learning commit.
  if (incomplete) {
    // Partial batch: no stats, no boundary. Completed slots are already
    // journaled; a resumed run picks the rest up through the journal tail.
    result_.interrupted = true;
    phase_ = Phase::kDone;
    return;
  }
  IterationStats stats = std::move(pending_stats_);
  stats.new_samples = result_.samples.size() - batch_base;
  stats.failed_samples = result_.quarantine.size() - quarantine_base;
  for (std::size_t i = batch_base; i < result_.samples.size(); ++i) {
    archive_.insert(result_.samples[i].objectives, i);
  }

  // Prediction/measurement discrepancy of this iteration's batch. Samples
  // measured as exactly 0 cannot contribute a relative error, so they are
  // excluded from both the numerator and the denominator.
  const std::size_t n_objectives = opt_.evaluator_.objective_count();
  stats.prediction_error.assign(n_objectives, 0.0);
  std::vector<std::size_t> contributing(n_objectives, 0);
  for (std::size_t i = batch_base; i < result_.samples.size(); ++i) {
    const SampleRecord& record = result_.samples[i];
    for (std::size_t o = 0; o < n_objectives; ++o) {
      const double measured = record.objectives[o];
      // hm-lint: allow(no-float-equality) exact zero guards the relative-error divisor
      if (measured != 0.0) {
        stats.prediction_error[o] +=
            std::abs(record.predicted[o] - measured) / std::abs(measured);
        ++contributing[o];
      }
    }
  }
  for (std::size_t o = 0; o < n_objectives; ++o) {
    stats.prediction_error[o] =
        contributing[o] == 0
            ? 0.0
            : stats.prediction_error[o] / static_cast<double>(contributing[o]);
  }

  stats.measured_front_size = archive_.size();
  optimizer_metrics().front_size->set(
      static_cast<double>(stats.measured_front_size));
  result_.iterations.push_back(stats);
  if (opt_.progress_) opt_.progress_(stats);
  opt_.journal_phase_boundary(result_, batch_iteration_, rng_);
  hm::common::log_debug() << "iteration " << batch_iteration_ << ": +"
                          << batch_configs_.size() << " samples, front "
                          << stats.measured_front_size;
  iteration_ = batch_iteration_ + 1;
  if (iteration_ > opt_.config_.max_iterations) phase_ = Phase::kDone;
}

std::optional<BatchProposal> Optimizer::AsyncRun::propose_bootstrap() {
  const hm::common::TraceSpan bootstrap_span("bootstrap", "dse");
  open_batch(opt_.space_.sample_distinct(opt_.config_.random_samples, rng_),
             {}, 0);
  return make_proposal();
}

std::optional<BatchProposal> Optimizer::AsyncRun::propose_iteration() {
  // Budget exhausted (a resumed run can start past the budget when the
  // crash landed after the final boundary) or nothing to train on.
  if (iteration_ > opt_.config_.max_iterations || result_.samples.empty()) {
    phase_ = Phase::kDone;
    return std::nullopt;
  }
  const std::size_t iteration = iteration_;
  const hm::common::TraceSpan iteration_span(
      "iteration", "dse", optimizer_metrics().iteration_seconds);
  optimizer_metrics().iterations->increment();

  const std::size_t n_objectives = opt_.evaluator_.objective_count();
  hm::rf::FeatureMatrix train_x(opt_.space_.parameter_count());
  std::vector<std::vector<double>> train_y(n_objectives);
  train_x.reserve_rows(result_.samples.size());
  for (const SampleRecord& s : result_.samples) {
    train_x.add_row(opt_.space_.features(s.config));
    for (std::size_t o = 0; o < n_objectives; ++o) {
      train_y[o].push_back(s.objectives[o]);
    }
  }

  // Fit one forest per objective (M_ATE and M_run in the paper).
  std::vector<hm::rf::RandomForest> models;
  {
    const hm::common::TraceSpan fit_span("surrogate_fit", "dse");
    for (std::size_t o = 0; o < n_objectives; ++o) {
      hm::rf::ForestConfig forest_config = opt_.config_.forest;
      forest_config.seed =
          opt_.config_.seed ^
          (0x9e3779b97f4a7c15ULL * (iteration * n_objectives + o + 1));
      hm::rf::RandomForest model(forest_config);
      model.fit(train_x, train_y[o], opt_.pool_);
      models.push_back(std::move(model));
      optimizer_metrics().surrogate_fits->increment();
    }
  }

  // Predict both objectives over the pool and extract the predicted front.
  const std::vector<Configuration> pool_configs = opt_.make_pool(rng_);
  hm::rf::FeatureMatrix pool_x(opt_.space_.parameter_count());
  pool_x.reserve_rows(pool_configs.size());
  for (const Configuration& c : pool_configs) {
    pool_x.add_row(opt_.space_.features(c));
  }

  std::vector<std::vector<double>> predictions(n_objectives);
  {
    const hm::common::TraceSpan predict_span("surrogate_predict", "dse");
    for (std::size_t o = 0; o < n_objectives; ++o) {
      predictions[o] = models[o].predict_batch(pool_x, opt_.pool_);
    }
  }
  std::vector<Objectives> predicted(pool_configs.size(),
                                    Objectives(n_objectives));
  for (std::size_t i = 0; i < pool_configs.size(); ++i) {
    for (std::size_t o = 0; o < n_objectives; ++o) {
      predicted[i][o] = predictions[o][i];
    }
  }
  const std::vector<std::size_t> predicted_front = pareto_indices(predicted);

  // P - Xout: predicted-front configurations not measured yet.
  const bool discrete = opt_.space_.cardinality() != 0;
  std::vector<Configuration> to_evaluate;
  std::vector<Objectives> to_evaluate_predicted;
  for (const std::size_t i : predicted_front) {
    if (to_evaluate.size() >= opt_.config_.max_samples_per_iteration) break;
    if (discrete) {
      const std::uint64_t k = opt_.space_.key(pool_configs[i]);
      if (evaluated_keys_.contains(k)) continue;
      evaluated_keys_.insert(k);
    }
    to_evaluate.push_back(pool_configs[i]);
    to_evaluate_predicted.push_back(predicted[i]);
  }

  pending_stats_ = IterationStats{};
  pending_stats_.iteration = iteration;
  pending_stats_.predicted_front_size = predicted_front.size();
  if (n_objectives >= 1) {
    pending_stats_.oob_rmse_objective0 =
        models[0].oob_rmse(train_x, train_y[0], opt_.pool_);
  }
  if (n_objectives >= 2) {
    pending_stats_.oob_rmse_objective1 =
        models[1].oob_rmse(train_x, train_y[1], opt_.pool_);
  }

  if (to_evaluate.empty()) {
    // Predicted front fully measured: Algorithm 1's termination condition.
    // No phase record here — this iteration consumed the RNG (pool draw),
    // so committing it as a resumable boundary would let a resumed run
    // draw a *different* pool for an iteration the original never ran.
    // The "done" record at finish() marks the run as finished instead.
    pending_stats_.measured_front_size = archive_.size();
    result_.iterations.push_back(pending_stats_);
    if (opt_.progress_) opt_.progress_(pending_stats_);
    opt_.journal_append("stat", encode_stat_record(pending_stats_));
    phase_ = Phase::kDone;
    return std::nullopt;
  }

  open_batch(std::move(to_evaluate), std::move(to_evaluate_predicted),
             iteration);
  return make_proposal();
}

std::optional<BatchProposal> Optimizer::AsyncRun::next_batch() {
  if (batch_open_) commit_batch();
  switch (phase_) {
    case Phase::kBootstrap:
      return propose_bootstrap();
    case Phase::kActive:
      return propose_iteration();
    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

void Optimizer::AsyncRun::interrupt() {
  if (finished_) return;
  if (batch_open_) commit_batch();
  if (phase_ == Phase::kDone) return;  // Run completed anyway — not interrupted.
  if (phase_ == Phase::kBootstrap) {
    // Stopped before the bootstrap batch was even proposed.
    result_.random_phase_pareto = bootstrap_archive_.indices();
  }
  result_.interrupted = true;
  phase_ = Phase::kDone;
}

OptimizationResult Optimizer::AsyncRun::finish() {
  if (!finished_) {
    if (batch_open_ || phase_ != Phase::kDone) interrupt();
    finished_ = true;
    if (!already_finished_) {
      result_.pareto = archive_.indices();
      if (!result_.interrupted) opt_.journal_append("done", "");
    }
    opt_.journal_started_ = false;
  }
  return std::move(result_);
}

// --- Synchronous drivers over AsyncRun. ---

void Optimizer::drive(AsyncRun& session) {
  while (true) {
    // Loop-top cancellation: an open batch commits normally (stats, phase
    // boundary) before the run is marked interrupted, exactly like the
    // synchronous loop's iteration-top probe did.
    if (cancel_requested()) {
      session.interrupt();
      return;
    }
    std::optional<BatchProposal> batch = session.next_batch();
    if (!batch) return;
    const hm::common::TraceSpan batch_span("evaluate_batch", "dse");
    auto evaluate_one = [&](std::size_t j) {
      const std::size_t slot = batch->pending[j];
      if (cancel_requested()) {
        session.skip(slot);
        return;
      }
      session.ingest(slot, supervisor_.evaluate_outcome(batch->configs[slot]));
    };
    if (pool_ != nullptr && evaluator_.thread_safe()) {
      pool_->parallel_for(0, batch->pending.size(), evaluate_one);
    } else {
      for (std::size_t j = 0; j < batch->pending.size(); ++j) {
        evaluate_one(j);
      }
    }
  }
}

std::unique_ptr<Optimizer::AsyncRun> Optimizer::start_async() {
  journal_started_ = journal_ != nullptr;
  journal_append("run",
                 encode_run_record(make_fingerprint(
                     config_, space_, evaluator_.objective_count())));
  AsyncRun::Start start;
  start.journaling = true;
  return std::unique_ptr<AsyncRun>(new AsyncRun(*this, std::move(start)));
}

std::unique_ptr<Optimizer::AsyncRun> Optimizer::resume_async(
    const std::string& journal_path) {
  const hm::common::JournalReadResult journal =
      hm::common::read_journal(journal_path);
  std::string error;
  auto replay = replay_journal(journal, space_, &error);
  if (!replay) {
    hm::common::log_warn() << "cannot resume from " << journal_path << ": "
                           << error;
    return nullptr;
  }
  if (!(replay->fingerprint ==
        make_fingerprint(config_, space_, evaluator_.objective_count()))) {
    hm::common::log_warn() << "cannot resume from " << journal_path
                           << ": journal was written by a different run "
                              "configuration";
    return nullptr;
  }
  if (!journal.defects.empty()) {
    hm::common::log_warn() << "journal " << journal_path << " recovered with "
                           << journal.defects.size()
                           << " damaged region(s); first damage at byte "
                           << journal.first_damaged_offset << " (line "
                           << journal.defects.front().line << ", "
                           << to_string(journal.defects.front().damage) << ")";
  }
  if (replay->malformed_payloads != 0) {
    hm::common::log_warn() << "journal " << journal_path << ": skipped "
                           << replay->malformed_payloads
                           << " record(s) with malformed payloads";
  }

  AsyncRun::Start start;
  start.initial = std::move(replay->result);
  if (replay->done) {
    // The run had already finished; reconstruct the fronts and hand back an
    // immediately-done session. Critically, no pool is drawn and no RNG
    // advanced — re-running the loop here would diverge from the
    // uninterrupted run.
    finalize_fronts(start.initial);
    start.already_finished = true;
    return std::unique_ptr<AsyncRun>(new AsyncRun(*this, std::move(start)));
  }

  journal_started_ = journal_ != nullptr;
  // Normalize the on-disk journal before appending to it: drops the
  // damaged tail (if any) and re-frames the replayed state canonically.
  compact_journal(start.initial, replay->has_phase,
                  replay->completed_iteration, replay->rng);

  start.journaling = true;
  if (replay->has_phase) {
    start.needs_bootstrap = false;
    start.start_iteration = replay->completed_iteration + 1;
    start.has_rng_state = true;
    start.rng_state = replay->rng;
  } else {
    // Crash during the bootstrap phase: the same bootstrap set is re-drawn
    // from the seed, and the journaled tail short-circuits the evaluations
    // that already completed.
    start.needs_bootstrap = true;
  }
  start.replay = std::make_unique<ReplayState>(std::move(*replay));
  return std::unique_ptr<AsyncRun>(new AsyncRun(*this, std::move(start)));
}

OptimizationResult Optimizer::run() {
  std::unique_ptr<AsyncRun> session = start_async();
  drive(*session);
  return session->finish();
}

std::optional<OptimizationResult> Optimizer::resume(
    const std::string& journal_path) {
  std::unique_ptr<AsyncRun> session = resume_async(journal_path);
  if (session == nullptr) return std::nullopt;
  drive(*session);
  return session->finish();
}

OptimizationResult Optimizer::run_random_only() {
  AsyncRun::Start start;
  start.record_stats = false;
  start.bootstrap_only = true;
  AsyncRun session(*this, std::move(start));
  drive(session);
  OptimizationResult result = session.finish();
  result.random_phase_pareto = measured_front(result);
  result.pareto = result.random_phase_pareto;
  return result;
}

OptimizationResult Optimizer::run_seeded(std::span<const SampleRecord> seed) {
  OptimizationResult initial;
  initial.samples.reserve(seed.size());
  const bool discrete = space_.cardinality() != 0;
  for (const SampleRecord& record : seed) {
    const Configuration snapped = space_.snap(record.config);
    // Seed samples come from files and earlier runs: validate them like any
    // other evaluation instead of trusting them (a malformed CSV row must
    // not poison the surrogate or the Pareto sweep).
    if (auto error = validate_objectives(
            record.objectives, evaluator_.objective_count(),
            config_.resilience.require_non_negative)) {
      QuarantineRecord rejected;
      rejected.config = snapped;
      rejected.key = discrete ? space_.key(snapped) : config_hash(snapped);
      rejected.status = EvaluationStatus::kInvalidObjectives;
      rejected.message = "seed sample rejected: " + std::move(*error);
      rejected.iteration = 0;
      initial.quarantine.push_back(std::move(rejected));
      continue;
    }
    SampleRecord copy;
    copy.config = snapped;
    copy.objectives = record.objectives;
    copy.iteration = 0;
    initial.samples.push_back(std::move(copy));
  }
  AsyncRun::Start start;
  start.initial = std::move(initial);
  start.needs_bootstrap = false;
  AsyncRun session(*this, std::move(start));
  drive(session);
  return session.finish();
}

}  // namespace hm::hypermapper
