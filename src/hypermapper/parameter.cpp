#include "hypermapper/parameter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/csv.hpp"

namespace hm::hypermapper {

Parameter Parameter::ordinal(std::string name, std::vector<double> values,
                             bool log_feature) {
  assert(!values.empty());
  assert(std::is_sorted(values.begin(), values.end()));
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParameterKind::kOrdinal;
  p.values_ = std::move(values);
  p.lo_ = p.values_.front();
  p.hi_ = p.values_.back();
  p.log_feature_ = log_feature && p.lo_ > 0.0;
  return p;
}

Parameter Parameter::integer_range(std::string name, std::int64_t lo,
                                   std::int64_t hi) {
  assert(lo <= hi);
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParameterKind::kInteger;
  p.lo_ = static_cast<double>(lo);
  p.hi_ = static_cast<double>(hi);
  return p;
}

Parameter Parameter::boolean(std::string name) {
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParameterKind::kBoolean;
  p.lo_ = 0.0;
  p.hi_ = 1.0;
  return p;
}

Parameter Parameter::categorical(std::string name,
                                 std::vector<std::string> labels) {
  assert(!labels.empty());
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParameterKind::kCategorical;
  p.labels_ = std::move(labels);
  p.lo_ = 0.0;
  p.hi_ = static_cast<double>(p.labels_.size() - 1);
  return p;
}

Parameter Parameter::real(std::string name, double lo, double hi,
                          bool log_feature) {
  assert(lo < hi);
  Parameter p;
  p.name_ = std::move(name);
  p.kind_ = ParameterKind::kReal;
  p.lo_ = lo;
  p.hi_ = hi;
  p.log_feature_ = log_feature && lo > 0.0;
  return p;
}

std::uint64_t Parameter::cardinality() const noexcept {
  switch (kind_) {
    case ParameterKind::kOrdinal:
      return values_.size();
    case ParameterKind::kInteger:
      return static_cast<std::uint64_t>(hi_ - lo_) + 1;
    case ParameterKind::kBoolean:
      return 2;
    case ParameterKind::kCategorical:
      return labels_.size();
    case ParameterKind::kReal:
      return 0;
  }
  return 0;
}

double Parameter::value_at(std::uint64_t index) const {
  assert(kind_ != ParameterKind::kReal);
  assert(index < cardinality());
  switch (kind_) {
    case ParameterKind::kOrdinal:
      return values_[index];
    case ParameterKind::kInteger:
      return lo_ + static_cast<double>(index);
    case ParameterKind::kBoolean:
    case ParameterKind::kCategorical:
      return static_cast<double>(index);
    case ParameterKind::kReal:
      break;
  }
  return 0.0;
}

std::optional<std::uint64_t> Parameter::index_of(double value) const {
  const std::uint64_t n = cardinality();
  if (n == 0) return std::nullopt;
  std::uint64_t best = 0;
  double best_distance = std::abs(value_at(0) - value);
  for (std::uint64_t i = 1; i < n; ++i) {
    const double d = std::abs(value_at(i) - value);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

double Parameter::sample(hm::common::Rng& rng) const {
  if (kind_ == ParameterKind::kReal) {
    if (log_feature_) {
      return std::exp(rng.uniform(std::log(lo_), std::log(hi_)));
    }
    return rng.uniform(lo_, hi_);
  }
  return value_at(rng.uniform_index(cardinality()));
}

double Parameter::feature(double value) const {
  double lo = lo_, hi = hi_, v = value;
  if (log_feature_) {
    lo = std::log(lo);
    hi = std::log(hi);
    v = std::log(std::max(value, 1e-300));
  }
  if (hi <= lo) return 0.0;
  return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
}

std::string Parameter::to_string(double value) const {
  if (kind_ == ParameterKind::kCategorical) {
    const auto index = static_cast<std::size_t>(value);
    if (index < labels_.size()) return labels_[index];
  }
  // hm-lint: allow(no-float-equality) booleans are stored as exact 0.0/1.0
  if (kind_ == ParameterKind::kBoolean) return value != 0.0 ? "1" : "0";
  return hm::common::format_double(value);
}

}  // namespace hm::hypermapper
