#include "hypermapper/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "hypermapper/resilient_evaluator.hpp"

namespace hm::hypermapper {

namespace {

/// Maps a 64-bit hash to [0, 1) the same way Rng::uniform does.
double unit_interval(std::uint64_t hash) noexcept {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingEvaluator::FaultInjectingEvaluator(Evaluator& inner,
                                                 FaultSchedule schedule)
    : inner_(inner), schedule_(std::move(schedule)) {}

FaultInjectingEvaluator::Decision FaultInjectingEvaluator::decide(
    const Configuration& config) const {
  std::uint64_t state = schedule_.seed ^ config_hash(config);
  const double draw = unit_interval(hm::common::splitmix64_next(state));
  const std::uint64_t secondary = hm::common::splitmix64_next(state);

  Decision decision;
  decision.detail = secondary;
  double band = schedule_.exception_rate;
  if (draw < band) {
    decision.fault = Fault::kException;
    decision.transient =
        unit_interval(secondary) < schedule_.transient_fraction;
    return decision;
  }
  band += schedule_.nan_rate;
  if (draw < band) {
    decision.fault = Fault::kNan;
    return decision;
  }
  band += schedule_.wrong_arity_rate;
  if (draw < band) {
    decision.fault = Fault::kWrongArity;
    return decision;
  }
  band += schedule_.slow_rate;
  if (draw < band) decision.fault = Fault::kSlow;
  return decision;
}

bool FaultInjectingEvaluator::faulty(const Configuration& config) const {
  return decide(config).fault != Fault::kNone;
}

std::vector<double> FaultInjectingEvaluator::evaluate(
    const Configuration& config) {
  return evaluate_impl(config, 0);
}

std::vector<double> FaultInjectingEvaluator::evaluate_retry(
    const Configuration& config, std::uint64_t retry_nonce) {
  return evaluate_impl(config, retry_nonce);
}

std::vector<double> FaultInjectingEvaluator::evaluate_impl(
    const Configuration& config, std::uint64_t retry_nonce) {
  const std::size_t call = ++calls_;
  if (std::find(schedule_.throw_on_calls.begin(),
                schedule_.throw_on_calls.end(),
                call) != schedule_.throw_on_calls.end()) {
    ++thrown_;
    throw EvaluationError("injected fault on call " + std::to_string(call),
                          /*transient=*/true);
  }

  const Decision decision = decide(config);
  switch (decision.fault) {
    case Fault::kException:
      // Transient faults recover deterministically once the supervision
      // layer retries with a non-zero nonce.
      if (decision.transient && retry_nonce != 0) break;
      ++thrown_;
      throw EvaluationError(decision.transient ? "injected transient fault"
                                               : "injected permanent fault",
                            decision.transient);
    case Fault::kNan: {
      ++nans_;
      std::vector<double> objectives = inner_.evaluate(config);
      if (!objectives.empty()) {
        objectives[decision.detail % objectives.size()] =
            std::numeric_limits<double>::quiet_NaN();
      }
      return objectives;
    }
    case Fault::kWrongArity: {
      ++wrong_arity_;
      return std::vector<double>(inner_.objective_count() + 1, 1.0);
    }
    case Fault::kSlow:
      ++slow_;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(schedule_.slow_seconds));
      break;
    case Fault::kNone:
      break;
  }
  return retry_nonce == 0 ? inner_.evaluate(config)
                          : inner_.evaluate_retry(config, retry_nonce);
}

}  // namespace hm::hypermapper
